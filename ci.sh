#!/bin/sh
# CI gauntlet: the workspace must build, test, and compile its benches
# fully offline — zero external dependencies is a hard guarantee.
set -eux

cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo bench --no-run --offline --workspace

# Style lanes: rustfmt and clippy are hard gates (both run offline).
cargo fmt --check
cargo clippy --all-targets --offline --workspace -- -D warnings

# Documentation lane: rustdoc must build clean (broken intra-doc links,
# missing docs on warn-gated crates, and bad code fences all fail).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Checkpoint/resume smoke: pause a small dataset campaign after its
# first chunk (--max-chunks 1 leaves dataset.ckpt behind), resume it at
# a different thread count, and require the finished CSV byte-identical
# to an uninterrupted run — the engine's determinism contract end to end
# through the repro binary.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/fresh"
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/paused" --max-chunks 1
test -f "$SMOKE/paused/dataset.ckpt"
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 1 --out "$SMOKE/paused" --resume
test ! -f "$SMOKE/paused/dataset.ckpt"
cmp "$SMOKE/fresh/dataset.csv" "$SMOKE/paused/dataset.csv"

# Observability smoke: the same campaign with --metrics must stream one
# counter row per job (docs/METRICS.md schema), emit the bottleneck
# cross-tab, and leave the dataset bytes untouched (metrics
# transparency, checked against the fresh run above).
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/observed" \
  --metrics "$SMOKE/observed/metrics"
cmp "$SMOKE/fresh/dataset.csv" "$SMOKE/observed/dataset.csv"
test -f "$SMOKE/observed/metrics/metrics.csv"
test -f "$SMOKE/observed/metrics/bottleneck.txt"

# Explore-smoke lane: a tiny-budget surrogate-guided campaign through
# the repro binary. Pause it mid-campaign (--max-chunks), resume at a
# different thread count, and require every exploration artifact
# byte-identical to the uninterrupted run — the Explorer's checkpoint-v2
# determinism contract end to end. The curve artifact must carry the
# documented schema header, and Pareto mode must emit its frontier.
cargo run --release --offline -p armdse-analysis --bin repro -- explore \
  --configs 60 --explore 12 --scale tiny --seed 7 --threads 4 --out "$SMOKE/exfresh"
head -n 1 "$SMOKE/exfresh/explore_curve.csv" | \
  grep -q '^round,samples,epsilon,r2,mae,model_hash$'
cargo run --release --offline -p armdse-analysis --bin repro -- explore \
  --configs 60 --explore 12 --scale tiny --seed 7 --threads 4 \
  --out "$SMOKE/expaused" --max-chunks 3
test -f "$SMOKE/expaused/explore.ckpt"
cargo run --release --offline -p armdse-analysis --bin repro -- explore \
  --configs 60 --explore 12 --scale tiny --seed 7 --threads 1 \
  --out "$SMOKE/expaused" --resume
cmp "$SMOKE/exfresh/explore_dataset.csv" "$SMOKE/expaused/explore_dataset.csv"
cmp "$SMOKE/exfresh/explore_curve.csv" "$SMOKE/expaused/explore_curve.csv"
cmp "$SMOKE/exfresh/explore_curve.json" "$SMOKE/expaused/explore_curve.json"
cargo run --release --offline -p armdse-analysis --bin repro -- explore \
  --configs 60 --explore 12 --scale tiny --seed 7 --threads 4 \
  --out "$SMOKE/expareto" --explore-pareto
test -f "$SMOKE/expareto/explore_pareto.csv"

# Reuse-smoke lane: the interval-memoizing fidelity tier end to end
# through the repro binary (DESIGN.md §13). A memoized dataset run must
# be byte-identical to the Full-fidelity run above and must report
# interval-cache activity in its summary; a paused memoized run records
# its tier in the checkpoint, refuses to resume at a different
# fidelity, and completes byte-identically when resumed at its own.
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/reused" \
  --reuse 2> "$SMOKE/reused.log"
cmp "$SMOKE/fresh/dataset.csv" "$SMOKE/reused/dataset.csv"
grep -q 'fidelity tier: Memoized' "$SMOKE/reused.log"
grep -q 'interval reuse: .* insertion' "$SMOKE/reused.log"
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/reupaused" \
  --fidelity memoized --max-chunks 1
test -f "$SMOKE/reupaused/dataset.ckpt"
if cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 1 --out "$SMOKE/reupaused" \
  --resume; then
  echo 'FAIL: resume must refuse to mix fidelity tiers' >&2
  exit 1
fi
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 1 --out "$SMOKE/reupaused" \
  --fidelity memoized --resume
test ! -f "$SMOKE/reupaused/dataset.ckpt"
cmp "$SMOKE/fresh/dataset.csv" "$SMOKE/reupaused/dataset.csv"
# The sampled screening tier must run the same campaign to completion
# (its CSV legitimately differs: cycles are estimates).
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 40 --scale tiny --seed 7 --threads 4 --out "$SMOKE/sampled" \
  --fidelity sampled 2> "$SMOKE/sampled.log"
grep -q 'fidelity tier: Sampled' "$SMOKE/sampled.log"

# Multicore-smoke lane: a tiny 2-core campaign over the extended
# kernels through the repro binary (docs/MULTICORE.md). The artifacts
# must be byte-identical at 1 vs 8 worker threads (the slice loop is
# deterministic; one job runs one whole machine on one thread), the
# metrics CSV must carry per-core detail rows, and a --cores run must
# refuse the reuse fidelity tiers.
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 12 --scale tiny --seed 7 --threads 8 --apps extended \
  --cores 2 --banks 4 --out "$SMOKE/mc8" --metrics "$SMOKE/mc8/metrics"
cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 12 --scale tiny --seed 7 --threads 1 --apps extended \
  --cores 2 --banks 4 --out "$SMOKE/mc1" --metrics "$SMOKE/mc1/metrics"
cmp "$SMOKE/mc8/dataset.csv" "$SMOKE/mc1/dataset.csv"
cmp "$SMOKE/mc8/metrics/metrics.csv" "$SMOKE/mc1/metrics/metrics.csv"
# Per-core detail rows exist: the core column (4th) carries index 1
# somewhere in the stream on a 2-core machine.
grep -q '^[0-9]*,[0-9]*,[^,]*,1,' "$SMOKE/mc8/metrics/metrics.csv"
if cargo run --release --offline -p armdse-analysis --bin repro -- dataset \
  --configs 12 --scale tiny --seed 7 --cores 2 --reuse \
  --out "$SMOKE/mcbad"; then
  echo 'FAIL: --cores must reject the reuse fidelity tiers' >&2
  exit 1
fi

# Docs link-check: every relative markdown link target in README.md and
# docs/*.md must exist on disk (external http(s) links are skipped).
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//; s/#.*$//' | \
    grep -v '^https\?://' | grep -v '^$' | sort -u | while read -r target; do
    test -e "$dir/$target" || {
      echo "FAIL: $doc links to missing file: $target" >&2
      exit 1
    }
  done
done
# checks compiled in and rerun the crates they gate. Any violation
# panics. (Scoped to these crates: the full integration suite re-runs
# dataset-scale simulations and is too slow with per-cycle asserts.)
cargo test -q --offline --features check-invariants \
  -p armdse-memsim -p armdse-simcore -p armdse-oracle

# Differential-fuzz smoke: fixed campaign seed (0xA5C3_2024 baked into
# FuzzConfig::default), 200 random KIR programs cross-checked between
# the reference interpreter and the OoO core with invariants enabled.
# Deterministic: same seed, same programs, same verdict on every run.
cargo test -q --offline --features check-invariants \
  --test differential_fuzz

# Bench-smoke lane: one filtered bench per suite emits a BENCH_*.json
# snapshot (ARMDSE_BENCH_JSON), bench-trend validates the schema, and —
# report-only, never gating (wall-clock noise) — the components snapshot
# is diffed against the checked-in baseline for trend visibility.
mkdir -p "$SMOKE/bench"
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench components -- cursor
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench ablations -- loop_buffer
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench tables_figures -- fig2_accuracy
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench explore -- acquisition
for snap in "$SMOKE"/bench/BENCH_*.json; do
  cargo run --release --offline -p armdse-bench --bin bench-trend -- --check "$snap"
done
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  BENCH_components.baseline.json "$SMOKE/bench/BENCH_components.json"
# The committed explore snapshot must stay schema-valid too.
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check BENCH_explore.json
# Reuse bench: smoke the warm/cold pair and validate the committed
# snapshot (the warm-vs-cold jobs/sec ratio is the reuse win tracked
# across commits; see EXPERIMENTS.md's reuse lane).
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench reuse -- jobs
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check "$SMOKE/bench/BENCH_reuse.json"
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check BENCH_reuse.json
# Multicore bench: smoke the machine-layer suite (N=1 point only —
# the cheap slice-loop overhead bound) and validate both the fresh and
# the committed cores-simulated-cycles/sec snapshot.
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench multicore -- n1
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check "$SMOKE/bench/BENCH_multicore.json"
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check BENCH_multicore.json

# Server bench: smoke the wire-level benches and validate both the
# fresh and the committed snapshot.
ARMDSE_BENCH_JSON="$SMOKE/bench" \
  cargo bench --offline -p armdse-bench --bench server -- poll
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check "$SMOKE/bench/BENCH_server.json"
cargo run --release --offline -p armdse-bench --bin bench-trend -- \
  --check BENCH_server.json

# Server-smoke lane: DSE-as-a-service end to end (docs/SERVER.md). A
# plan submitted over HTTP must stream back exactly the bytes the
# direct `repro dataset` run above wrote — same configs/scale/seed, so
# the streamed CSV is cmp-identical to "$SMOKE/fresh/dataset.csv". The
# lane also round-trips pause -> resume -> cancel on a long job and
# shuts the server down cleanly (the background repro must exit 0).
cargo run --release --offline -p armdse-analysis --bin repro -- \
  --serve 127.0.0.1:0 --out "$SMOKE/server" --runners 2 \
  2> "$SMOKE/server.log" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  test -s "$SMOKE/server/server.addr" && break
  sleep 0.1
done
ADDR=$(cat "$SMOKE/server/server.addr")
aclient() { cargo run --release --offline -p armdse-server --bin armdse-client -- "$@"; }
printf '{"configs": 40, "scale": "tiny", "seed": 7, "threads": 4}' \
  > "$SMOKE/server/spec.json"
JOB=$(aclient "$ADDR" submit "$SMOKE/server/spec.json")
aclient "$ADDR" wait "$JOB" | grep -q '"state": "done"'
aclient "$ADDR" rows "$JOB" "$SMOKE/server/rows.csv"
cmp "$SMOKE/fresh/dataset.csv" "$SMOKE/server/rows.csv"
# pause -> resume -> cancel round-trip on a long single-app campaign
# (600 one-job chunks: cancel always lands mid-flight).
printf '{"configs": 600, "apps": ["STREAM"], "scale": "tiny", "seed": 11, "threads": 2, "chunk_jobs": 1}' \
  > "$SMOKE/server/spec2.json"
JOB2=$(aclient "$ADDR" submit "$SMOKE/server/spec2.json")
aclient "$ADDR" pause "$JOB2"
aclient "$ADDR" resume "$JOB2"
aclient "$ADDR" cancel "$JOB2"
aclient "$ADDR" wait "$JOB2" | grep -q '"state": "cancelled"'
aclient "$ADDR" stats | grep -q '"schema": "armdse-server-stats-v1"'
aclient "$ADDR" shutdown
wait "$SERVER_PID"
grep -q 'server shut down' "$SMOKE/server.log"
