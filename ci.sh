#!/bin/sh
# CI gauntlet: the workspace must build, test, and compile its benches
# fully offline — zero external dependencies is a hard guarantee.
set -eux

cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo bench --no-run --offline --workspace
