#!/bin/sh
# CI gauntlet: the workspace must build, test, and compile its benches
# fully offline — zero external dependencies is a hard guarantee.
set -eux

cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo bench --no-run --offline --workspace

# Invariant lane: rebuild the simulator with cycle-level structural
# checks compiled in and rerun the crates they gate. Any violation
# panics. (Scoped to these crates: the full integration suite re-runs
# dataset-scale simulations and is too slow with per-cycle asserts.)
cargo test -q --offline --features check-invariants \
  -p armdse-memsim -p armdse-simcore -p armdse-oracle

# Differential-fuzz smoke: fixed campaign seed (0xA5C3_2024 baked into
# FuzzConfig::default), 200 random KIR programs cross-checked between
# the reference interpreter and the OoO core with invariants enabled.
# Deterministic: same seed, same programs, same verdict on every run.
cargo test -q --offline --features check-invariants \
  --test differential_fuzz
