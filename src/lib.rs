//! # armdse — AI-Assisted Design-Space Analysis of High-Performance Arm Processors
//!
//! Umbrella crate re-exporting the full reproduction stack:
//!
//! * [`isa`] — Arm-like ISA model, kernel IR, trace cursor.
//! * [`memsim`] — SST-like memory hierarchy (L1D/L2/DRAM).
//! * [`kernels`] — VLA workload generators (STREAM, miniBUDE, TeaLeaf,
//!   MiniSweep, plus the extended SpMV / GEMM / Graph kernels).
//! * [`simcore`] — SimEng-like out-of-order core simulator and the
//!   multicore machine layer (N cores over a shared banked L2 + DRAM;
//!   docs/MULTICORE.md).
//! * [`rng`] — zero-dependency deterministic PRNG (SplitMix64 seeding,
//!   xoshiro256++ streams) behind a `rand`-shaped API.
//! * [`mltree`] — decision-tree regression, random forest, linear regression,
//!   permutation feature importance.
//! * [`core`] — design-space parameter space, constrained sampling, the
//!   resumable [`core::engine::Engine`] run path (pluggable backends,
//!   streaming row sinks, checkpoint/resume), dataset handling, and the
//!   surrogate-analysis pipeline.
//! * [`analysis`] — experiment harness regenerating every table and figure.
//! * [`server`] — DSE-as-a-service: std-only HTTP/1.1 server exposing the
//!   core job scheduler (submit campaigns as JSON, stream rows back
//!   byte-identically, pause/resume/cancel across restarts) plus the
//!   matching client (`armdse-client`); wire protocol in docs/SERVER.md.
//! * [`oracle`] — architecturally exact reference interpreter, random
//!   KIR program generator, and differential fuzzer (the repo's stand-in
//!   for the paper's Table I hardware validation).
//!
//! ## Quickstart
//!
//! ```
//! use armdse::core::{space::ParamSpace, Engine};
//! use armdse::kernels::{App, WorkloadScale};
//!
//! // Sample one design point and simulate STREAM on it. The engine
//! // caches workloads, so repeated queries rebuild nothing.
//! let space = ParamSpace::paper();
//! let cfg = space.sample_seeded(42);
//! let engine = Engine::idealized();
//! let stats = engine.simulate_config(App::Stream, WorkloadScale::Tiny, &cfg);
//! assert!(stats.cycles > 0);
//! ```

pub use armdse_analysis as analysis;
pub use armdse_core as core;
pub use armdse_isa as isa;
pub use armdse_kernels as kernels;
pub use armdse_memsim as memsim;
pub use armdse_mltree as mltree;
pub use armdse_oracle as oracle;
pub use armdse_rng as rng;
pub use armdse_server as server;
pub use armdse_simcore as simcore;
