//! Bottleneck analysis: use the simulator's stall attribution to explain
//! *why* a configuration is slow — the mechanism behind the paper's
//! findings that small ROBs, register files, and frontends "limit
//! performance by up to a factor of five … due to limiting ILP".
//!
//! ```sh
//! cargo run --release --example bottleneck_analysis
//! ```

use armdse::core::DesignConfig;
use armdse::kernels::{build_workload, App, WorkloadScale};
use armdse::simcore::SimStats;

fn run(label: &str, cfg: &DesignConfig) -> SimStats {
    let w = build_workload(App::MiniBude, WorkloadScale::Small, cfg.core.vector_length);
    let s = armdse::simcore::simulate(&w.program, &cfg.core, &cfg.mem);
    println!(
        "{label:28} cycles={:>8}  IPC={:.2}  stalls: rob_full={:>6} rs_full={:>6} \
         rename_fp={:>6} fetch_starved={:>6}",
        s.cycles,
        s.ipc(),
        s.stalls.rob_full,
        s.stalls.rs_full,
        s.stalls.rename_fp,
        s.stalls.fetch_starved,
    );
    s
}

fn main() {
    println!("miniBUDE on progressively crippled configurations:\n");

    let healthy = DesignConfig::thunderx2();
    let base = run("baseline (TX2-like)", &healthy);

    let mut tiny_rob = healthy;
    tiny_rob.core.rob_size = 8;
    let s = run("ROB = 8", &tiny_rob);
    println!(
        "  -> {:.1}x slower; dispatch stalled on a full ROB\n",
        ratio(&s, &base)
    );

    let mut few_regs = healthy;
    few_regs.core.fp_regs = 38;
    let s = run("FP/SVE registers = 38", &few_regs);
    println!(
        "  -> {:.1}x slower; rename starved for FP registers (the paper's Fig. 8 wall)\n",
        ratio(&s, &base)
    );

    let mut thin_frontend = healthy;
    thin_frontend.core.fetch_block_bytes = 4;
    thin_frontend.core.loop_buffer_size = 1;
    let s = run("fetch block 4 B, no loop buf", &thin_frontend);
    println!(
        "  -> {:.1}x slower; decode starved by one-instruction fetches\n",
        ratio(&s, &base)
    );

    let mut fixed_by_loop_buffer = thin_frontend;
    fixed_by_loop_buffer.core.loop_buffer_size = 256;
    let s = run("  + loop buffer 256", &fixed_by_loop_buffer);
    println!(
        "  -> recovered to {:.2}x of baseline; the loop buffer bypasses the fetch block\n",
        s.cycles as f64 / base.cycles as f64
    );

    println!(
        "Each wall shifts the bottleneck rather than removing it — the paper's\n\
         conclusion: \"the performance bottleneck will continuously shift onto\n\
         our memory subsystem; it always comes back to memory.\""
    );
}

fn ratio(slow: &SimStats, fast: &SimStats) -> f64 {
    slow.cycles as f64 / fast.cycles as f64
}
