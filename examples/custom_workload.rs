//! Custom workload: plug your own kernel into the framework.
//!
//! The four paper workloads are built from the same kernel IR that is
//! exposed publicly, so a downstream user can characterise their own
//! code. This example builds a blocked 2-D Jacobi relaxation (a classic
//! HPC stencil), makes it vector-length agnostic, and sweeps it across
//! vector lengths and cache configurations.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use armdse::core::DesignConfig;
use armdse::isa::kir::{AddrExpr, Kernel, Stmt};
use armdse::isa::{lanes, op::OpClass, InstrTemplate, OpSummary, Program, Reg};

/// Build a VLA 2-D Jacobi sweep: for each interior row, a governed vector
/// loop updates `out[j][i] = 0.25 * (in[j-1][i] + in[j+1][i] + in[j][i-1]
/// + in[j][i+1])`.
fn jacobi_kernel(n: u64, iters: u64, vl_bits: u32) -> Kernel {
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8;
    let row = n * 8;
    let input = 0x1000_0000u64;
    let output = input + n * row + 0x1_0000;

    let p0 = Reg::pred(0);
    // Depths: 0 = iterations, 1 = row j, 2 = vector block i.
    let cell = |base: u64, dj: i64, di_bytes: i64| AddrExpr {
        base: (base as i64 + (1 + dj) * row as i64 + 8 + di_bytes) as u64,
        strides: {
            let mut s = [0i64; armdse::isa::kir::MAX_LOOP_DEPTH];
            s[1] = row as i64;
            s[2] = (lanes64 * 8) as i64;
            s
        },
    };

    let vload = |dst: u8, expr: AddrExpr| {
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(dst),
            &[Reg::gp(1), p0],
            expr,
            vb,
        ))
    };

    let inner = vec![
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[p0],
            &[Reg::gp(5)],
        )),
        vload(0, cell(input, -1, 0)),
        vload(1, cell(input, 1, 0)),
        vload(2, cell(input, 0, -8)),
        vload(3, cell(input, 0, 8)),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFp,
            &[Reg::fp(4)],
            &[Reg::fp(0), Reg::fp(1), p0],
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFp,
            &[Reg::fp(5)],
            &[Reg::fp(2), Reg::fp(3), p0],
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFma,
            &[Reg::fp(6)],
            &[Reg::fp(4), Reg::fp(5), p0],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(6), Reg::gp(2), p0],
            cell(output, 0, 0),
            vb,
        )),
    ];

    let blocks = (n - 2).div_ceil(lanes64);
    Kernel::new(
        "jacobi2d",
        vec![Stmt::repeat(
            iters,
            vec![Stmt::repeat(n - 2, vec![Stmt::repeat(blocks, inner)])],
        )],
    )
}

fn main() {
    let n = 64; // 64x64 grid, 32 KiB per array
    println!("2-D Jacobi {n}x{n}, custom kernel on the armdse pipeline\n");

    println!(
        "{:>8} {:>10} {:>10} {:>7} {:>7}",
        "VL", "instrs", "cycles", "IPC", "SVE%"
    );
    for vl in [128u32, 256, 512, 1024, 2048] {
        let program = Program::lower(&jacobi_kernel(n, 2, vl));
        let summary = OpSummary::of(&program);
        let mut cfg = DesignConfig::thunderx2();
        cfg.core.vector_length = vl;
        cfg.core.load_bandwidth = cfg.core.load_bandwidth.max(vl / 8);
        cfg.core.store_bandwidth = cfg.core.store_bandwidth.max(vl / 8);
        let stats = armdse::simcore::simulate(&program, &cfg.core, &cfg.mem);
        assert!(stats.validated);
        println!(
            "{:>8} {:>10} {:>10} {:>7.2} {:>6.1}%",
            vl,
            summary.total(),
            stats.cycles,
            stats.ipc(),
            100.0 * stats.sve_fraction()
        );
    }

    // Cache sensitivity: the same kernel across L1 sizes.
    println!("\nL1-size sensitivity at VL=256 (grid is 32 KiB/array):");
    for l1 in [4u32, 16, 64, 128] {
        let program = Program::lower(&jacobi_kernel(n, 2, 256));
        let mut cfg = DesignConfig::thunderx2();
        cfg.core.vector_length = 256;
        cfg.mem.l1_size_kib = l1;
        let stats = armdse::simcore::simulate(&program, &cfg.core, &cfg.mem);
        println!(
            "  L1 {l1:>3} KiB -> {:>8} cycles (L1 hit rate {:.1}%)",
            stats.cycles,
            100.0 * stats.mem.l1_hit_rate().unwrap_or(0.0)
        );
    }
}
