//! SpMV with SVE gathers: characterising an irregular-memory kernel.
//!
//! Sparse matrix-vector multiply (CSR) is the canonical gather-bound HPC
//! kernel: for each row, the values stream contiguously, but the `x`
//! vector is read through the column-index array — an SVE gather that
//! issues one memory request per lane. The kernel itself is first-class
//! now ([`armdse::kernels::spmv`], `App::Spmv` in campaigns); this
//! example compares it against an idealised contiguous-`x` variant — the
//! "perfectly sorted matrix" bound — and measures the "gather tax"
//! across vector lengths and request-rate limits.
//!
//! ```sh
//! cargo run --release --example spmv_gather
//! ```

use armdse::core::DesignConfig;
use armdse::isa::kir::{AddrExpr, Kernel, Stmt};
use armdse::isa::{lanes, op::OpClass, InstrTemplate, OpSummary, Program, Reg};
use armdse::kernels::spmv::{self, SpmvParams};

/// The idealised "perfectly sorted matrix" bound: the same loop nest as
/// [`spmv::kernel`], but the gather replaced by a contiguous vector
/// load of the same width — the difference against the real kernel is
/// purely the per-element request cost of the irregular access.
fn idealised_kernel(p: &SpmvParams, vl_bits: u32) -> Kernel {
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8;
    let vals = 0x1000_0000u64;
    let xvec = 0x3000_0000u64;
    let yvec = 0x5000_0000u64;

    let p0 = Reg::pred(0);
    let blocks = p.nnz_per_row.div_ceil(lanes64);
    let block_body = vec![
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[p0],
            &[Reg::gp(5)],
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1), p0],
            AddrExpr::bilinear(vals, 0, (p.nnz_per_row * 8) as i64, 1, (lanes64 * 8) as i64),
            vb,
        )),
        // Contiguous stand-in for the gather.
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(1),
            &[Reg::gp(2), p0],
            AddrExpr::bilinear(xvec, 0, p.spread * 3, 1, p.spread * lanes64 as i64),
            vb,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFma,
            &[Reg::fp(2)],
            &[Reg::fp(0), Reg::fp(1), p0],
        )),
    ];
    let row_body = vec![
        Stmt::repeat(blocks, block_body),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecAlu,
            &[Reg::fp(3)],
            &[Reg::fp(2)],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(3), Reg::gp(3)],
            AddrExpr::linear(yvec, 0, 8),
            8,
        )),
    ];
    Kernel::new("spmv-idealised", vec![Stmt::repeat(p.rows, row_body)])
}

fn run(vl: u32, spread: i64, idealised: bool, loads_per_cycle: u32) -> u64 {
    let p = SpmvParams {
        rows: 256,
        nnz_per_row: 32,
        spread,
    };
    let program = if idealised {
        Program::lower(&idealised_kernel(&p, vl))
    } else {
        Program::lower(&spmv::kernel(&p, vl))
    };
    let summary = OpSummary::of(&program);
    let mut cfg = DesignConfig::thunderx2();
    cfg.core.vector_length = vl;
    cfg.core.load_bandwidth = cfg.core.load_bandwidth.max(vl / 8);
    cfg.core.store_bandwidth = cfg.core.store_bandwidth.max(vl / 8);
    cfg.core.loads_per_cycle = loads_per_cycle;
    cfg.core.mem_requests_per_cycle = loads_per_cycle + 1;
    let stats = armdse::simcore::simulate(&program, &cfg.core, &cfg.mem);
    assert!(stats.validated);
    assert!(summary.total() == stats.retired);
    stats.cycles
}

fn main() {
    println!("CSR SpMV (rows=256, nnz/row=32): the gather tax\n");

    // Real gathers vs the idealised "perfectly sorted matrix" with
    // contiguous x accesses — the difference is purely the per-element
    // request cost of the irregular access pattern.
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "VL", "gather cycles", "contig cycles", "tax"
    );
    for vl in [128u32, 512, 2048] {
        let g = run(vl, 512, false, 2);
        let c = run(vl, 512, true, 2);
        println!(
            "{:>8} {:>14} {:>14} {:>9.2}x",
            vl,
            g,
            c,
            g as f64 / c as f64
        );
    }

    // The tax is paid in memory requests, so it responds to the
    // request-rate design parameters the paper varies.
    println!("\ngather-version sensitivity to loads-per-cycle (VL=2048):");
    for lpc in [1u32, 2, 4, 8, 16] {
        println!(
            "  loads/cycle {lpc:>2} -> {:>8} cycles",
            run(2048, 512, false, lpc)
        );
    }

    println!(
        "\nIrregular access shifts the bottleneck from the knobs the paper\n\
         finds dominant for regular codes (vector length, ROB) to the\n\
         memory request path — a design consequence the gather/scatter\n\
         extension of this reproduction makes measurable."
    );
}
