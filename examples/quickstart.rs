//! Quickstart: sample one CPU design point, simulate an HPC workload on
//! it, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use armdse::core::space::ParamSpace;
use armdse::core::{DesignConfig, Engine};
use armdse::kernels::{App, WorkloadScale};

fn main() {
    // The paper's design space (Tables II + III).
    let space = ParamSpace::paper();

    // One engine per exploration: it owns the workload cache, so the
    // four apps are built once and reused across both design points.
    let engine = Engine::idealized();

    // A random design point — every sampled point satisfies the paper's
    // constraints (bandwidth covers one vector, L2 dominates L1).
    let sampled = space.sample_seeded(2024);
    println!("sampled design point:\n{sampled:#?}\n");

    // And the fixed ThunderX2-like baseline the paper validates against.
    let baseline = DesignConfig::thunderx2();

    for cfg in [("sampled", &sampled), ("thunderx2", &baseline)] {
        println!("--- {} ---", cfg.0);
        for app in App::ALL {
            let stats = engine.simulate_config(app, WorkloadScale::Small, cfg.1);
            assert!(stats.validated, "simulation failed validation");
            println!(
                "{:10}  cycles={:>9}  retired={:>7}  IPC={:.2}  SVE={:.1}%  L1 hit={:.1}%",
                app.name(),
                stats.cycles,
                stats.retired,
                stats.ipc(),
                100.0 * stats.sve_fraction(),
                100.0 * stats.mem.l1_hit_rate().unwrap_or(0.0),
            );
        }
        println!();
    }

    println!("try `cargo run --release -p armdse-analysis --bin repro -- all`");
    println!("to regenerate every table and figure of the paper.");
}
