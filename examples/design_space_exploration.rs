//! Design-space exploration: the paper's full workflow as a library user
//! would drive it — generate a simulated dataset, train the per-app
//! surrogate trees, inspect feature importances, then use the surrogate
//! for cheap what-if queries that would otherwise need fresh simulations.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::{DseDataset, Engine, RunPlan, SurrogateSuite};
use armdse::kernels::{App, WorkloadScale};
use armdse::mltree::Regressor;

fn main() {
    let space = ParamSpace::paper();

    // T1+T2: sample design points and simulate every app on each.
    // (The paper used 180,006 rows on 640 cores; scale to taste.)
    let opts = GenOptions {
        configs: 120,
        scale: WorkloadScale::Small,
        seed: 99,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        apps: App::ALL.to_vec(),
    };
    println!(
        "simulating {} configs x {} apps ...",
        opts.configs,
        opts.apps.len()
    );
    let plan = RunPlan::new(&space, &opts).expect("valid plan");
    let engine = Engine::idealized();
    let mut data = DseDataset::default();
    engine
        .run(&plan, &mut data)
        .expect("in-memory sink cannot fail");
    println!("dataset: {} validated rows\n", data.rows.len());

    // T3: train one decision tree per application (80/20 split).
    let suite = SurrogateSuite::train(&data, 0.2, 7);
    for m in &suite.models {
        println!(
            "{:10}  test MAE={:>10.0} cycles  accuracy={:>6.2}%  top features: {}",
            m.app.name(),
            m.metrics.mae,
            m.metrics.accuracy_pct,
            m.importance
                .top(3)
                .iter()
                .map(|f| format!("{} ({:.1}%)", f.name, f.percent))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }

    // Use the surrogate for what-if analysis: how do cycles respond to a
    // bigger ROB on an otherwise fixed design? A simulation costs tens of
    // milliseconds; a surrogate query costs microseconds.
    let model = suite.model(App::Stream).expect("stream model");
    let base = space.sample_seeded(5);
    println!("\nsurrogate what-if on STREAM (base config seed 5):");
    for rob in [8u32, 64, 152, 512] {
        let mut cfg = base;
        cfg.core.rob_size = rob;
        let predicted = model.tree.predict_one(&cfg.to_features());
        println!("  ROB {rob:>3} -> predicted {predicted:>10.0} cycles");
    }

    // The tree is directly interpretable: show the exact comparisons
    // behind one prediction (the paper's stated reason for choosing
    // decision trees).
    let names: Vec<String> = armdse::core::config::FEATURE_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("\ndecision path for that prediction:");
    let mut probe = base;
    probe.core.rob_size = 152;
    print!("{}", model.tree.explain(&probe.to_features(), &names));

    // Find the best simulated configuration for a target app.
    let best = best_config(&data, App::MiniBude);
    println!(
        "\nfastest simulated MiniBude config: {} cycles (VL={}, ROB={}, FP regs={})",
        best.0, best.1.core.vector_length, best.1.core.rob_size, best.1.core.fp_regs
    );
}

fn best_config(data: &DseDataset, app: App) -> (u64, armdse::core::DesignConfig) {
    let row = data
        .for_app(app)
        .into_iter()
        .min_by_key(|r| r.cycles)
        .expect("rows exist");
    (row.cycles, DseDataset::config_of(row))
}
