//! Minimal hand-rolled HTTP/1.1, std-only.
//!
//! The repo's zero-external-dependency guarantee extends to the wire:
//! no hyper, no tokio — just enough of RFC 9112 over
//! [`std::net::TcpStream`] to serve the job API in docs/SERVER.md.
//! Deliberate simplifications, documented there too:
//!
//! * every response carries `Connection: close` and the server closes
//!   the socket after one exchange (no keep-alive state machine);
//! * request bodies require `Content-Length` (no inbound chunked
//!   decoding — only responses use chunked transfer encoding);
//! * request line and headers are capped ([`MAX_HEAD_BYTES`]) and
//!   bodies capped ([`MAX_BODY_BYTES`]) so a misbehaving client cannot
//!   balloon server memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers (64 KiB).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Cap on a request body (1 MiB — job specs are a few hundred bytes).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Headers, names lowercased, in arrival order (first wins on
    /// lookup).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this name (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from `stream`. `Err` carries a
/// human-readable reason suitable for a 400 body.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut head = Vec::new();
    // Read up to the blank line, byte-capped.
    loop {
        let mut line = Vec::new();
        let n = reader
            .by_ref()
            .take((MAX_HEAD_BYTES - head.len()) as u64 + 1)
            .read_until(b'\n', &mut line)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let head = String::from_utf8(head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing request target")?.to_string();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line '{line}'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| format!("bad Content-Length '{len}'"))?;
        if len > MAX_BODY_BYTES {
            return Err(format!("body of {len} bytes exceeds {MAX_BODY_BYTES}"));
        }
        let mut body = vec![0u8; len];
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("short body: {e}"))?;
        req.body = body;
    }
    Ok(req)
}

/// Reason phrase for the handful of status codes this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete (non-chunked) response and flush.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Write the head of a chunked response; follow with
/// [`ChunkedWriter`].
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    )
}

/// Streams a chunked-transfer-encoded body: each [`ChunkedWriter::chunk`]
/// call becomes one size-prefixed chunk on the wire, flushed
/// immediately so clients observe rows as the campaign produces them.
/// [`ChunkedWriter::finish`] writes the terminating zero-size chunk.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    /// Payload bytes written so far (excludes framing).
    pub bytes: u64,
}

impl<'a> ChunkedWriter<'a> {
    /// Start a chunked body on `stream` (after [`write_chunked_head`]).
    pub fn new(stream: &'a mut TcpStream) -> ChunkedWriter<'a> {
        ChunkedWriter { stream, bytes: 0 }
    }

    /// Emit one non-empty chunk (empty input is skipped — a zero-size
    /// chunk would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()?;
        self.bytes += data.len() as u64;
        Ok(())
    }

    /// Terminate the stream (zero-size chunk, no trailers).
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, String> {
        // Push raw bytes through a real socket pair so the reader path
        // is exactly the production one.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let req = read_request(&mut BufReader::new(stream));
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("content-length"), Some("5"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = round_trip(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_bad_lengths() {
        assert!(round_trip(b"nonsense\r\n\r\n").is_err());
        assert!(round_trip(b"GET /x SPDY/3\r\n\r\n").is_err());
        assert!(round_trip(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n").is_err());
        // Declared body longer than what arrives -> short-body error.
        assert!(round_trip(b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nabc").is_err());
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_chunked_head(&mut stream, 200, "text/plain").unwrap();
            let mut w = ChunkedWriter::new(&mut stream);
            w.chunk(b"hello ").unwrap();
            w.chunk(b"").unwrap(); // skipped, must not terminate
            w.chunk(b"world").unwrap();
            assert_eq!(w.bytes, 11);
            w.finish().unwrap();
        });
        let mut out = Vec::new();
        TcpStream::connect(addr)
            .unwrap()
            .read_to_end(&mut out)
            .unwrap();
        server.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"));
    }
}
