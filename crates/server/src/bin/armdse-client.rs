//! armdse-client — thin CLI over the job-server wire API.
//!
//! ```text
//! armdse-client ADDR submit SPEC.json|-     # POST /jobs; prints the new job id
//! armdse-client ADDR list                   # GET /jobs
//! armdse-client ADDR status ID              # GET /jobs/ID
//! armdse-client ADDR wait ID                # poll until terminal; prints final status
//! armdse-client ADDR rows ID [FILE]         # GET /jobs/ID/rows (streamed; stdout or FILE)
//! armdse-client ADDR metrics ID [FILE]      # GET /jobs/ID/metrics
//! armdse-client ADDR pause|resume|cancel ID # POST /jobs/ID/<op>
//! armdse-client ADDR stats                  # GET /stats
//! armdse-client ADDR shutdown               # POST /shutdown
//! ```
//!
//! Exit status: 0 on HTTP 2xx, 2 on an HTTP error response (the
//! server's error JSON goes to stderr), 1 on usage errors.

use armdse_core::jobstore::JobStatus;
use armdse_server::client;
use std::io::{Read, Write};

fn usage() -> ! {
    eprintln!(
        "usage: armdse-client ADDR COMMAND ...\n\
         commands: submit SPEC.json|-  |  list  |  status ID  |  wait ID\n\
         \t  rows ID [FILE]  |  metrics ID [FILE]\n\
         \t  pause ID  |  resume ID  |  cancel ID  |  stats  |  shutdown"
    );
    std::process::exit(1);
}

fn fail(msg: &str) -> ! {
    eprintln!("armdse-client: {msg}");
    std::process::exit(2);
}

fn check(resp: &client::Response) {
    if resp.status >= 300 {
        eprintln!("{}", resp.text());
        fail(&format!("server returned HTTP {}", resp.status));
    }
}

fn simple(addr: &str, method: &str, path: &str, body: Option<&str>) -> String {
    match client::request(addr, method, path, body) {
        Ok(resp) => {
            check(&resp);
            resp.text()
        }
        Err(e) => fail(&e),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let addr = &args[0];
    match (args[1].as_str(), &args[2..]) {
        ("submit", [spec]) => {
            let body = if spec == "-" {
                let mut s = String::new();
                std::io::stdin()
                    .read_to_string(&mut s)
                    .unwrap_or_else(|e| fail(&format!("read stdin: {e}")));
                s
            } else {
                std::fs::read_to_string(spec).unwrap_or_else(|e| fail(&format!("read {spec}: {e}")))
            };
            let text = simple(addr, "POST", "/jobs", Some(&body));
            let status = JobStatus::from_json(&text)
                .unwrap_or_else(|e| fail(&format!("bad status response: {e}")));
            println!("{}", status.id);
        }
        ("list", []) => println!("{}", simple(addr, "GET", "/jobs", None)),
        ("status", [id]) => println!("{}", simple(addr, "GET", &format!("/jobs/{id}"), None)),
        ("wait", [id]) => loop {
            let text = simple(addr, "GET", &format!("/jobs/{id}"), None);
            let status = JobStatus::from_json(&text)
                .unwrap_or_else(|e| fail(&format!("bad status response: {e}")));
            if status.state.is_terminal() {
                println!("{text}");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(150));
        },
        ("rows", [id, rest @ ..]) | ("metrics", [id, rest @ ..]) if rest.len() <= 1 => {
            let path = format!("/jobs/{id}/{}", args[1]);
            let mut out: Box<dyn Write> = match rest.first() {
                Some(file) => Box::new(
                    std::fs::File::create(file)
                        .unwrap_or_else(|e| fail(&format!("create {file}: {e}"))),
                ),
                None => Box::new(std::io::stdout()),
            };
            let status = client::stream(addr, "GET", &path, None, &mut |chunk| {
                out.write_all(chunk).map_err(|e| format!("write: {e}"))
            })
            .unwrap_or_else(|e| fail(&e));
            out.flush().unwrap_or_else(|e| fail(&format!("flush: {e}")));
            if status >= 300 {
                fail(&format!("server returned HTTP {status}"));
            }
        }
        (op @ ("pause" | "resume" | "cancel"), [id]) => {
            println!(
                "{}",
                simple(addr, "POST", &format!("/jobs/{id}/{op}"), None)
            );
        }
        ("stats", []) => println!("{}", simple(addr, "GET", "/stats", None)),
        ("shutdown", []) => println!("{}", simple(addr, "POST", "/shutdown", None)),
        _ => usage(),
    }
}
