//! Thin std-only HTTP client for the job API (the `armdse-client`
//! binary and the test suites are built on this).
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline. Responses with
//! `Transfer-Encoding: chunked` are decoded incrementally —
//! [`stream`] hands each decoded chunk to a callback as it arrives, so
//! a caller observes rows at campaign chunk cadence, not at
//! end-of-job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A decoded HTTP response: status code plus the full body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (chunked framing already removed).
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one request and collect the whole body.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let mut collected = Vec::new();
    let status = stream(addr, method, path, body, &mut |chunk| {
        collected.extend_from_slice(chunk);
        Ok(())
    })?;
    Ok(Response {
        status,
        body: collected,
    })
}

/// Issue one request, handing each body fragment to `sink` as it is
/// decoded (per network chunk for chunked responses). Returns the
/// status code.
pub fn stream(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    sink: &mut dyn FnMut(&[u8]) -> Result<(), String>,
) -> Result<u16, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{}'", line.trim_end()))?;
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            }
        }
    }

    if chunked {
        loop {
            let mut size_line = String::new();
            reader
                .read_line(&mut size_line)
                .map_err(|e| format!("read chunk size: {e}"))?;
            let size = usize::from_str_radix(size_line.trim_end(), 16)
                .map_err(|_| format!("bad chunk size '{}'", size_line.trim_end()))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("read chunk: {e}"))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| format!("read chunk terminator: {e}"))?;
            sink(&chunk)?;
        }
    } else if let Some(len) = content_length {
        let mut body = vec![0u8; len];
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        sink(&body)?;
    } else {
        // Connection: close delimited.
        let mut body = Vec::new();
        reader
            .read_to_end(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        sink(&body)?;
    }
    Ok(status)
}
