//! # armdse-server — DSE-as-a-service over the core job scheduler
//!
//! The serving layer of the PR 9 three-layer split (DESIGN.md §14): a
//! std-only HTTP/1.1 server (hand-rolled over [`std::net::TcpListener`];
//! see [`http`]) exposing the [`armdse_core::scheduler::JobScheduler`]
//! and [`armdse_core::jobstore::JobStore`] as a wire API. Campaigns are
//! submitted as JSON job specs, execute on runner threads with per-job
//! isolated engines, and stream their dataset rows back incrementally
//! with chunked transfer encoding — byte-identical to the CSV a direct
//! `Engine::run` of the same plan writes, at any thread count, across
//! pause/resume cycles and server restarts.
//!
//! The wire protocol — endpoints, JSON schemas, chunked framing, error
//! codes — is specified in docs/SERVER.md. The [`client`] module and
//! the `armdse-client` binary are the matching consumer.

#![warn(missing_docs)]

pub mod client;
pub mod http;

use armdse_core::jobstore::{Job, JobId, JobOpError, JobSpec, JobState};
use armdse_core::json::write_json_string;
use armdse_core::scheduler::JobScheduler;
use armdse_core::ArmdseError;
use http::{ChunkedWriter, Request};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a serving process is configured.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Directory holding the job store (specs, CSVs, checkpoints).
    pub jobs_dir: PathBuf,
    /// Runner threads executing jobs.
    pub runners: usize,
}

/// Monotone service counters, reported by `GET /stats`
/// (schema `armdse-server-stats-v1`).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests accepted (any endpooint, any outcome).
    pub requests: AtomicU64,
    /// Jobs successfully submitted.
    pub submissions: AtomicU64,
    /// Row/metrics streams opened.
    pub streams: AtomicU64,
    /// CSV lines streamed across all streams.
    pub stream_rows: AtomicU64,
    /// Payload bytes streamed across all streams.
    pub stream_bytes: AtomicU64,
}

impl ServerStats {
    fn to_json(&self, sched: &JobScheduler) -> String {
        let mut out = format!(
            "{{\"schema\": \"armdse-server-stats-v1\", \"requests\": {}, \"submissions\": {}, \
             \"streams\": {}, \"stream_rows\": {}, \"stream_bytes\": {}, \"jobs\": {{",
            self.requests.load(Ordering::Relaxed),
            self.submissions.load(Ordering::Relaxed),
            self.streams.load(Ordering::Relaxed),
            self.stream_rows.load(Ordering::Relaxed),
            self.stream_bytes.load(Ordering::Relaxed),
        );
        for (i, (state, count)) in sched.store().state_counts().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{state}\": {count}"));
        }
        out.push_str("}}");
        out
    }
}

struct Inner {
    sched: JobScheduler,
    stats: ServerStats,
    shutdown: AtomicBool,
    addr: std::net::SocketAddr,
}

/// The job server: a bound listener plus the scheduler it fronts.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind `config.addr`, open (or recover) the job store at
    /// `config.jobs_dir`, and start `config.runners` runner threads.
    /// Jobs interrupted by a previous shutdown reopen as `Paused`; an
    /// explicit resume request continues them byte-identically.
    pub fn bind(config: &ServerConfig) -> Result<Server, ArmdseError> {
        let sched = JobScheduler::open(&config.jobs_dir, config.runners)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                sched,
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.inner.addr
    }

    /// The scheduler behind the server (tests submit/inspect directly).
    pub fn scheduler(&self) -> &JobScheduler {
        &self.inner.sched
    }

    /// Accept and serve connections (one thread per connection) until a
    /// `POST /shutdown` arrives. On return, running jobs have paused at
    /// a chunk boundary with their checkpoints saved, and every runner
    /// thread has been joined.
    pub fn serve(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || handle_connection(&inner, stream));
        }
        self.inner.sched.shutdown();
        Ok(())
    }
}

fn handle_connection(inner: &Inner, stream: TcpStream) {
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let req = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond_error(&mut writer, 400, &e);
            return;
        }
    };
    let _ = route(inner, &req, &mut writer);
}

fn respond_json(w: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    http::write_response(w, status, "application/json", body.as_bytes())
}

fn respond_error(w: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let mut body = String::from("{\"error\": ");
    write_json_string(msg, &mut body);
    body.push('}');
    respond_json(w, status, &body)
}

fn op_error(w: &mut TcpStream, e: &JobOpError) -> std::io::Result<()> {
    let status = match e {
        JobOpError::Unknown(_) => 404,
        JobOpError::BadTransition { .. } => 409,
    };
    respond_error(w, status, &e.to_string())
}

fn route(inner: &Inner, req: &Request, w: &mut TcpStream) -> std::io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(b) => b,
                Err(_) => return respond_error(w, 400, "body is not UTF-8"),
            };
            let spec = match JobSpec::from_json(body) {
                Ok(s) => s,
                Err(e) => return respond_error(w, 400, &e.to_string()),
            };
            match inner.sched.submit(spec) {
                Ok(job) => {
                    inner.stats.submissions.fetch_add(1, Ordering::Relaxed);
                    respond_json(w, 201, &job.status().to_json())
                }
                Err(e) => respond_error(w, 400, &e.to_string()),
            }
        }
        ("GET", ["jobs"]) => {
            let mut body = String::from("[");
            for (i, job) in inner.sched.store().list().iter().enumerate() {
                if i > 0 {
                    body.push_str(", ");
                }
                body.push_str(&job.status().to_json());
            }
            body.push(']');
            respond_json(w, 200, &body)
        }
        ("GET", ["jobs", id]) => match lookup(inner, id) {
            Ok(job) => respond_json(w, 200, &job.status().to_json()),
            Err(e) => op_error(w, &e),
        },
        ("GET", ["jobs", id, "rows"]) => match lookup(inner, id) {
            Ok(job) => stream_file(inner, w, &job, &job.csv_path()),
            Err(e) => op_error(w, &e),
        },
        ("GET", ["jobs", id, "metrics"]) => match lookup(inner, id) {
            Ok(job) if job.spec().metrics => stream_file(inner, w, &job, &job.metrics_path()),
            Ok(_) => respond_error(w, 404, "job does not record metrics"),
            Err(e) => op_error(w, &e),
        },
        ("POST", ["jobs", id, "pause"]) => job_op(inner, w, id, |s, j| s.pause(j)),
        ("POST", ["jobs", id, "resume"]) => job_op(inner, w, id, |s, j| s.resume(j)),
        ("POST", ["jobs", id, "cancel"]) => job_op(inner, w, id, |s, j| s.cancel(j)),
        ("GET", ["stats"]) => respond_json(w, 200, &inner.stats.to_json(&inner.sched)),
        ("POST", ["shutdown"]) => {
            inner.shutdown.store(true, Ordering::SeqCst);
            respond_json(w, 200, "{\"ok\": true}")?;
            // Pause running jobs and join runners before waking the
            // accept loop, so "shutdown acknowledged" means "state is
            // durable on disk".
            inner.sched.shutdown();
            let _ = TcpStream::connect(inner.addr); // poke the accept loop
            Ok(())
        }
        (_, ["jobs", ..]) | (_, ["stats"]) | (_, ["shutdown"]) => {
            respond_error(w, 405, &format!("method {} not allowed here", req.method))
        }
        _ => respond_error(w, 404, &format!("no such endpoint {}", req.path)),
    }
}

fn lookup(inner: &Inner, id: &str) -> Result<Arc<Job>, JobOpError> {
    let id: JobId = id.parse().map_err(|_| JobOpError::Unknown(0))?;
    inner.sched.store().get(id).ok_or(JobOpError::Unknown(id))
}

fn job_op(
    inner: &Inner,
    w: &mut TcpStream,
    id: &str,
    op: impl Fn(&JobScheduler, JobId) -> Result<armdse_core::jobstore::JobStatus, JobOpError>,
) -> std::io::Result<()> {
    let job = match lookup(inner, id) {
        Ok(j) => j,
        Err(e) => return op_error(w, &e),
    };
    match op(&inner.sched, job.id()) {
        Ok(status) => respond_json(w, 200, &status.to_json()),
        Err(e) => op_error(w, &e),
    }
}

/// Stream `path` to the client with chunked transfer encoding,
/// following the file as the job appends to it. The job's CSV is
/// flushed and fsynced at every chunk boundary *before* its status
/// version bumps, so waiting on [`Job::wait_change`] and then reading
/// to EOF never observes a torn row. The stream terminates once the
/// job is no longer `Queued`/`Running` and the cursor reached the file
/// length — a stream opened on a paused job returns the prefix
/// produced so far (re-fetch after resume for the full file).
fn stream_file(inner: &Inner, w: &mut TcpStream, job: &Job, path: &Path) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    inner.stats.streams.fetch_add(1, Ordering::Relaxed);
    http::write_chunked_head(w, 200, "text/csv")?;
    let mut out = ChunkedWriter::new(w);
    let mut offset: u64 = 0;
    let mut status = job.status();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        // Drain whatever the file holds past the cursor.
        if let Ok(mut f) = std::fs::File::open(path) {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            if len > offset {
                f.seek(SeekFrom::Start(offset))?;
                loop {
                    let n = f.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    out.chunk(&buf[..n])?;
                    let rows = buf[..n].iter().filter(|&&b| b == b'\n').count();
                    inner
                        .stats
                        .stream_rows
                        .fetch_add(rows as u64, Ordering::Relaxed);
                    inner
                        .stats
                        .stream_bytes
                        .fetch_add(n as u64, Ordering::Relaxed);
                    offset += n as u64;
                }
            }
        }
        let active = matches!(status.state, JobState::Queued | JobState::Running);
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if !active && offset >= len {
            break;
        }
        // Wait for the next chunk boundary (or a state change); the
        // timeout guards against a version bump between our drain and
        // this wait.
        status = job.wait_change(status.version, Duration::from_millis(250));
    }
    out.finish()
}
