//! TeaLeaf — 2-D linear heat conduction mini-app (SPEChpc 2021).
//!
//! Models the conjugate-gradient solver loop (the paper's configuration:
//! 2-D, CG solver). Each CG iteration performs
//!
//! 1. `w = A·p` — a 5-point stencil over the interior cells,
//! 2. `pw = p·w` — a dot product,
//! 3. `u += α p; r -= α w` — two AXPY-style updates,
//! 4. `rr = r·r` — a dot product,
//! 5. `p = r + β p` — the direction update.
//!
//! Per Fig. 1 of the paper, the compiler vectorises TeaLeaf poorly: the
//! stencil, dot products, and AXPY updates are generated *scalar* here,
//! and only the simple direction update (step 5) is SVE-vectorised —
//! yielding the small single-digit vectorisation percentage the paper
//! measures. The working set (six `nx × ny` double arrays) straddles the
//! L1 capacity range, which is why L1 latency and L1 clock dominate
//! TeaLeaf's feature importances.

use crate::layout::{stream_addr, Layout};
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{lanes, op::OpClass, InstrTemplate, Reg};

/// TeaLeaf input parameters (paper Table IV uses 32×32 cells, 5 end
/// steps; scaled here per the DESIGN.md substitution note).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeaLeafParams {
    /// Cells along X.
    pub nx: u64,
    /// Cells along Y.
    pub ny: u64,
    /// Total CG iterations simulated (across all timesteps).
    pub cg_iters: u64,
}

impl TeaLeafParams {
    /// Preset for a workload scale.
    pub fn for_scale(scale: WorkloadScale) -> TeaLeafParams {
        match scale {
            WorkloadScale::Tiny => TeaLeafParams {
                nx: 6,
                ny: 6,
                cg_iters: 1,
            },
            WorkloadScale::Small => TeaLeafParams {
                nx: 12,
                ny: 12,
                cg_iters: 3,
            },
            WorkloadScale::Standard => TeaLeafParams {
                nx: 20,
                ny: 20,
                cg_iters: 5,
            },
        }
    }

    /// Data footprint: six double-precision field arrays.
    pub fn footprint_bytes(&self) -> u64 {
        6 * self.nx * self.ny * 8
    }
}

/// Generate the TeaLeaf kernel for a given vector length.
pub fn kernel(p: &TeaLeafParams, vl_bits: u32) -> Kernel {
    let row = p.nx * 8; // row stride in bytes
    let cells = p.nx * p.ny;

    let mut l = Layout::new();
    let u = l.alloc_array(cells, 8);
    let r = l.alloc_array(cells, 8);
    let pd = l.alloc_array(cells, 8); // direction p
    let w = l.alloc_array(cells, 8);
    let kx = l.alloc_array(cells, 8);
    let ky = l.alloc_array(cells, 8);

    // Loop depths inside one CG iteration (depth 0 = CG loop):
    // stencil: j at 1, i at 2; flat loops: at 1.
    let interior_j = p.ny - 2;
    let interior_i = p.nx - 2;

    let sload = |dst: u8, expr: AddrExpr| {
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(dst),
            &[Reg::gp(1)],
            expr,
            8,
        ))
    };
    let sstore = |src: u8, expr: AddrExpr| {
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(src), Reg::gp(2)],
            expr,
            8,
        ))
    };
    let fp = |op, d: u8, s: &[u8]| {
        let srcs: Vec<Reg> = s.iter().map(|&i| Reg::fp(i)).collect();
        Stmt::Instr(InstrTemplate::compute(op, &[Reg::fp(d)], &srcs))
    };

    // Interior cell address: base + (j+1)*row + (i+1)*8, j at depth 1,
    // i at depth 2.
    let cell = |base: u64, dj: i64, di: i64| {
        AddrExpr::bilinear(
            (base as i64 + (1 + dj) * row as i64 + (1 + di) * 8) as u64,
            1,
            row as i64,
            2,
            8,
        )
    };

    // 1. Stencil: w[j,i] = (kx-weighted neighbours) — 7 loads, 6 FP, 1 store.
    let stencil_cell = vec![
        sload(0, cell(pd, 0, 0)),
        sload(1, cell(pd, -1, 0)),
        sload(2, cell(pd, 1, 0)),
        sload(3, cell(pd, 0, -1)),
        sload(4, cell(pd, 0, 1)),
        sload(5, cell(kx, 0, 0)),
        sload(6, cell(ky, 0, 0)),
        fp(OpClass::FpMul, 7, &[0, 5]),
        fp(OpClass::FpFma, 7, &[1, 6, 7]),
        fp(OpClass::FpFma, 7, &[2, 6, 7]),
        fp(OpClass::FpFma, 7, &[3, 5, 7]),
        fp(OpClass::FpFma, 7, &[4, 5, 7]),
        fp(OpClass::FpAdd, 7, &[7, 0]),
        sstore(7, cell(w, 0, 0)),
    ];
    let stencil = Stmt::repeat(interior_j, vec![Stmt::repeat(interior_i, stencil_cell)]);

    // Flat per-cell address at depth 1.
    let flat = |base: u64| stream_addr(base, 1, 8);

    // 2. Dot product pw = p·w with two accumulators (compiler unroll).
    let dot_pw = Stmt::repeat(
        cells,
        vec![
            sload(0, flat(pd)),
            sload(1, flat(w)),
            fp(OpClass::FpFma, 8, &[0, 1, 8]),
        ],
    );

    // 3. AXPY updates u += αp, r -= αw (α in fp(9)).
    let update = Stmt::repeat(
        cells,
        vec![
            sload(0, flat(u)),
            sload(1, flat(pd)),
            fp(OpClass::FpFma, 2, &[9, 1, 0]),
            sstore(2, flat(u)),
            sload(3, flat(r)),
            sload(4, flat(w)),
            fp(OpClass::FpFma, 5, &[9, 4, 3]),
            sstore(5, flat(r)),
        ],
    );

    // 4. Dot product rr = r·r.
    let dot_rr = Stmt::repeat(
        cells,
        vec![sload(0, flat(r)), fp(OpClass::FpFma, 8, &[0, 0, 8])],
    );

    // 5. Direction update p = r + βp — the one loop the compiler manages
    // to vectorise (β in fp(9)).
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8;
    let vstep = lanes64 * 8;
    let p0 = Reg::pred(0);
    let pupdate = Stmt::repeat(
        cells.div_ceil(lanes64),
        vec![
            Stmt::Instr(InstrTemplate::compute(
                OpClass::PredOp,
                &[p0],
                &[Reg::gp(5)],
            )),
            Stmt::Instr(InstrTemplate::load(
                OpClass::VecLoad,
                Reg::fp(20),
                &[Reg::gp(1), p0],
                stream_addr(r, 1, vstep),
                vb,
            )),
            Stmt::Instr(InstrTemplate::load(
                OpClass::VecLoad,
                Reg::fp(21),
                &[Reg::gp(2), p0],
                stream_addr(pd, 1, vstep),
                vb,
            )),
            Stmt::Instr(InstrTemplate::compute(
                OpClass::VecFma,
                &[Reg::fp(22)],
                &[Reg::fp(20), Reg::fp(21), p0],
            )),
            Stmt::Instr(InstrTemplate::store(
                OpClass::VecStore,
                &[Reg::fp(22), Reg::gp(2), p0],
                stream_addr(pd, 1, vstep),
                vb,
            )),
        ],
    );

    // Scalar α/β recomputation per CG iteration (divides: α = rr / pw).
    let scalars = vec![
        fp(OpClass::FpDiv, 9, &[8, 8]),
        fp(OpClass::FpDiv, 9, &[8, 9]),
    ];

    let mut cg_body = vec![stencil, dot_pw];
    cg_body.extend(scalars.clone());
    cg_body.extend([update, dot_rr, pupdate]);

    Kernel::new("tealeaf", vec![Stmt::repeat(p.cg_iters, cg_body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program, TraceCursor};

    fn summarise(p: TeaLeafParams, vl: u32) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, vl)))
    }

    #[test]
    fn poorly_vectorised() {
        let s = summarise(TeaLeafParams::for_scale(WorkloadScale::Standard), 128);
        let f = s.sve_fraction();
        assert!(f > 0.0 && f < 0.12, "sve fraction {f}");
    }

    #[test]
    fn vectorisation_shrinks_with_vl() {
        let p = TeaLeafParams::for_scale(WorkloadScale::Standard);
        let short = summarise(p, 128).sve_fraction();
        let long = summarise(p, 2048).sve_fraction();
        assert!(long < short, "{long} !< {short}");
    }

    #[test]
    fn memory_heavy_mix() {
        let s = summarise(TeaLeafParams::for_scale(WorkloadScale::Small), 128);
        let loads = s.count(OpClass::Load);
        let flops = s.count(OpClass::FpFma) + s.count(OpClass::FpAdd) + s.count(OpClass::FpMul);
        assert!(
            loads > flops,
            "loads {loads} flops {flops}: TeaLeaf is load heavy"
        );
    }

    #[test]
    fn stencil_touches_neighbours() {
        let p = TeaLeafParams {
            nx: 6,
            ny: 6,
            cg_iters: 1,
        };
        let prog = Program::lower(&kernel(&p, 128));
        // The stencil's north/south neighbour loads are one row apart.
        let addrs: Vec<u64> = TraceCursor::new(&prog)
            .filter_map(|d| d.mem.map(|m| m.addr))
            .take(5)
            .collect();
        let row = p.nx * 8;
        assert_eq!(addrs[1], addrs[0] - row);
        assert_eq!(addrs[2], addrs[0] + row);
        assert_eq!(addrs[3], addrs[0] - 8);
        assert_eq!(addrs[4], addrs[0] + 8);
    }

    #[test]
    fn work_scales_with_cg_iterations() {
        let one = summarise(
            TeaLeafParams {
                nx: 10,
                ny: 10,
                cg_iters: 1,
            },
            128,
        )
        .total();
        let four = summarise(
            TeaLeafParams {
                nx: 10,
                ny: 10,
                cg_iters: 4,
            },
            128,
        )
        .total();
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn contains_fp_divides_for_alpha_beta() {
        let s = summarise(TeaLeafParams::for_scale(WorkloadScale::Small), 128);
        assert_eq!(s.count(OpClass::FpDiv), 2 * 3); // 2 per CG iter × 3 iters
    }

    #[test]
    fn footprint_straddles_l1_range() {
        let p = TeaLeafParams::for_scale(WorkloadScale::Standard);
        let kb = p.footprint_bytes() / 1024;
        assert!((4..128).contains(&kb), "footprint {kb} KiB");
    }
}
