//! miniBUDE — molecular docking mini-app (Poenaru et al.).
//!
//! The hot kernel evaluates the energy of `poses` ligand poses against a
//! protein, vectorised across poses in single precision (lanes = VL/32):
//! for each pose block, an inner loop over ligand atoms performs the
//! distance calculation, a reciprocal-square-root estimate plus Newton
//! refinement, the electrostatic and van-der-Waals terms, and two energy
//! accumulations — an FMA-dense, register/L1-resident, compute-bound loop,
//! which is why the paper finds vector length has "by far the largest
//! impact" on miniBUDE. Paper inputs (Table IV): bm1, 26 atoms, 64 poses,
//! 1 iteration.

use crate::layout::{stream_addr, Layout};
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{lanes, op::OpClass, InstrTemplate, Reg};

/// miniBUDE input parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudeParams {
    /// Number of ligand poses (vectorised dimension).
    pub poses: u64,
    /// Ligand atoms per pose evaluation.
    pub atoms: u64,
    /// Outer kernel iterations.
    pub iterations: u64,
}

impl BudeParams {
    /// Preset for a workload scale. `Standard` keeps the paper's 26 atoms.
    pub fn for_scale(scale: WorkloadScale) -> BudeParams {
        match scale {
            WorkloadScale::Tiny => BudeParams {
                poses: 16,
                atoms: 4,
                iterations: 1,
            },
            WorkloadScale::Small => BudeParams {
                poses: 64,
                atoms: 8,
                iterations: 1,
            },
            WorkloadScale::Standard => BudeParams {
                poses: 128,
                atoms: 26,
                iterations: 2,
            },
        }
    }
}

/// Generate the miniBUDE kernel for a given vector length.
pub fn kernel(p: &BudeParams, vl_bits: u32) -> Kernel {
    let lanes32 = lanes(vl_bits, 32);
    let vb = vl_bits / 8;
    let blocks = p.poses.div_ceil(lanes32);

    let mut l = Layout::new();
    // Pose transform arrays (x, y, z per pose, fp32).
    let px = l.alloc_array(p.poses, 4);
    let py = l.alloc_array(p.poses, 4);
    let pz = l.alloc_array(p.poses, 4);
    // Per-pose energies (output).
    let energies = l.alloc_array(p.poses, 4);
    // Ligand atom records (32 bytes each: coords + force-field entry).
    let lig = l.alloc_array(p.atoms, 32);

    let p0 = Reg::pred(0);
    // depth 0 = iterations, 1 = pose block, 2 = atom.
    let (d_blk, d_atom) = (1usize, 2usize);
    let step = lanes32 * 4; // bytes per pose-block advance

    let c = |op, d: u8, s: &[u8]| {
        let srcs: Vec<Reg> = s.iter().map(|&i| Reg::fp(i)).collect();
        Stmt::Instr(InstrTemplate::compute(op, &[Reg::fp(d)], &srcs))
    };

    // Per-atom inner body: 2 scalar loads of the atom record, then the
    // distance/energy vector chain.
    let atom_body = vec![
        // Ligand atom coordinates + FF params (scalar, L1-resident).
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(10),
            &[Reg::gp(4)],
            AddrExpr::linear(lig, d_atom, 32),
            16,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(11),
            &[Reg::gp(4)],
            AddrExpr::linear(lig + 16, d_atom, 32),
            16,
        )),
        // dx, dy, dz = pose - atom (z0..z2 hold the pose block coords).
        c(OpClass::VecFp, 12, &[0, 10]),
        c(OpClass::VecFp, 13, &[1, 10]),
        c(OpClass::VecFp, 14, &[2, 11]),
        // r2 = dx*dx + dy*dy + dz*dz
        c(OpClass::VecFp, 15, &[12, 12]),
        c(OpClass::VecFma, 15, &[13, 13, 15]),
        c(OpClass::VecFma, 15, &[14, 14, 15]),
        // rsqrt estimate + one Newton step (what the compiler emits for
        // sqrt-free distance handling).
        c(OpClass::VecAlu, 16, &[15]),
        c(OpClass::VecFp, 17, &[16, 16]),
        c(OpClass::VecFma, 16, &[17, 15, 16]),
        // Electrostatic and van-der-Waals terms.
        c(OpClass::VecFma, 18, &[16, 10, 11]),
        c(OpClass::VecFp, 19, &[16, 18]),
        c(OpClass::VecFma, 18, &[19, 19, 18]),
        // Two energy accumulators (compiler-unrolled reduction).
        c(OpClass::VecFma, 20, &[18, 16, 20]),
        c(OpClass::VecFma, 21, &[19, 17, 21]),
    ];

    // Per-block body: load the pose block, run the atom loop, combine the
    // accumulators and store the energies.
    let block_body = vec![
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[p0],
            &[Reg::gp(5)],
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1), p0],
            stream_addr(px, d_blk, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(1),
            &[Reg::gp(2), p0],
            stream_addr(py, d_blk, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(2),
            &[Reg::gp(3), p0],
            stream_addr(pz, d_blk, step),
            vb,
        )),
        Stmt::repeat(p.atoms, atom_body),
        c(OpClass::VecFp, 22, &[20, 21]),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(22), Reg::gp(6), p0],
            stream_addr(energies, d_blk, step),
            vb,
        )),
    ];

    let body = vec![Stmt::repeat(
        p.iterations,
        vec![Stmt::repeat(blocks, block_body)],
    )];
    Kernel::new("minibude", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program};

    fn summarise(p: BudeParams, vl: u32) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, vl)))
    }

    #[test]
    fn heavily_vectorised() {
        let s = summarise(BudeParams::for_scale(WorkloadScale::Small), 128);
        assert!(s.sve_fraction() > 0.6, "sve fraction {}", s.sve_fraction());
    }

    #[test]
    fn fma_dominates_arithmetic() {
        let s = summarise(BudeParams::for_scale(WorkloadScale::Standard), 256);
        assert!(s.count(OpClass::VecFma) > s.count(OpClass::VecFp));
        assert!(s.count(OpClass::VecFma) > s.count(OpClass::Load));
    }

    #[test]
    fn instruction_count_scales_inversely_with_vl() {
        let p = BudeParams::for_scale(WorkloadScale::Standard);
        let short = summarise(p, 128).total();
        let long = summarise(p, 2048).total();
        // 16x lanes → roughly 16x fewer block iterations.
        assert!(short as f64 / long as f64 > 8.0, "{short} vs {long}");
    }

    #[test]
    fn atom_loop_drives_work() {
        let base = BudeParams {
            poses: 64,
            atoms: 8,
            iterations: 1,
        };
        let more = BudeParams {
            poses: 64,
            atoms: 16,
            iterations: 1,
        };
        let a = summarise(base, 512).total();
        let b = summarise(more, 512).total();
        assert!(b > a + a / 2, "doubling atoms should nearly double work");
    }

    #[test]
    fn working_set_is_l1_resident() {
        // Pose + energy + ligand data fits easily in the smallest L1.
        let p = BudeParams::for_scale(WorkloadScale::Standard);
        let bytes = 4 * p.poses * 4 + p.atoms * 32;
        assert!(bytes < 4 * 1024, "footprint {bytes}");
    }
}
