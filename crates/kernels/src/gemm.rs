//! GEMM — register-blocked dense matrix multiply, the FMA-dense kernel.
//!
//! `C = A × B` over `n×n` double matrices in the shape the Arm compiler
//! emits for a VLA-SVE inner loop: the `j` dimension is vectorised in
//! `VL/64`-lane column panels, `a[i][k]` is a scalar load broadcast
//! across the panel, and the `k`-loop body is one broadcast, one
//! contiguous vector load of `B`, and one vector FMA into the panel
//! accumulator. Like miniBUDE it is compute bound and heavily
//! vectorised — its cycle count tracks FMA throughput and the
//! vector-length/frontend parameters, not the memory system — but with
//! a *denser* FMA mix and an L1-resident footprint, which is what makes
//! it a useful unseen-app probe for models trained on the original four
//! codes.
//!
//! ```
//! use armdse_kernels::gemm::{kernel, GemmParams};
//! use armdse_kernels::WorkloadScale;
//! use armdse_isa::{op::OpClass, OpSummary, Program};
//!
//! let p = GemmParams::for_scale(WorkloadScale::Tiny);
//! let s = OpSummary::of(&Program::lower(&kernel(&p, 256)));
//! assert!(s.count(OpClass::VecFma) > 0, "GEMM is FMA dense");
//! assert!(s.sve_fraction() > 0.4, "GEMM is a vector kernel");
//! ```

use crate::layout::Layout;
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{lanes, op::OpClass, InstrTemplate, Reg};

/// Dense GEMM input parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmParams {
    /// Matrix dimension (`n×n` for all three matrices).
    pub n: u64,
}

impl GemmParams {
    /// Preset for a workload scale.
    pub fn for_scale(scale: WorkloadScale) -> GemmParams {
        match scale {
            WorkloadScale::Tiny => GemmParams { n: 4 },
            WorkloadScale::Small => GemmParams { n: 12 },
            WorkloadScale::Standard => GemmParams { n: 24 },
        }
    }

    /// Total data footprint in bytes (three `n×n` double matrices).
    pub fn footprint_bytes(&self) -> u64 {
        3 * self.n * self.n * 8
    }
}

/// Generate the GEMM kernel for a given vector length.
pub fn kernel(p: &GemmParams, vl_bits: u32) -> Kernel {
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8;
    let n = p.n;
    let panels = n.div_ceil(lanes64);

    let mut l = Layout::new();
    let a = l.alloc_array(n * n, 8);
    let b = l.alloc_array(n * n, 8);
    let c = l.alloc_array(n * n, 8);

    // Depths: 0 = i (rows of C), 1 = j panel, 2 = k.
    let p0 = Reg::pred(0);
    let acc = Reg::fp(4);
    let k_body = vec![
        // Broadcast a[i][k] across the panel.
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(0),
            &[Reg::gp(1)],
            AddrExpr::bilinear(a, 0, (n * 8) as i64, 2, 8),
            8,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecAlu,
            &[Reg::fp(1)],
            &[Reg::fp(0)],
        )),
        // Panel of b[k][j..j+lanes].
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(2),
            &[Reg::gp(2), p0],
            AddrExpr::bilinear(b, 1, (lanes64 * 8) as i64, 2, (n * 8) as i64),
            vb,
        )),
        // acc += a_broadcast * b_panel.
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFma,
            &[acc],
            &[Reg::fp(1), Reg::fp(2), acc, p0],
        )),
    ];
    let panel_body = vec![
        // Fresh panel predicate + zeroed accumulator.
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[p0],
            &[Reg::gp(5)],
        )),
        Stmt::Instr(InstrTemplate::compute(OpClass::VecAlu, &[acc], &[])),
        Stmt::repeat(n, k_body),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[acc, Reg::gp(3), p0],
            AddrExpr::bilinear(c, 0, (n * 8) as i64, 1, (lanes64 * 8) as i64),
            vb,
        )),
    ];
    Kernel::new(
        "gemm",
        vec![Stmt::repeat(n, vec![Stmt::repeat(panels, panel_body)])],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program};

    fn summarise(p: GemmParams, vl: u32) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, vl)))
    }

    #[test]
    fn fma_dense() {
        let s = summarise(GemmParams::for_scale(WorkloadScale::Small), 512);
        // One FMA per (i, panel, k) — as many as the B loads.
        assert_eq!(s.count(OpClass::VecFma), s.count(OpClass::VecLoad));
        assert!(s.count(OpClass::VecFma) > s.count(OpClass::Store) + s.count(OpClass::VecStore));
    }

    #[test]
    fn heavily_vectorised() {
        for vl in [128, 512, 2048] {
            let s = summarise(GemmParams::for_scale(WorkloadScale::Small), vl);
            assert!(s.sve_fraction() > 0.4, "vl={vl}: {}", s.sve_fraction());
        }
    }

    #[test]
    fn longer_vectors_shrink_the_panel_count() {
        let p = GemmParams::for_scale(WorkloadScale::Standard);
        let short = summarise(p, 128).total();
        let long = summarise(p, 2048).total();
        assert!(long * 4 < short, "{long} vs {short}");
    }

    #[test]
    fn footprint_is_l1_scale() {
        let p = GemmParams::for_scale(WorkloadScale::Standard);
        assert!(p.footprint_bytes() < 64 * 1024, "{}", p.footprint_bytes());
    }

    #[test]
    fn work_scales_cubically() {
        let small = summarise(GemmParams { n: 8 }, 128).total();
        let big = summarise(GemmParams { n: 16 }, 128).total();
        // 8× the FMA work dominates the lower-order panel overhead.
        assert!(big > 6 * small && big < 10 * small, "{big} vs {small}");
    }
}
