//! SpMV — sparse matrix-vector multiply (CSR), the gather-bound kernel.
//!
//! For each row of a synthetic CSR matrix the nonzero values stream
//! contiguously, but the dense `x` vector is read through the
//! column-index array — an SVE gather issuing one memory request per
//! lane. That per-element request cost is the defining behaviour of
//! irregular HPC codes, and it is what the gather/scatter extension of
//! this reproduction makes measurable: SpMV's bottleneck sits on the
//! memory-request-rate parameters rather than on the vector-length and
//! ROB knobs that dominate the regular codes.
//!
//! The matrix structure is parameterised the way the paper
//! parameterises its inputs (Table IV): row count, nonzeros per row,
//! and the column `spread` — the byte distance between consecutive
//! touched `x` elements, modelling the matrix bandwidth. A spread of 8
//! is a perfectly sorted (contiguous) matrix; hundreds of bytes defeat
//! both spatial locality and the next-line prefetcher.
//!
//! ```
//! use armdse_kernels::spmv::{kernel, SpmvParams};
//! use armdse_kernels::WorkloadScale;
//! use armdse_isa::{op::OpClass, OpSummary, Program};
//!
//! let p = SpmvParams::for_scale(WorkloadScale::Tiny);
//! let s = OpSummary::of(&Program::lower(&kernel(&p, 256)));
//! assert!(s.count(OpClass::VecGather) > 0, "SpMV must gather");
//! assert!(s.sve_fraction() > 0.4, "SpMV is a vector kernel");
//! ```

use crate::layout::Layout;
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{lanes, op::OpClass, InstrTemplate, Reg};

/// Synthetic CSR SpMV input parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvParams {
    /// Matrix rows.
    pub rows: u64,
    /// Nonzeros per row (a banded-matrix CSR with uniform row length).
    pub nnz_per_row: u64,
    /// Byte distance between consecutive gathered `x` elements (the
    /// matrix bandwidth knob; 8 = contiguous, large = cache-hostile).
    pub spread: i64,
}

impl SpmvParams {
    /// Preset for a workload scale.
    pub fn for_scale(scale: WorkloadScale) -> SpmvParams {
        match scale {
            WorkloadScale::Tiny => SpmvParams {
                rows: 8,
                nnz_per_row: 8,
                spread: 512,
            },
            WorkloadScale::Small => SpmvParams {
                rows: 64,
                nnz_per_row: 16,
                spread: 512,
            },
            WorkloadScale::Standard => SpmvParams {
                rows: 256,
                nnz_per_row: 32,
                spread: 512,
            },
        }
    }
}

/// Generate the SpMV kernel for a given vector length.
pub fn kernel(p: &SpmvParams, vl_bits: u32) -> Kernel {
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8;

    let mut l = Layout::new();
    let vals = l.alloc_array(p.rows * p.nnz_per_row, 8); // matrix values (streamed)
                                                         // The gathered x vector spans the whole walked range so the result
                                                         // array allocated after it stays disjoint from the gather footprint.
    let span = (p.rows * 3 + p.nnz_per_row) * (p.spread.unsigned_abs() / 8).max(1) + 64;
    let xvec = l.alloc_array(span, 8);
    let yvec = l.alloc_array(p.rows, 8); // result (streamed)

    let p0 = Reg::pred(0);
    // Depths: 0 = row, 1 = nnz block within the row.
    let blocks = p.nnz_per_row.div_ceil(lanes64);
    let block_body = vec![
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[p0],
            &[Reg::gp(5)],
        )),
        // Stream the matrix values.
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1), p0],
            AddrExpr::bilinear(vals, 0, (p.nnz_per_row * 8) as i64, 1, (lanes64 * 8) as i64),
            vb,
        )),
        // Gather x[col[j]] — one memory request per lane.
        Stmt::Instr(InstrTemplate::gather(
            Reg::fp(1),
            &[Reg::gp(2), p0],
            AddrExpr::bilinear(xvec, 0, p.spread * 3, 1, p.spread * lanes64 as i64),
            8,
            p.spread,
            lanes64 as u32,
        )),
        // Accumulate val * x.
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFma,
            &[Reg::fp(2)],
            &[Reg::fp(0), Reg::fp(1), p0],
        )),
    ];
    let row_body = vec![
        Stmt::repeat(blocks, block_body),
        // Horizontal reduce + store y[row].
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecAlu,
            &[Reg::fp(3)],
            &[Reg::fp(2)],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(3), Reg::gp(3)],
            AddrExpr::linear(yvec, 0, 8),
            8,
        )),
    ];
    Kernel::new("spmv", vec![Stmt::repeat(p.rows, row_body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program};

    fn summarise(p: SpmvParams, vl: u32) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, vl)))
    }

    #[test]
    fn gathers_dominate_the_request_count() {
        let s = summarise(SpmvParams::for_scale(WorkloadScale::Small), 512);
        assert!(s.count(OpClass::VecGather) > 0);
        // One gather per value block: as many gathers as value loads.
        assert_eq!(s.count(OpClass::VecGather), s.count(OpClass::VecLoad));
    }

    #[test]
    fn vectorised_like_the_regular_codes() {
        for vl in [128, 512, 2048] {
            let s = summarise(SpmvParams::for_scale(WorkloadScale::Small), vl);
            assert!(s.sve_fraction() > 0.35, "vl={vl}: {}", s.sve_fraction());
        }
    }

    #[test]
    fn longer_vectors_shrink_the_block_count() {
        let p = SpmvParams::for_scale(WorkloadScale::Standard);
        let short = summarise(p, 128).total();
        let long = summarise(p, 2048).total();
        assert!(long * 4 < short, "{long} vs {short}");
    }

    #[test]
    fn work_scales_with_rows_and_nnz() {
        let base = SpmvParams {
            rows: 32,
            nnz_per_row: 16,
            spread: 512,
        };
        let double_rows = SpmvParams { rows: 64, ..base };
        let b = summarise(base, 256).total();
        let r = summarise(double_rows, 256).total();
        assert_eq!(r, 2 * b);
    }
}
