//! Thread-safe workload memoisation.
//!
//! Workloads depend only on `(app, scale, vector length)`, yet every
//! harness used to rebuild them ad hoc (the orchestrator prebuilt a
//! per-call map, the sweeps kept a one-slot cache, the figures rebuilt
//! from scratch). [`WorkloadCache`] is the single shared hook: build
//! once, hand out cheap [`Arc`] clones forever, safe to share across a
//! campaign's worker threads.

use crate::{build_workload, App, Workload, WorkloadScale};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Key of one memoised workload.
pub type WorkloadKey = (App, WorkloadScale, u32);

/// A thread-safe memo table over [`build_workload`].
///
/// Lowering a kernel is pure, so a cache miss builds *outside* the lock
/// (two threads racing on the same key build identical workloads and
/// one insert wins) — workers never serialise behind kernel lowering.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<WorkloadKey, Arc<Workload>>>,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// The workload for `(app, scale, vl_bits)`, built on first use.
    pub fn get(&self, app: App, scale: WorkloadScale, vl_bits: u32) -> Arc<Workload> {
        let key = (app, scale, vl_bits);
        if let Some(w) = self.map.lock().expect("workload cache poisoned").get(&key) {
            return Arc::clone(w);
        }
        let built = Arc::new(build_workload(app, scale, vl_bits));
        let mut map = self.map.lock().expect("workload cache poisoned");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Number of distinct workloads currently memoised.
    pub fn len(&self) -> usize {
        self.map.lock().expect("workload cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoised workload (frees the lowered programs).
    pub fn clear(&self) {
        self.map.lock().expect("workload cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoises_and_shares_one_build() {
        let cache = WorkloadCache::new();
        let a = cache.get(App::Stream, WorkloadScale::Tiny, 128);
        let b = cache.get(App::Stream, WorkloadScale::Tiny, 128);
        assert!(Arc::ptr_eq(&a, &b), "second get must reuse the first build");
        assert_eq!(cache.len(), 1);
        cache.get(App::Stream, WorkloadScale::Tiny, 256);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_workload_matches_fresh_build() {
        let cache = WorkloadCache::new();
        let cached = cache.get(App::TeaLeaf, WorkloadScale::Tiny, 512);
        let fresh = build_workload(App::TeaLeaf, WorkloadScale::Tiny, 512);
        assert_eq!(cached.summary, fresh.summary);
        assert_eq!(cached.program.ops, fresh.program.ops);
    }

    #[test]
    fn concurrent_gets_agree() {
        let cache = WorkloadCache::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get(App::MiniSweep, WorkloadScale::Tiny, 128)))
                .collect();
            let first = cache.get(App::MiniSweep, WorkloadScale::Tiny, 128);
            for h in handles {
                assert_eq!(h.join().unwrap().summary, first.summary);
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
