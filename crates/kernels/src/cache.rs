//! Thread-safe memoisation primitives.
//!
//! Two caches live here:
//!
//! * [`WorkloadCache`] — the workload memo table. Workloads depend only
//!   on `(app, scale, vector length)`, yet every harness used to
//!   rebuild them ad hoc (the orchestrator prebuilt a per-call map, the
//!   sweeps kept a one-slot cache, the figures rebuilt from scratch).
//!   The cache is the single shared hook: build once, hand out cheap
//!   [`Arc`] clones forever, safe to share across a campaign's worker
//!   threads.
//! * [`ShardedCache`] — a generic bounded shard-locked map, the storage
//!   layer of the simulator's interval-memoizing backend (which keys
//!   interval timing results; see `armdse-simcore`'s `reuse` module).
//!   It lives in this crate beside [`WorkloadCache`] so every
//!   memoisation policy sits in one place, and because `armdse-kernels`
//!   is below the simulator in the dependency order — the cache is
//!   generic over its key/value types, so it needs nothing from above.

use crate::{build_workload, App, Workload, WorkloadScale};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one memoised workload.
pub type WorkloadKey = (App, WorkloadScale, u32);

/// A thread-safe memo table over [`build_workload`].
///
/// Lowering a kernel is pure, so a cache miss builds *outside* the lock
/// (two threads racing on the same key build identical workloads and
/// one insert wins) — workers never serialise behind kernel lowering.
///
/// ## Clearing semantics
///
/// [`clear`](Self::clear) drops the cache's own references; outstanding
/// [`Arc`]s handed to callers stay valid (the lowered programs are
/// freed when the last holder drops). A `get` whose build was in flight
/// when `clear` ran returns its (correct, pure) build but does **not**
/// insert it — clearing bumps a generation counter that the in-flight
/// build's insert checks, so a cleared cache never resurrects
/// pre-clear entries. Without the check, a build that started before
/// the clear could insert after it, silently undoing the clear (the
/// race the regression test below pins).
#[derive(Debug, Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<WorkloadKey, Arc<Workload>>>,
    /// Bumped by every [`clear`](Self::clear) (under the map lock);
    /// an in-flight build only inserts if the generation it started
    /// under is still current.
    generation: AtomicU64,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// The workload for `(app, scale, vl_bits)`, built on first use.
    pub fn get(&self, app: App, scale: WorkloadScale, vl_bits: u32) -> Arc<Workload> {
        let key = (app, scale, vl_bits);
        self.get_with(key, || build_workload(app, scale, vl_bits))
    }

    /// [`get`](Self::get) with an injectable builder — the seam the
    /// clear-during-build regression test drives deterministically.
    fn get_with(&self, key: WorkloadKey, build: impl FnOnce() -> Workload) -> Arc<Workload> {
        let gen_before = {
            let map = self.map.lock().expect("workload cache poisoned");
            if let Some(w) = map.get(&key) {
                return Arc::clone(w);
            }
            // Read under the lock so a clear that completed before this
            // miss is fully ordered before the build.
            self.generation.load(Ordering::Relaxed)
        };
        let built = Arc::new(build());
        let mut map = self.map.lock().expect("workload cache poisoned");
        if self.generation.load(Ordering::Relaxed) != gen_before {
            // A clear ran while building: hand the build out without
            // inserting, keeping the clear authoritative.
            return built;
        }
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Number of distinct workloads currently memoised.
    pub fn len(&self) -> usize {
        self.map.lock().expect("workload cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoised workload (frees the lowered programs once
    /// outstanding `Arc`s drop; see *Clearing semantics* above).
    pub fn clear(&self) {
        let mut map = self.map.lock().expect("workload cache poisoned");
        map.clear();
        // Under the lock: any in-flight build re-locks to insert, so it
        // observes the bump strictly before or strictly after — never
        // torn against — this clear.
        self.generation.fetch_add(1, Ordering::Relaxed);
    }
}

/// Running totals of a [`ShardedCache`]'s traffic. Monotone within one
/// cache lifetime ([`ShardedCache::clear`] resets them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Values actually inserted (get-or-insert races that lost count as
    /// hits, not insertions).
    pub insertions: u64,
    /// Entries dropped to keep a shard within its capacity bound.
    pub evictions: u64,
}

/// One lock's worth of a [`ShardedCache`]: the map plus FIFO insertion
/// order for eviction.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
}

/// A bounded, shard-locked, get-or-insert memo table.
///
/// * **Sharded** — keys hash to one of `shards` independently locked
///   segments, so concurrent workers on different keys never contend.
/// * **Bounded** — each shard holds at most `⌈capacity / shards⌉`
///   entries and evicts its oldest insertion (FIFO) beyond that, so the
///   cache's footprint is a configuration constant, not a function of
///   campaign length.
/// * **Get-or-insert** — [`insert`](Self::insert) returns the existing
///   [`Arc`] when the key is already present, so two threads racing to
///   memoise the same (deterministic) computation agree on one value.
///
/// Values are handed out as [`Arc`]s: eviction drops the cache's
/// reference, never a holder's.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count for [`ShardedCache::with_defaults`].
pub const DEFAULT_CACHE_SHARDS: usize = 16;
/// Default total entry bound for [`ShardedCache::with_defaults`].
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

impl<K: Hash + Eq + Clone, V> ShardedCache<K, V> {
    /// A cache of `shards` segments bounded at `capacity` total entries
    /// (rounded up to a multiple of the shard count).
    pub fn new(shards: usize, capacity: usize) -> ShardedCache<K, V> {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with the default shard count and capacity bound.
    pub fn with_defaults() -> ShardedCache<K, V> {
        ShardedCache::new(DEFAULT_CACHE_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let shard = self.shard(key).lock().expect("sharded cache poisoned");
        match shard.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `value` under `key`, or return the already-present value
    /// (get-or-insert; neither a hit nor a miss is counted). Evicts the
    /// shard's oldest insertion when over capacity.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let mut shard = self.shard(&key).lock().expect("sharded cache poisoned");
        if let Some(v) = shard.map.get(&key) {
            return Arc::clone(v);
        }
        while shard.order.len() >= self.per_shard_capacity {
            let victim = shard.order.pop_front().expect("order matches map");
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let v = Arc::new(value);
        shard.order.push_back(key.clone());
        shard.map.insert(key, Arc::clone(&v));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Remove `key` if present (outstanding `Arc`s stay valid).
    pub fn remove(&self, key: &K) {
        let mut shard = self.shard(key).lock().expect("sharded cache poisoned");
        if shard.map.remove(key).is_some() {
            shard.order.retain(|k| k != key);
        }
    }

    /// Total entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("sharded cache poisoned").map.len())
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry and reset the traffic counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut shard = s.lock().expect("sharded cache poisoned");
            shard.map.clear();
            shard.order.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoises_and_shares_one_build() {
        let cache = WorkloadCache::new();
        let a = cache.get(App::Stream, WorkloadScale::Tiny, 128);
        let b = cache.get(App::Stream, WorkloadScale::Tiny, 128);
        assert!(Arc::ptr_eq(&a, &b), "second get must reuse the first build");
        assert_eq!(cache.len(), 1);
        cache.get(App::Stream, WorkloadScale::Tiny, 256);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_workload_matches_fresh_build() {
        let cache = WorkloadCache::new();
        let cached = cache.get(App::TeaLeaf, WorkloadScale::Tiny, 512);
        let fresh = build_workload(App::TeaLeaf, WorkloadScale::Tiny, 512);
        assert_eq!(cached.summary, fresh.summary);
        assert_eq!(cached.program.ops, fresh.program.ops);
    }

    #[test]
    fn concurrent_gets_agree() {
        let cache = WorkloadCache::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get(App::MiniSweep, WorkloadScale::Tiny, 128)))
                .collect();
            let first = cache.get(App::MiniSweep, WorkloadScale::Tiny, 128);
            for h in handles {
                assert_eq!(h.join().unwrap().summary, first.summary);
            }
        });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_during_build_is_not_resurrected() {
        // Deterministic replay of the clear/get race: the builder runs
        // outside the lock, and a clear lands exactly in that window.
        // The pre-clear build must be handed out (it is pure and
        // correct) but must NOT be inserted into the cleared cache.
        let cache = WorkloadCache::new();
        let key = (App::Stream, WorkloadScale::Tiny, 128);
        let w = cache.get_with(key, || {
            cache.clear();
            build_workload(App::Stream, WorkloadScale::Tiny, 128)
        });
        assert_eq!(
            w.summary,
            build_workload(App::Stream, WorkloadScale::Tiny, 128).summary
        );
        assert!(
            cache.is_empty(),
            "a build that started before clear() must not be inserted after it"
        );
        // The next get builds (and caches) fresh.
        let fresh = cache.get(App::Stream, WorkloadScale::Tiny, 128);
        assert_eq!(cache.len(), 1);
        assert!(!Arc::ptr_eq(&w, &fresh), "stale Arc must stay detached");
    }

    #[test]
    fn clear_keeps_outstanding_arcs_valid() {
        let cache = WorkloadCache::new();
        let held = cache.get(App::TeaLeaf, WorkloadScale::Tiny, 128);
        cache.clear();
        assert!(cache.is_empty());
        // The holder's view is unaffected by the clear.
        assert_eq!(held.program.name, "tealeaf");
        let rebuilt = cache.get(App::TeaLeaf, WorkloadScale::Tiny, 128);
        assert!(!Arc::ptr_eq(&held, &rebuilt));
        assert_eq!(held.summary, rebuilt.summary);
    }

    #[test]
    fn sharded_cache_get_or_insert_and_stats() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(4, 64);
        assert!(cache.get(&1).is_none());
        let a = cache.insert(1, 10);
        let b = cache.insert(1, 999); // loses the race: existing value wins
        assert_eq!((*a, *b), (10, 10));
        assert_eq!(*cache.get(&1).unwrap(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn sharded_cache_bounds_each_shard_fifo() {
        // One shard makes eviction order fully observable.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 3);
        for k in 0..5 {
            cache.insert(k, k * 100);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
        // Oldest insertions (0, 1) were evicted, newest (2, 3, 4) remain.
        assert!(cache.get(&0).is_none() && cache.get(&1).is_none());
        for k in 2..5 {
            assert_eq!(*cache.get(&k).unwrap(), k * 100);
        }
    }

    #[test]
    fn sharded_cache_eviction_keeps_holders_alive() {
        let cache: ShardedCache<u64, Vec<u64>> = ShardedCache::new(1, 1);
        let held = cache.insert(7, vec![7; 32]);
        cache.insert(8, vec![8; 32]); // evicts key 7
        assert!(cache.get(&7).is_none());
        assert_eq!(held[0], 7, "evicted value must stay valid for holders");
        cache.remove(&8);
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_cache_concurrent_insert_converges() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_defaults();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|k| *cache.insert(k, k)).sum::<u64>()))
                .collect();
            for h in handles {
                // Every thread sees the same winning values.
                assert_eq!(h.join().unwrap(), (0..100).sum::<u64>());
            }
        });
        assert_eq!(cache.len(), 100);
    }
}
