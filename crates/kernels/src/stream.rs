//! STREAM — sustained memory bandwidth benchmark (McCalpin).
//!
//! Four kernels over three double-precision arrays, swept `passes` times:
//!
//! * Copy:  `c[i] = a[i]`
//! * Scale: `b[i] = s * c[i]`
//! * Add:   `c[i] = a[i] + b[i]`
//! * Triad: `a[i] = b[i] + s * c[i]`
//!
//! Each loop compiles (as the Arm compiler does for VLA SVE) to a
//! `whilelo`-governed vector loop: predicate generation, contiguous vector
//! loads/stores of `VL/8` bytes, and one vector arithmetic op. The paper
//! uses an array size of 200,000 doubles (4.6 MiB total) so STREAM is "L2
//! or RAM bound depending on the configuration"; our `Standard` scale keeps
//! the same property against the scaled-down L2 range (192 KiB footprint
//! vs 64 KiB–8 MiB L2 sizes).

use crate::layout::{stream_addr, Layout};
use crate::WorkloadScale;
use armdse_isa::kir::{Kernel, Stmt};
use armdse_isa::{lanes, op::OpClass, InstrTemplate, Reg};

/// STREAM input parameters (paper Table IV: array size 200,000, OpenMP
/// single thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamParams {
    /// Elements per array (doubles).
    pub n: u64,
    /// Number of full four-kernel passes.
    pub passes: u64,
}

impl StreamParams {
    /// Preset for a workload scale.
    pub fn for_scale(scale: WorkloadScale) -> StreamParams {
        match scale {
            WorkloadScale::Tiny => StreamParams { n: 64, passes: 1 },
            WorkloadScale::Small => StreamParams { n: 1024, passes: 1 },
            WorkloadScale::Standard => StreamParams { n: 8192, passes: 1 },
        }
    }

    /// Total data footprint in bytes (three arrays of doubles).
    pub fn footprint_bytes(&self) -> u64 {
        3 * self.n * 8
    }
}

/// Generate the STREAM kernel for a given vector length.
pub fn kernel(p: &StreamParams, vl_bits: u32) -> Kernel {
    let lanes64 = lanes(vl_bits, 64);
    let vb = vl_bits / 8; // bytes per vector access
    let step = lanes64 * 8; // bytes advanced per iteration
    let trip = p.n.div_ceil(lanes64);

    let mut l = Layout::new();
    let a = l.alloc_array(p.n, 8);
    let b = l.alloc_array(p.n, 8);
    let c = l.alloc_array(p.n, 8);

    // Inner loops sit at depth 1 when wrapped in a pass loop, else depth 0.
    let d = usize::from(p.passes > 1);

    let p0 = Reg::pred(0);
    let idx = Reg::gp(5);
    let scale_const = Reg::fp(8);
    let whilelo = InstrTemplate::compute(OpClass::PredOp, &[p0], &[idx]);

    // Copy: c[i] = a[i]
    let copy = vec![
        Stmt::Instr(whilelo),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1), p0],
            stream_addr(a, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(0), Reg::gp(3), p0],
            stream_addr(c, d, step),
            vb,
        )),
    ];

    // Scale: b[i] = s * c[i]
    let scale = vec![
        Stmt::Instr(whilelo),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(1),
            &[Reg::gp(3), p0],
            stream_addr(c, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFp,
            &[Reg::fp(2)],
            &[Reg::fp(1), scale_const, p0],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(2), Reg::gp(2), p0],
            stream_addr(b, d, step),
            vb,
        )),
    ];

    // Add: c[i] = a[i] + b[i]
    let add = vec![
        Stmt::Instr(whilelo),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(3),
            &[Reg::gp(1), p0],
            stream_addr(a, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(4),
            &[Reg::gp(2), p0],
            stream_addr(b, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFp,
            &[Reg::fp(5)],
            &[Reg::fp(3), Reg::fp(4), p0],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(5), Reg::gp(3), p0],
            stream_addr(c, d, step),
            vb,
        )),
    ];

    // Triad: a[i] = b[i] + s * c[i]
    let triad = vec![
        Stmt::Instr(whilelo),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(6),
            &[Reg::gp(2), p0],
            stream_addr(b, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(7),
            &[Reg::gp(3), p0],
            stream_addr(c, d, step),
            vb,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::VecFma,
            &[Reg::fp(9)],
            &[Reg::fp(6), Reg::fp(7), scale_const, p0],
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(9), Reg::gp(1), p0],
            stream_addr(a, d, step),
            vb,
        )),
    ];

    let pass = vec![
        Stmt::repeat(trip, copy),
        Stmt::repeat(trip, scale),
        Stmt::repeat(trip, add),
        Stmt::repeat(trip, triad),
    ];

    let body = if p.passes > 1 {
        vec![Stmt::repeat(p.passes, pass)]
    } else {
        pass
    };
    Kernel::new("stream", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program, TraceCursor};

    fn summarise(n: u64, passes: u64, vl: u32) -> OpSummary {
        let prog = Program::lower(&kernel(&StreamParams { n, passes }, vl));
        OpSummary::of(&prog)
    }

    #[test]
    fn byte_totals_scale_with_n_not_vl() {
        // STREAM moves (copy: 2n + scale: 2n + add: 3n + triad: 3n) * 8
        // bytes regardless of vector length when n divides the lanes.
        for vl in [128, 256, 1024, 2048] {
            let s = summarise(4096, 1, vl);
            assert_eq!(s.load_bytes, 6 * 4096 * 8, "vl={vl}");
            assert_eq!(s.store_bytes, 4 * 4096 * 8, "vl={vl}");
        }
    }

    #[test]
    fn remainder_iteration_rounds_up() {
        // n = 100 with 32 lanes (vl=2048) → 4 governed iterations, the
        // last partially predicated (bytes still counted per full vector,
        // matching how the core issues the whole VL-wide access).
        let p = Program::lower(&kernel(&StreamParams { n: 100, passes: 1 }, 2048));
        assert_eq!(p.loops.len(), 4);
        assert!(p.loops.iter().all(|l| l.trip == 4));
    }

    #[test]
    fn passes_multiply_work() {
        let one = summarise(512, 1, 256).total();
        let three = summarise(512, 3, 256).total();
        // Three passes of the same work plus the pass loop's own control
        // ops (2 per pass).
        assert_eq!(three, one * 3 + 6);
    }

    #[test]
    fn trace_addresses_stay_in_arrays() {
        let prm = StreamParams { n: 256, passes: 2 };
        let prog = Program::lower(&kernel(&prm, 512));
        let footprint = prm.footprint_bytes() + 3 * crate::layout::ARRAY_ALIGN;
        for di in TraceCursor::new(&prog) {
            if let Some(m) = di.mem {
                let off = m.addr - crate::layout::HEAP_BASE;
                assert!(off + u64::from(m.bytes) <= footprint + crate::layout::ARRAY_ALIGN);
            }
        }
    }

    #[test]
    fn vector_fraction_over_half() {
        let s = summarise(2048, 1, 128);
        assert!(s.sve_fraction() > 0.5, "{}", s.sve_fraction());
    }

    #[test]
    fn triad_uses_fma() {
        let s = summarise(512, 1, 128);
        assert!(s.count(OpClass::VecFma) > 0);
        assert!(s.count(OpClass::VecFp) > 0);
        assert!(s.count(OpClass::PredOp) > 0);
    }
}
