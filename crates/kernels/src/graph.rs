//! Graph — pointer-chasing traversal, the latency-bound scalar kernel.
//!
//! Models the inner loop of a graph walk (random-access traversals of
//! the GUPS / Graph500 family): each step loads the next node pointer
//! *from the current node* — a scalar load whose address register is
//! the previous load's destination, so the chain serialises at full
//! memory round-trip latency and no amount of reorder window can hide
//! it — then scans the node's `degree` adjacent edge weights and folds
//! them into a scalar accumulator. The node records are laid out
//! `spread` bytes apart, defeating spatial locality and the next-line
//! prefetcher the way a randomised node ordering does.
//!
//! Like TeaLeaf and MiniSweep, the compiler cannot vectorise a pointer
//! chase: the kernel is generated fully scalar and is (correctly)
//! insensitive to vector length. Unlike either, its bottleneck is pure
//! load-to-use latency — the L2/RAM latency and clock parameters —
//! which is what makes it a distinct unseen-app probe.
//!
//! ```
//! use armdse_kernels::graph::{kernel, GraphParams};
//! use armdse_kernels::WorkloadScale;
//! use armdse_isa::{OpSummary, Program};
//!
//! let p = GraphParams::for_scale(WorkloadScale::Tiny);
//! let s = OpSummary::of(&Program::lower(&kernel(&p, 256)));
//! assert_eq!(s.sve_fraction(), 0.0, "a pointer chase cannot vectorise");
//! ```

use crate::layout::Layout;
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{op::OpClass, InstrTemplate, Reg};

/// Pointer-chasing graph traversal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphParams {
    /// Nodes visited (the length of the chase).
    pub nodes: u64,
    /// Edges scanned per node.
    pub degree: u64,
    /// Byte distance between consecutive node records (the locality
    /// knob: 64 packs nodes line-per-node, hundreds defeat the
    /// prefetcher and spread the walk across the cache).
    pub spread: i64,
}

impl GraphParams {
    /// Preset for a workload scale.
    pub fn for_scale(scale: WorkloadScale) -> GraphParams {
        match scale {
            WorkloadScale::Tiny => GraphParams {
                nodes: 32,
                degree: 2,
                spread: 520,
            },
            WorkloadScale::Small => GraphParams {
                nodes: 400,
                degree: 4,
                spread: 520,
            },
            WorkloadScale::Standard => GraphParams {
                nodes: 1500,
                degree: 4,
                spread: 520,
            },
        }
    }

    /// Bytes spanned by the node records.
    pub fn footprint_bytes(&self) -> u64 {
        self.nodes * self.spread.unsigned_abs()
    }
}

/// Generate the graph-traversal kernel for a given vector length.
///
/// The vector length is accepted for interface uniformity but — as for
/// TeaLeaf and MiniSweep — the generated walk is scalar.
pub fn kernel(p: &GraphParams, _vl_bits: u32) -> Kernel {
    let mut l = Layout::new();
    // Node records: [next-pointer | degree edge weights | pad] every
    // `spread` bytes.
    let nodes = l.alloc(p.footprint_bytes() + 4096);
    let edges = nodes + 8;

    // Depths: 0 = chase step, 1 = edge within the node.
    let next = Reg::gp(10); // the chased pointer (loop-carried chain)
    let w = Reg::fp(0);
    let acc = Reg::fp(1);
    let deg_acc = Reg::gp(11);

    let edge_body = vec![
        // Edge weight, addressed off the chased pointer.
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            w,
            &[next],
            AddrExpr::bilinear(edges, 0, p.spread, 1, 8),
            8,
        )),
        // Fold into the scalar accumulators (visit work).
        Stmt::Instr(InstrTemplate::compute(OpClass::FpAdd, &[acc], &[acc, w])),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::IntAlu,
            &[deg_acc],
            &[deg_acc],
        )),
    ];
    let chase_body = vec![
        // next = node->next: the serialising load — its address source
        // is the previous iteration's destination register.
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            next,
            &[next],
            AddrExpr::linear(nodes, 0, p.spread),
            8,
        )),
        Stmt::repeat(p.degree, edge_body),
    ];
    Kernel::new("graph", vec![Stmt::repeat(p.nodes, chase_body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::{OpSummary, Program};

    fn summarise(p: GraphParams) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, 128)))
    }

    #[test]
    fn fully_scalar() {
        let s = summarise(GraphParams::for_scale(WorkloadScale::Standard));
        assert_eq!(s.sve_fraction(), 0.0);
    }

    #[test]
    fn loads_dominate_the_mix() {
        let s = summarise(GraphParams::for_scale(WorkloadScale::Small));
        let flops = s.count(OpClass::FpAdd) + s.count(OpClass::FpFma) + s.count(OpClass::FpMul);
        assert!(s.count(OpClass::Load) > flops, "a walk is load heavy");
        assert_eq!(s.count(OpClass::Store) + s.count(OpClass::VecStore), 0);
    }

    #[test]
    fn chase_load_depends_on_itself() {
        // The structural property the kernel exists for: the next-pointer
        // load names its own destination register as its address source.
        let p = GraphParams::for_scale(WorkloadScale::Tiny);
        let prog = Program::lower(&kernel(&p, 128));
        let chained = prog.ops.iter().any(|o| {
            let t = &o.template;
            t.op == OpClass::Load && t.dests.iter().any(|d| t.srcs.iter().any(|s| s == d))
        });
        assert!(chained, "missing the serialising pointer chain");
    }

    #[test]
    fn work_scales_with_nodes_and_degree() {
        let base = GraphParams {
            nodes: 64,
            degree: 2,
            spread: 520,
        };
        let longer = GraphParams { nodes: 128, ..base };
        let denser = GraphParams { degree: 4, ..base };
        let b = summarise(base).total();
        assert_eq!(summarise(longer).total(), 2 * b);
        assert!(summarise(denser).total() > b + b / 3);
    }
}
