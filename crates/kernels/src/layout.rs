//! Heap layout helpers shared by the workload generators.

use armdse_isa::kir::AddrExpr;

/// Base of the simulated data heap (clear of the code segment).
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Alignment applied between consecutively allocated arrays, chosen larger
/// than any cache line in the design space so arrays never share a line.
pub const ARRAY_ALIGN: u64 = 4096;

/// A bump allocator handing out page-aligned array base addresses.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Start a fresh layout at [`HEAP_BASE`].
    pub fn new() -> Layout {
        Layout { next: HEAP_BASE }
    }

    /// Allocate `bytes` and return the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let aligned = bytes.div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
        self.next += aligned.max(ARRAY_ALIGN);
        base
    }

    /// Allocate an array of `n` elements of `elem_bytes` each.
    pub fn alloc_array(&mut self, n: u64, elem_bytes: u64) -> u64 {
        self.alloc(n * elem_bytes)
    }

    /// Total bytes reserved so far (the workload's data footprint upper
    /// bound, used in tests to confirm working-set targets).
    pub fn footprint(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

/// Unit-stride access at `base + i * elem_bytes` over loop depth `depth`.
pub fn stream_addr(base: u64, depth: usize, step_bytes: u64) -> AddrExpr {
    AddrExpr::linear(base, depth, step_bytes as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(100);
        let b = l.alloc(5000);
        let c = l.alloc(1);
        assert_eq!(a % ARRAY_ALIGN, 0);
        assert_eq!(b % ARRAY_ALIGN, 0);
        assert!(b >= a + ARRAY_ALIGN);
        assert!(c >= b + 5000);
    }

    #[test]
    fn footprint_accumulates() {
        let mut l = Layout::new();
        l.alloc_array(1024, 8);
        assert_eq!(l.footprint(), 8192);
        l.alloc(1);
        assert_eq!(l.footprint(), 8192 + ARRAY_ALIGN);
    }

    #[test]
    fn stream_addr_strides() {
        let e = stream_addr(0x1000, 1, 64);
        assert_eq!(e.eval(&[9, 3]), 0x1000 + 3 * 64);
    }
}
