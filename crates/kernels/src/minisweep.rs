//! MiniSweep — radiation transport (Sn sweep) mini-app (SPEChpc 2021).
//!
//! Models the KBA wavefront sweep: for each octant, the solver walks the
//! grid cell by cell, and for each cell iterates over discrete angles,
//! gathering the three upstream face fluxes, combining them with the cell
//! source (3 FMAs), applying the diagonal solve (2 FP ops), and scattering
//! the three downstream faces. The face arrays couple consecutive cells,
//! so successive cells carry genuine load-after-store dependencies through
//! memory — the structural hazard that makes MiniSweep compute bound with
//! a relatively high arithmetic intensity on one rank (paper §V-B).
//!
//! Per Fig. 1, the compiler fails to vectorise MiniSweep; the sweep is
//! generated fully scalar, so vector length has (correctly) almost no
//! effect on it. Paper inputs (Table IV): 4×4×4 cells, 32 angles per
//! octant, 1 sweep iteration.

use crate::layout::Layout;
use crate::WorkloadScale;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{op::OpClass, InstrTemplate, Reg};

/// MiniSweep input parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepParams {
    /// Grid cells along each of X, Y, Z.
    pub ncell: u64,
    /// Angles per octant direction.
    pub angles: u64,
    /// Octants swept (the full code sweeps 8).
    pub octants: u64,
}

impl SweepParams {
    /// Preset for a workload scale. `Standard` keeps the paper's 4×4×4
    /// grid and scales angles/octants for simulation-time parity.
    pub fn for_scale(scale: WorkloadScale) -> SweepParams {
        match scale {
            WorkloadScale::Tiny => SweepParams {
                ncell: 2,
                angles: 2,
                octants: 1,
            },
            WorkloadScale::Small => SweepParams {
                ncell: 4,
                angles: 8,
                octants: 1,
            },
            WorkloadScale::Standard => SweepParams {
                ncell: 4,
                angles: 16,
                octants: 4,
            },
        }
    }
}

/// Generate the MiniSweep kernel for a given vector length.
///
/// The vector length is accepted for interface uniformity but — matching
/// the measured near-zero vectorisation — the generated sweep is scalar.
pub fn kernel(p: &SweepParams, _vl_bits: u32) -> Kernel {
    let n = p.ncell;
    let na = p.angles;

    let mut l = Layout::new();
    // State vector per (cell, angle) and the cell source.
    let psi = l.alloc_array(n * n * n * na, 8);
    let src = l.alloc_array(n * n * n, 8);
    // Face flux arrays: fx couples along X (indexed by y, z, angle), etc.
    let fx = l.alloc_array(n * n * na, 8);
    let fy = l.alloc_array(n * n * na, 8);
    let fz = l.alloc_array(n * n * na, 8);

    // Loop depths: 0 = octant, 1 = z, 2 = y, 3 = x, 4 = angle.
    let (dz, dy, dx, da) = (1usize, 2usize, 3usize, 4usize);

    let sload = |dst: u8, expr: AddrExpr| {
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(dst),
            &[Reg::gp(1)],
            expr,
            8,
        ))
    };
    let sstore = |src_reg: u8, expr: AddrExpr| {
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(src_reg), Reg::gp(2)],
            expr,
            8,
        ))
    };
    let fp = |op, d: u8, s: &[u8]| {
        let srcs: Vec<Reg> = s.iter().map(|&i| Reg::fp(i)).collect();
        Stmt::Instr(InstrTemplate::compute(op, &[Reg::fp(d)], &srcs))
    };

    // Face addresses: fx[(z*n + y)*na + a] — independent of x, so the
    // store at cell x is re-loaded at cell x+1 (the wavefront coupling).
    let face_x = {
        let mut e = AddrExpr::fixed(fx);
        e.strides[dz] = (n * na * 8) as i64;
        e.strides[dy] = (na * 8) as i64;
        e.strides[da] = 8;
        e
    };
    let face_y = {
        let mut e = AddrExpr::fixed(fy);
        e.strides[dz] = (n * na * 8) as i64;
        e.strides[dx] = (na * 8) as i64;
        e.strides[da] = 8;
        e
    };
    let face_z = {
        let mut e = AddrExpr::fixed(fz);
        e.strides[dy] = (n * na * 8) as i64;
        e.strides[dx] = (na * 8) as i64;
        e.strides[da] = 8;
        e
    };
    let psi_addr = {
        let mut e = AddrExpr::fixed(psi);
        e.strides[dz] = (n * n * na * 8) as i64;
        e.strides[dy] = (n * na * 8) as i64;
        e.strides[dx] = (na * 8) as i64;
        e.strides[da] = 8;
        e
    };
    let src_addr = {
        let mut e = AddrExpr::fixed(src);
        e.strides[dz] = (n * n * 8) as i64;
        e.strides[dy] = (n * 8) as i64;
        e.strides[dx] = 8;
        e
    };

    // Per-angle body: gather, solve, scatter.
    let angle_body = vec![
        sload(0, face_x),
        sload(1, face_y),
        sload(2, face_z),
        sload(3, src_addr),
        // v = q + mu*fx + eta*fy + xi*fz  (direction cosines in fp 10..12)
        fp(OpClass::FpFma, 4, &[10, 0, 3]),
        fp(OpClass::FpFma, 4, &[11, 1, 4]),
        fp(OpClass::FpFma, 4, &[12, 2, 4]),
        // Diagonal solve: psi = v * denominator-reciprocal, clip.
        fp(OpClass::FpMul, 5, &[4, 13]),
        fp(OpClass::FpAdd, 5, &[5, 14]),
        sstore(5, psi_addr),
        // Downstream faces: f = 2*psi - f_in.
        fp(OpClass::FpFma, 6, &[5, 15, 0]),
        fp(OpClass::FpFma, 7, &[5, 15, 1]),
        fp(OpClass::FpFma, 8, &[5, 15, 2]),
        sstore(6, face_x),
        sstore(7, face_y),
        sstore(8, face_z),
    ];

    let sweep = Stmt::repeat(
        p.octants,
        vec![Stmt::repeat(
            n,
            vec![Stmt::repeat(
                n,
                vec![Stmt::repeat(n, vec![Stmt::repeat(na, angle_body)])],
            )],
        )],
    );

    Kernel::new("minisweep", vec![sweep])
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::instr::MemKind;
    use armdse_isa::{OpSummary, Program, TraceCursor};

    fn summarise(p: SweepParams) -> OpSummary {
        OpSummary::of(&Program::lower(&kernel(&p, 128)))
    }

    #[test]
    fn fully_scalar() {
        let s = summarise(SweepParams::for_scale(WorkloadScale::Standard));
        assert_eq!(s.sve_fraction(), 0.0);
    }

    #[test]
    fn compute_heavy_mix() {
        let s = summarise(SweepParams::for_scale(WorkloadScale::Small));
        let flops = s.count(OpClass::FpFma) + s.count(OpClass::FpAdd) + s.count(OpClass::FpMul);
        let mem = s.count(OpClass::Load) + s.count(OpClass::Store);
        assert!(flops >= mem, "flops {flops} vs mem {mem}");
    }

    #[test]
    fn face_store_feeds_next_cell_load() {
        // The x-face address is identical for consecutive x cells at the
        // same (y, z, angle): a genuine load-after-store chain.
        let p = SweepParams {
            ncell: 2,
            angles: 1,
            octants: 1,
        };
        let prog = Program::lower(&kernel(&p, 128));
        let mut face_x_loads = vec![];
        let mut face_x_stores = vec![];
        for d in TraceCursor::new(&prog) {
            if let Some(m) = d.mem {
                // fx array is the third allocation; identify by address
                // range via ordering: loads of fx occur first per angle.
                match m.kind {
                    MemKind::Load => face_x_loads.push(m.addr),
                    MemKind::Store => face_x_stores.push(m.addr),
                }
            }
        }
        // Store set and load set overlap (wavefront coupling).
        assert!(face_x_stores.iter().any(|a| face_x_loads.contains(a)));
    }

    #[test]
    fn work_scales_with_angles_and_octants() {
        let base = summarise(SweepParams {
            ncell: 4,
            angles: 4,
            octants: 1,
        })
        .total();
        let more_angles = summarise(SweepParams {
            ncell: 4,
            angles: 8,
            octants: 1,
        })
        .total();
        let more_octants = summarise(SweepParams {
            ncell: 4,
            angles: 4,
            octants: 2,
        })
        .total();
        assert!(more_angles > base + base / 2);
        assert_eq!(more_octants, 2 * base);
    }

    #[test]
    fn footprint_is_l1_scale() {
        let p = SweepParams::for_scale(WorkloadScale::Standard);
        let bytes =
            (p.ncell.pow(3) * p.angles + p.ncell.pow(3) + 3 * p.ncell.pow(2) * p.angles) * 8;
        assert!(bytes < 64 * 1024, "footprint {bytes}");
    }
}
