//! # armdse-kernels — vector-length-agnostic HPC workload generators
//!
//! Stand-ins for the paper's four statically compiled Armv8.4-a+SVE
//! binaries (§IV-A, Table IV): STREAM, miniBUDE, TeaLeaf, and MiniSweep.
//! Each generator emits a kernel-IR loop nest that reproduces the
//! corresponding code's
//!
//! * **loop structure** (streaming passes, pose×atom nests, CG solver
//!   phases, KBA wavefront sweeps),
//! * **instruction mix** — in particular the vectorisation split of
//!   Fig. 1: STREAM and miniBUDE compile to heavily SVE-vectorised loops,
//!   while the compiler vectorises TeaLeaf and MiniSweep poorly, so those
//!   two are generated almost entirely scalar,
//! * **memory access pattern** (unit-stride streams, broadcast-reused
//!   lookup tables, 5-point stencils, face-coupled sweeps), and
//! * **working-set size**, scaled down (as the paper itself scales its
//!   inputs for simulation) so each code straddles the same cache-capacity
//!   boundaries: STREAM straddles L2, TeaLeaf/MiniSweep sit at the L1/L2
//!   boundary, miniBUDE is register/L1-resident.
//!
//! Vector-length agnosticism is honoured exactly as
//! `-msve-vector-bits=scalable` compilation does: the same generator
//! (binary) serves every vector length, with governed-loop trip counts of
//! `ceil(n / lanes)`.

#![warn(missing_docs)]

pub mod cache;
pub mod gemm;
pub mod graph;
pub mod layout;
pub mod minibude;
pub mod minisweep;
pub mod spmv;
pub mod stream;
pub mod tealeaf;

pub use cache::{CacheStats, ShardedCache, WorkloadCache};

use armdse_isa::{OpSummary, Program};

/// The four HPC applications of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// STREAM sustained-memory-bandwidth benchmark (McCalpin); heavily
    /// memory bound, highly vectorised.
    Stream,
    /// miniBUDE molecular-docking mini-app; compute bound, highly
    /// vectorised, FMA dense.
    MiniBude,
    /// TeaLeaf linear heat-conduction mini-app (SPEChpc); memory bound,
    /// poorly vectorised (scalar CG solver).
    TeaLeaf,
    /// MiniSweep radiation-transport mini-app (SPEChpc); compute bound on
    /// a single rank, poorly vectorised.
    MiniSweep,
    /// CSR sparse matrix-vector multiply; gather bound, vectorised
    /// (extension beyond the paper's four codes).
    Spmv,
    /// Register-blocked dense matrix multiply; FMA dense, heavily
    /// vectorised (extension).
    Gemm,
    /// Pointer-chasing graph traversal; load-latency bound, fully
    /// scalar (extension).
    Graph,
}

impl App {
    /// The paper's four applications in presentation order. Campaigns
    /// and figures that reproduce the paper iterate this set.
    pub const ALL: [App; 4] = [App::Stream, App::MiniBude, App::TeaLeaf, App::MiniSweep];

    /// The paper's four applications plus the extension kernels
    /// ([`App::Spmv`], [`App::Gemm`], [`App::Graph`]) — the pool the
    /// unseen-app generalisation experiment draws from.
    pub const EXTENDED: [App; 7] = [
        App::Stream,
        App::MiniBude,
        App::TeaLeaf,
        App::MiniSweep,
        App::Spmv,
        App::Gemm,
        App::Graph,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            App::Stream => "STREAM",
            App::MiniBude => "MiniBude",
            App::TeaLeaf => "TeaLeaf",
            App::MiniSweep => "MiniSweep",
            App::Spmv => "SpMV",
            App::Gemm => "GEMM",
            App::Graph => "Graph",
        }
    }

    /// Stable index for per-app arrays.
    pub fn index(self) -> usize {
        match self {
            App::Stream => 0,
            App::MiniBude => 1,
            App::TeaLeaf => 2,
            App::MiniSweep => 3,
            App::Spmv => 4,
            App::Gemm => 5,
            App::Graph => 6,
        }
    }

    /// Parse a case-insensitive app name.
    pub fn parse(s: &str) -> Option<App> {
        match s.to_ascii_lowercase().as_str() {
            "stream" => Some(App::Stream),
            "minibude" | "bude" => Some(App::MiniBude),
            "tealeaf" => Some(App::TeaLeaf),
            "minisweep" => Some(App::MiniSweep),
            "spmv" => Some(App::Spmv),
            "gemm" => Some(App::Gemm),
            "graph" => Some(App::Graph),
            _ => None,
        }
    }
}

/// Input-size presets trading simulation time for fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadScale {
    /// A few hundred to a few thousand retired instructions; unit tests.
    Tiny,
    /// Around 10⁴ retired instructions; integration tests and quick demos.
    Small,
    /// Several 10⁴ retired instructions; dataset generation (the paper's
    /// runs retire 10⁷–5×10⁷ instructions — see DESIGN.md scaling note).
    Standard,
}

impl WorkloadScale {
    /// Stable lowercase tag for CLI flags, wire protocols, and
    /// checkpoints (`tiny` / `small` / `standard`).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadScale::Tiny => "tiny",
            WorkloadScale::Small => "small",
            WorkloadScale::Standard => "standard",
        }
    }

    /// Parse a case-insensitive scale tag.
    pub fn parse(s: &str) -> Option<WorkloadScale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(WorkloadScale::Tiny),
            "small" => Some(WorkloadScale::Small),
            "standard" => Some(WorkloadScale::Standard),
            _ => None,
        }
    }
}

/// A generated workload: the lowered program plus its analytic summary
/// (the validation reference).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which application this is.
    pub app: App,
    /// Lowered program ready for simulation.
    pub program: Program,
    /// Analytic per-class retirement counts and byte totals; a simulation
    /// is "validated" when its observed counts equal these.
    pub summary: OpSummary,
}

/// Build the workload for `app` at `scale` and SVE vector length `vl_bits`.
///
/// `vl_bits` must be a power of two in `[128, 2048]` (the paper's range).
pub fn build_workload(app: App, scale: WorkloadScale, vl_bits: u32) -> Workload {
    assert!(
        (128..=2048).contains(&vl_bits) && vl_bits.is_power_of_two(),
        "vector length {vl_bits} outside paper range"
    );
    let kernel = match app {
        App::Stream => stream::kernel(&stream::StreamParams::for_scale(scale), vl_bits),
        App::MiniBude => minibude::kernel(&minibude::BudeParams::for_scale(scale), vl_bits),
        App::TeaLeaf => tealeaf::kernel(&tealeaf::TeaLeafParams::for_scale(scale), vl_bits),
        App::MiniSweep => minisweep::kernel(&minisweep::SweepParams::for_scale(scale), vl_bits),
        App::Spmv => spmv::kernel(&spmv::SpmvParams::for_scale(scale), vl_bits),
        App::Gemm => gemm::kernel(&gemm::GemmParams::for_scale(scale), vl_bits),
        App::Graph => graph::kernel(&graph::GraphParams::for_scale(scale), vl_bits),
    };
    let program = Program::lower(&kernel);
    let summary = OpSummary::of(&program);
    Workload {
        app,
        program,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_and_indices() {
        assert_eq!(App::Stream.name(), "STREAM");
        let mut seen = [false; App::EXTENDED.len()];
        for a in App::EXTENDED {
            assert!(!seen[a.index()]);
            seen[a.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "index gaps in EXTENDED");
        // The paper set is a strict prefix of the extended pool.
        assert_eq!(App::EXTENDED[..4], App::ALL);
    }

    #[test]
    fn parse_round_trips() {
        for a in App::EXTENDED {
            assert_eq!(App::parse(a.name()), Some(a));
        }
        assert_eq!(App::parse("bude"), Some(App::MiniBude));
        assert_eq!(App::parse("nope"), None);
    }

    #[test]
    fn all_apps_build_at_all_scales() {
        for a in App::EXTENDED {
            for s in [
                WorkloadScale::Tiny,
                WorkloadScale::Small,
                WorkloadScale::Standard,
            ] {
                for vl in [128, 512, 2048] {
                    let w = build_workload(a, s, vl);
                    assert!(w.summary.total() > 0, "{a:?} {s:?} vl={vl} empty");
                }
            }
        }
    }

    #[test]
    fn extension_apps_keep_the_vectorisation_split() {
        // SpMV and GEMM join the vectorised side; the pointer chase
        // joins the scalar side.
        for vl in [128, 512, 2048] {
            for (a, vectorised) in [(App::Spmv, true), (App::Gemm, true), (App::Graph, false)] {
                let f = build_workload(a, WorkloadScale::Small, vl)
                    .summary
                    .sve_fraction();
                if vectorised {
                    assert!(f > 0.35, "{a:?} sve {f} at vl={vl}");
                } else {
                    assert!(f < 0.15, "{a:?} sve {f} at vl={vl}");
                }
            }
        }
    }

    #[test]
    fn vectorisation_split_matches_fig1() {
        // STREAM and miniBUDE are heavily vectorised; TeaLeaf and
        // MiniSweep are not (paper Fig. 1).
        for vl in [128, 512, 2048] {
            let s = build_workload(App::Stream, WorkloadScale::Small, vl)
                .summary
                .sve_fraction();
            let b = build_workload(App::MiniBude, WorkloadScale::Small, vl)
                .summary
                .sve_fraction();
            let t = build_workload(App::TeaLeaf, WorkloadScale::Small, vl)
                .summary
                .sve_fraction();
            let m = build_workload(App::MiniSweep, WorkloadScale::Small, vl)
                .summary
                .sve_fraction();
            assert!(s > 0.4, "STREAM sve {s} at vl={vl}");
            assert!(b > 0.4, "miniBUDE sve {b} at vl={vl}");
            assert!(t < 0.15, "TeaLeaf sve {t} at vl={vl}");
            assert!(m < 0.15, "MiniSweep sve {m} at vl={vl}");
        }
    }

    #[test]
    fn longer_vectors_retire_fewer_instructions() {
        for a in [App::Stream, App::MiniBude] {
            let short = build_workload(a, WorkloadScale::Standard, 128)
                .summary
                .total();
            let long = build_workload(a, WorkloadScale::Standard, 2048)
                .summary
                .total();
            assert!(
                long * 4 < short,
                "{a:?}: vl=2048 should retire far fewer instructions ({long} vs {short})"
            );
        }
    }

    #[test]
    fn scalar_apps_insensitive_to_vl() {
        for a in [App::TeaLeaf, App::MiniSweep] {
            let short = build_workload(a, WorkloadScale::Small, 128).summary.total();
            let long = build_workload(a, WorkloadScale::Small, 2048)
                .summary
                .total();
            let ratio = short as f64 / long as f64;
            assert!(
                ratio < 1.3,
                "{a:?}: near-scalar code should barely shrink ({ratio})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside paper range")]
    fn rejects_bad_vector_length() {
        build_workload(App::Stream, WorkloadScale::Tiny, 96);
    }

    #[test]
    fn standard_scale_instruction_budgets() {
        // Keep dataset-generation runs tractable: between 10^4 and 4x10^5
        // retired instructions at the shortest (most instruction-hungry)
        // vector length.
        for a in App::EXTENDED {
            let n = build_workload(a, WorkloadScale::Standard, 128)
                .summary
                .total();
            assert!(
                (10_000..400_000).contains(&n),
                "{a:?} standard scale retires {n} instructions"
            );
        }
    }
}
