//! Memory-hierarchy statistics counters.

/// Counters accumulated by a memory model over one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses that hit in L1.
    pub l1_hits: u64,
    /// Demand accesses that missed in L1.
    pub l1_misses: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// L1 misses that also missed in L2 (DRAM accesses).
    pub l2_misses: u64,
    /// Demand accesses merged into an outstanding same-line request.
    pub merged: u64,
    /// Prefetch fills issued.
    pub prefetches: u64,
    /// Dirty-line writebacks (either level).
    pub writebacks: u64,
    /// Total demand line requests (hits + misses + merged).
    pub requests: u64,
}

impl MemStats {
    /// L1 demand hit rate in [0, 1]; `None` when no accesses occurred.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }

    /// L2 local hit rate in [0, 1]; `None` when L2 saw no accesses.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        let total = self.l2_hits + self.l2_misses;
        (total > 0).then(|| self.l2_hits as f64 / total as f64)
    }

    /// Request-accounting conservation: every demand request is exactly
    /// one of {L1 hit, L1 miss, merged into an outstanding fill}.
    /// (Prefetch fills are counted separately and never as requests.)
    /// Asserted after every access under the `check-invariants` feature.
    pub fn demand_requests_conserved(&self) -> bool {
        self.l1_hits + self.l1_misses + self.merged == self.requests
    }

    /// Fold another stats block into this one (parallel shard merging).
    pub fn merge(&mut self, other: &MemStats) {
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.merged += other.merged;
        self.prefetches += other.prefetches;
        self.writebacks += other.writebacks;
        self.requests += other.requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_none_when_empty() {
        let s = MemStats::default();
        assert!(s.l1_hit_rate().is_none());
        assert!(s.l2_hit_rate().is_none());
    }

    #[test]
    fn hit_rates_computed() {
        let s = MemStats {
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 0,
            ..Default::default()
        };
        assert!((s.l1_hit_rate().unwrap() - 0.75).abs() < 1e-12);
        assert!((s.l2_hit_rate().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = MemStats {
            l1_hits: 1,
            requests: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1_hits: 4,
            writebacks: 7,
            requests: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 5);
        assert_eq!(a.writebacks, 7);
        assert_eq!(a.requests, 7);
    }
}
