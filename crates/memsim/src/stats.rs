//! Memory-hierarchy statistics counters.

/// Counters accumulated by a memory model over one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses that hit in L1.
    pub l1_hits: u64,
    /// Demand accesses that missed in L1.
    pub l1_misses: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// L1 misses that also missed in L2 (DRAM accesses).
    pub l2_misses: u64,
    /// Demand accesses merged into an outstanding same-line request.
    pub merged: u64,
    /// Prefetch fills issued.
    pub prefetches: u64,
    /// Dirty-line writebacks (either level; equals
    /// `l1_writebacks + l2_writebacks`).
    pub writebacks: u64,
    /// Dirty lines evicted from L1.
    pub l1_writebacks: u64,
    /// Dirty lines evicted from L2 (to DRAM).
    pub l2_writebacks: u64,
    /// Total demand line requests (hits + misses + merged).
    pub requests: u64,
    /// Peak number of outstanding line fills (the MSHR analogue),
    /// sampled after each access. Exact: completed fills are dropped at
    /// sample time, so a fill is counted iff its completion lies
    /// strictly after the sampling cycle (see docs/METRICS.md).
    pub mshr_peak: u64,
    /// Sum of outstanding-fill counts sampled after each access
    /// (mean MSHR occupancy per access = `mshr_occupancy_sum /
    /// requests`). Exact, like [`MemStats::mshr_peak`].
    pub mshr_occupancy_sum: u64,
    /// DRAM accesses that found their bank busy and had to queue
    /// (always 0 on the infinite-bank [`crate::Hierarchy`]).
    pub dram_queue_waits: u64,
    /// Total cycles DRAM accesses spent queued behind a busy bank.
    pub dram_queue_wait_cycles: u64,
}

impl MemStats {
    /// L1 demand hit rate in [0, 1]; `None` when no accesses occurred.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }

    /// L2 local hit rate in [0, 1]; `None` when L2 saw no accesses.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        let total = self.l2_hits + self.l2_misses;
        (total > 0).then(|| self.l2_hits as f64 / total as f64)
    }

    /// Request-accounting conservation: every demand request is exactly
    /// one of {L1 hit, L1 miss, merged into an outstanding fill}.
    /// (Prefetch fills are counted separately and never as requests.)
    /// Asserted after every access under the `check-invariants` feature.
    pub fn demand_requests_conserved(&self) -> bool {
        self.l1_hits + self.l1_misses + self.merged == self.requests
    }

    /// Writeback-accounting conservation: every writeback left exactly
    /// one cache level. Asserted alongside
    /// [`MemStats::demand_requests_conserved`].
    pub fn writebacks_conserved(&self) -> bool {
        self.l1_writebacks + self.l2_writebacks == self.writebacks
    }

    /// Mean outstanding-fill (MSHR) occupancy per access; `None` when no
    /// accesses occurred.
    pub fn mshr_mean_occupancy(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.mshr_occupancy_sum as f64 / self.requests as f64)
    }

    /// Fold another stats block into this one (parallel shard merging).
    /// `mshr_peak` merges as a maximum; every other field is a sum.
    pub fn merge(&mut self, other: &MemStats) {
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.merged += other.merged;
        self.prefetches += other.prefetches;
        self.writebacks += other.writebacks;
        self.l1_writebacks += other.l1_writebacks;
        self.l2_writebacks += other.l2_writebacks;
        self.requests += other.requests;
        self.mshr_peak = self.mshr_peak.max(other.mshr_peak);
        self.mshr_occupancy_sum += other.mshr_occupancy_sum;
        self.dram_queue_waits += other.dram_queue_waits;
        self.dram_queue_wait_cycles += other.dram_queue_wait_cycles;
    }

    /// CSV column names for [`MemStats::values`] (the metrics-row schema
    /// segment owned by the memory hierarchy).
    pub fn column_names() -> [&'static str; 14] {
        [
            "l1_hits",
            "l1_misses",
            "l2_hits",
            "l2_misses",
            "merged",
            "prefetches",
            "writebacks",
            "l1_writebacks",
            "l2_writebacks",
            "requests",
            "mshr_peak",
            "mshr_occupancy_sum",
            "dram_queue_waits",
            "dram_queue_wait_cycles",
        ]
    }

    /// Counter values in [`MemStats::column_names`] order.
    pub fn values(&self) -> [u64; 14] {
        [
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.merged,
            self.prefetches,
            self.writebacks,
            self.l1_writebacks,
            self.l2_writebacks,
            self.requests,
            self.mshr_peak,
            self.mshr_occupancy_sum,
            self.dram_queue_waits,
            self.dram_queue_wait_cycles,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_none_when_empty() {
        let s = MemStats::default();
        assert!(s.l1_hit_rate().is_none());
        assert!(s.l2_hit_rate().is_none());
    }

    #[test]
    fn hit_rates_computed() {
        let s = MemStats {
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 0,
            ..Default::default()
        };
        assert!((s.l1_hit_rate().unwrap() - 0.75).abs() < 1e-12);
        assert!((s.l2_hit_rate().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn writeback_split_conservation() {
        let mut s = MemStats::default();
        assert!(s.writebacks_conserved());
        s.writebacks = 3;
        s.l1_writebacks = 2;
        s.l2_writebacks = 1;
        assert!(s.writebacks_conserved());
        s.l2_writebacks = 2;
        assert!(!s.writebacks_conserved());
    }

    #[test]
    fn mshr_mean_occupancy_per_access() {
        let mut s = MemStats::default();
        assert!(s.mshr_mean_occupancy().is_none());
        s.requests = 4;
        s.mshr_occupancy_sum = 6;
        assert!((s.mshr_mean_occupancy().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn csv_columns_and_values_align() {
        let s = MemStats {
            mshr_peak: 9,
            dram_queue_wait_cycles: 17,
            ..Default::default()
        };
        let cols = MemStats::column_names();
        let vals = s.values();
        assert_eq!(cols.len(), vals.len());
        assert_eq!(
            vals[cols.iter().position(|c| *c == "mshr_peak").unwrap()],
            9
        );
        let w = cols
            .iter()
            .position(|c| *c == "dram_queue_wait_cycles")
            .unwrap();
        assert_eq!(vals[w], 17);
    }

    #[test]
    fn merge_takes_max_of_mshr_peak() {
        let mut a = MemStats {
            mshr_peak: 3,
            mshr_occupancy_sum: 10,
            dram_queue_waits: 1,
            ..Default::default()
        };
        let b = MemStats {
            mshr_peak: 2,
            mshr_occupancy_sum: 5,
            dram_queue_waits: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.mshr_peak, 3);
        assert_eq!(a.mshr_occupancy_sum, 15);
        assert_eq!(a.dram_queue_waits, 5);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = MemStats {
            l1_hits: 1,
            requests: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1_hits: 4,
            writebacks: 7,
            requests: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 5);
        assert_eq!(a.writebacks, 7);
        assert_eq!(a.requests, 7);
    }
}
