//! Shared L2 + DRAM backside for the multicore machine layer.
//!
//! [`crate::BankedHierarchy`] models multicore contention with *phantom*
//! co-runners: a single core pays an analytically inflated DRAM service
//! time. This module replaces the phantoms with real traffic. A
//! [`SharedL2`] owns the resources N cores genuinely share — the L2 tag
//! array and the finite DRAM bank queues — and each core drives its own
//! [`CorePort`]: a private L1, private MSHRs, and private [`MemStats`],
//! with misses forwarded into the shared backside. Contention is then
//! emergent (two cores streaming evict each other's L2 lines and queue
//! on the same banks) instead of assumed.
//!
//! ## Equivalence contract
//!
//! A single `CorePort` over a fresh `SharedL2` is access-for-access
//! identical — completion times *and* statistics — to
//! [`crate::BankedHierarchy::with_banks`] with the same parameters. The
//! port replicates the banked model's request path (merge window, L1
//! probe, serial L2 probe, bank-queued DRAM access) statement for
//! statement; only the L2-and-below half lives behind the shared
//! handle. `tests::single_port_matches_banked_hierarchy` pins this, and
//! it is what makes the N=1 multicore backend bit-identical to the
//! single-core proxy path.
//!
//! ## Address disjointness
//!
//! Every core in the homogeneous multicore model runs its own instance
//! of the same workload, so the raw addresses coincide. A real machine
//! would give each process its own physical pages; [`CorePort`] models
//! that with a per-core base offset of [`CORE_ADDR_STRIDE`] bytes
//! (applied inside [`MemoryModel::access`]). Core 0's offset is zero,
//! preserving the single-core equivalence byte for byte. The stride is
//! a power of two far above any workload footprint, so line alignment
//! is preserved and per-core heaps never alias in the shared L2.
//!
//! ## Attribution
//!
//! Shared-resource events are charged to the *requesting* core's
//! `MemStats` (`l2_hits`/`l2_misses`, `l2_writebacks`,
//! `dram_queue_waits`/`dram_queue_wait_cycles`), so each port's
//! counters conserve on their own and summing the ports accounts for
//! every event in the machine exactly once.

use crate::cache::{Cache, LookupResult};
use crate::fasthash::FastMap;
use crate::params::MemParams;
use crate::stats::MemStats;
use crate::{Cycle, MemoryModel};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Per-core address-space stride: core `i` offsets every line address by
/// `i * CORE_ADDR_STRIDE`. A power of two (so line alignment survives)
/// and far larger than any workload footprint (so per-core heaps never
/// alias in the shared L2 or DRAM banks).
pub const CORE_ADDR_STRIDE: u64 = 1 << 32;

/// The memory-system half that N cores genuinely share: the L2 cache
/// and the finite DRAM bank queues. Always accessed through a
/// [`CorePort`]; the port hands its own [`MemStats`] in so shared
/// events are attributed to the requesting core.
#[derive(Debug)]
pub struct SharedL2 {
    params: MemParams,
    l2: Cache,
    /// Per-bank busy-until cycle.
    bank_free: Vec<Cycle>,
    /// Cycles a bank is occupied per line transfer.
    bank_occupancy: u64,
    ram_lat: u64,
}

impl SharedL2 {
    /// Build the shared backside with an explicit DRAM bank count.
    ///
    /// Uses the same bank-occupancy derivation as
    /// [`crate::BankedHierarchy::with_banks`] (zero phantom co-runners:
    /// contention comes from real cross-core traffic instead).
    pub fn new(params: MemParams, banks: usize) -> SharedL2 {
        assert!(banks > 0);
        debug_assert!(params.validate().is_ok(), "invalid MemParams");
        let beats = f64::from(params.line_bytes) / 8.0;
        let occupancy = crate::params::ns_to_core_cycles(beats / params.ram_clock_ghz);
        SharedL2 {
            l2: Cache::new(params.l2_size_kib, params.l2_assoc, params.line_bytes),
            ram_lat: params.ram_core_cycles(),
            bank_free: vec![0; banks],
            bank_occupancy: occupancy,
            params,
        }
    }

    /// Build behind the shared handle the ports hold.
    pub fn shared(params: MemParams, banks: usize) -> Rc<RefCell<SharedL2>> {
        Rc::new(RefCell::new(SharedL2::new(params, banks)))
    }

    /// The memory parameters the backside was built from.
    pub fn params(&self) -> &MemParams {
        &self.params
    }

    /// DRAM bank count.
    pub fn banks(&self) -> usize {
        self.bank_free.len()
    }

    #[inline]
    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.params.line_bytes)) % self.bank_free.len() as u64) as usize
    }

    /// DRAM access with bank contention, identical to the banked model:
    /// the access starts when its bank frees up and holds the bank for
    /// the transfer time. Queue waits land in the *requesting core's*
    /// counters.
    fn ram_access(&mut self, line_addr: u64, ready_at: Cycle, stats: &mut MemStats) -> Cycle {
        let b = self.bank_of(line_addr);
        let start = ready_at.max(self.bank_free[b]);
        let wait = start - ready_at;
        if wait > 0 {
            stats.dram_queue_waits += 1;
            stats.dram_queue_wait_cycles += wait;
        }
        self.bank_free[b] = start + self.bank_occupancy;
        start + self.ram_lat
    }

    /// Resolve an L1 miss below the L1: probe the shared L2 and, on a
    /// miss, queue on the line's DRAM bank. `probe_done` is the cycle
    /// the L2 probe completes (the requester already paid L1+L2
    /// latency). Shared events are charged to `stats` (the requesting
    /// port's counters).
    fn lookup(&mut self, line_addr: u64, probe_done: Cycle, stats: &mut MemStats) -> Cycle {
        match self.l2.access(line_addr, false) {
            LookupResult::Hit => {
                stats.l2_hits += 1;
                probe_done
            }
            l2_miss => {
                stats.l2_misses += 1;
                if l2_miss == LookupResult::MissEvictDirty {
                    stats.writebacks += 1;
                    stats.l2_writebacks += 1;
                }
                self.ram_access(line_addr, probe_done, stats)
            }
        }
    }
}

/// One core's private port into a [`SharedL2`]: its own L1 cache, merge
/// window (MSHRs), and statistics, forwarding L1 misses into the shared
/// backside. Implements [`MemoryModel`], so a core pipeline drives it
/// exactly like any single-core hierarchy.
#[derive(Debug)]
pub struct CorePort {
    shared: Rc<RefCell<SharedL2>>,
    l1: Cache,
    stats: MemStats,
    in_flight: FastMap<u64, Cycle>,
    /// Completion times of every fill issued; popped eagerly at sample
    /// time so MSHR occupancy statistics are exact (see
    /// [`crate::Hierarchy`]'s field of the same name).
    fills: BinaryHeap<Reverse<Cycle>>,
    l1_lat: u64,
    l2_lat: u64,
    line_bytes: u32,
    /// Per-core address offset (`core_index * CORE_ADDR_STRIDE`).
    core_base: u64,
}

impl CorePort {
    /// Build core `core_index`'s port into `shared`. Core 0 applies a
    /// zero address offset (preserving single-core equivalence); core
    /// `i` shifts its whole address space by `i *`
    /// [`CORE_ADDR_STRIDE`].
    pub fn new(shared: Rc<RefCell<SharedL2>>, core_index: u32) -> CorePort {
        let (l1, l1_lat, l2_lat, line_bytes) = {
            let s = shared.borrow();
            let p = s.params;
            (
                Cache::new(p.l1_size_kib, p.l1_assoc, p.line_bytes),
                p.l1_hit_core_cycles(),
                p.l2_hit_core_cycles(),
                p.line_bytes,
            )
        };
        debug_assert_eq!(CORE_ADDR_STRIDE % u64::from(line_bytes), 0);
        CorePort {
            shared,
            l1,
            stats: MemStats::default(),
            in_flight: FastMap::default(),
            fills: BinaryHeap::new(),
            l1_lat,
            l2_lat,
            line_bytes,
            core_base: u64::from(core_index) * CORE_ADDR_STRIDE,
        }
    }

    /// Mirror of `BankedHierarchy::access_inner`, with the L2-and-below
    /// half delegated to the shared backside. The statement order is
    /// deliberately identical — it is what the single-port equivalence
    /// test pins.
    fn access_inner(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        debug_assert_eq!(line_addr % u64::from(self.line_bytes), 0);
        self.stats.requests += 1;
        if self.in_flight.len() > 4096 {
            self.in_flight.retain(|_, &mut c| c > now);
        }

        if let Some(&complete) = self.in_flight.get(&line_addr) {
            if complete > now {
                self.stats.merged += 1;
                self.l1.access(line_addr, is_store);
                return complete;
            }
            self.in_flight.remove(&line_addr);
        }

        match self.l1.access(line_addr, is_store) {
            LookupResult::Hit => {
                self.stats.l1_hits += 1;
                now + self.l1_lat
            }
            l1_miss => {
                self.stats.l1_misses += 1;
                if l1_miss == LookupResult::MissEvictDirty {
                    self.stats.writebacks += 1;
                    self.stats.l1_writebacks += 1;
                }
                let probe_done = now + self.l1_lat + self.l2_lat;
                let complete =
                    self.shared
                        .borrow_mut()
                        .lookup(line_addr, probe_done, &mut self.stats);
                self.in_flight.insert(line_addr, complete);
                self.fills.push(Reverse(complete));
                complete
            }
        }
    }
}

impl MemoryModel for CorePort {
    fn access(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        let line_addr = line_addr + self.core_base;
        let complete = self.access_inner(line_addr, is_store, now);
        // Outstanding-fill (MSHR) occupancy, sampled once per access;
        // completed fills are dropped first so the sample is exact.
        while self.fills.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.fills.pop();
        }
        let outstanding = self.fills.len() as u64;
        self.stats.mshr_peak = self.stats.mshr_peak.max(outstanding);
        self.stats.mshr_occupancy_sum += outstanding;
        #[cfg(feature = "check-invariants")]
        {
            assert_eq!(
                line_addr % u64::from(self.line_bytes),
                0,
                "unaligned line request {line_addr:#x}"
            );
            assert!(
                complete >= now,
                "completion time {complete} before request {now}"
            );
            assert_eq!(
                outstanding,
                self.in_flight.values().filter(|&&c| c > now).count() as u64,
                "exact fill count diverged from live in-flight entries"
            );
            assert!(
                self.stats.demand_requests_conserved(),
                "request accounting leak: {:?}",
                self.stats
            );
            assert!(
                self.stats.writebacks_conserved(),
                "writeback accounting leak: {:?}",
                self.stats
            );
        }
        complete
    }

    fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    fn l1_hit_latency(&self) -> u64 {
        self.l1_lat
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BankedHierarchy;

    /// The N=1 foundation: one port over a fresh shared backside is
    /// access-for-access identical to the banked hierarchy — completion
    /// times and the full statistics block.
    #[test]
    fn single_port_matches_banked_hierarchy() {
        let p = MemParams::thunderx2();
        let mut banked = BankedHierarchy::with_banks(p, 8);
        let mut port = CorePort::new(SharedL2::shared(p, 8), 0);
        let lb = u64::from(p.line_bytes);
        // A mix of misses, re-touches (hits), merges, and strided
        // conflicts, driven identically through both models.
        let mut t_a = 0;
        let mut t_b = 0;
        for i in 0..512u64 {
            let addr = (i % 96) * lb * 3;
            let now = i;
            let a = banked.access(addr, i % 7 == 0, now);
            let b = port.access(addr, i % 7 == 0, now);
            assert_eq!(a, b, "completion diverged at access {i}");
            t_a = t_a.max(a);
            t_b = t_b.max(b);
        }
        assert_eq!(t_a, t_b);
        assert_eq!(banked.stats(), port.stats());
    }

    /// Two streaming cores over one backside must each finish later
    /// than a solo core (bank queues and L2 capacity are genuinely
    /// shared), and the ports must record the queueing they suffered.
    #[test]
    fn two_ports_contend_on_shared_banks() {
        let p = MemParams::thunderx2();
        let lb = u64::from(p.line_bytes);
        // One access issued per cycle (memory-level parallelism, as an
        // OoO core's MSHRs sustain), so the banks are kept busy and
        // queueing is visible.
        let stream = |m: &mut dyn MemoryModel| {
            let mut finish = 0;
            for i in 0..512u64 {
                finish = finish.max(m.access(i * lb, false, i));
            }
            finish
        };
        let solo = stream(&mut CorePort::new(SharedL2::shared(p, 2), 0));

        let shared = SharedL2::shared(p, 2);
        let mut a = CorePort::new(Rc::clone(&shared), 0);
        let mut b = CorePort::new(shared, 1);
        // Interleave the two streams access by access, as the slice
        // loop would at a fine grain.
        let mut ta = 0;
        let mut tb = 0;
        for i in 0..512u64 {
            ta = ta.max(a.access(i * lb, false, i));
            tb = tb.max(b.access(i * lb, false, i));
        }
        assert!(ta > solo, "core 0 contended: {ta} !> solo {solo}");
        assert!(tb > solo, "core 1 contended: {tb} !> solo {solo}");
        assert!(
            a.stats().dram_queue_wait_cycles + b.stats().dram_queue_wait_cycles > 0,
            "shared banks must record queue waits"
        );
    }

    /// Fewer banks means a narrower shared pipe: total streaming time
    /// must not shrink as the bank count drops.
    #[test]
    fn fewer_banks_never_speed_up_streaming() {
        let p = MemParams::thunderx2();
        let lb = u64::from(p.line_bytes);
        let finish = |banks: usize| {
            let shared = SharedL2::shared(p, banks);
            let mut a = CorePort::new(Rc::clone(&shared), 0);
            let mut b = CorePort::new(shared, 1);
            let mut finish = 0;
            for i in 0..256u64 {
                finish = finish.max(a.access(i * lb, false, i));
                finish = finish.max(b.access(i * lb, false, i));
            }
            finish
        };
        let mut prev = finish(8);
        for banks in [4, 2, 1] {
            let t = finish(banks);
            assert!(
                t >= prev,
                "{banks} banks finished at {t}, 2x banks at {prev}"
            );
            prev = t;
        }
    }

    /// Per-core address offsets keep line alignment and keep the cores'
    /// heaps disjoint: the same raw address from two ports must not
    /// merge or hit in each other's wake.
    #[test]
    fn core_offsets_keep_address_spaces_disjoint() {
        let p = MemParams::thunderx2();
        let shared = SharedL2::shared(p, 8);
        let mut a = CorePort::new(Rc::clone(&shared), 0);
        let mut b = CorePort::new(shared, 1);
        a.access(0x1000, false, 0);
        b.access(0x1000, false, 0);
        // Both must be cold L1 misses *and* cold L2 misses: no sharing.
        assert_eq!(a.stats().l1_misses, 1);
        assert_eq!(b.stats().l1_misses, 1);
        assert_eq!(a.stats().l2_misses, 1);
        assert_eq!(b.stats().l2_misses, 1);
        assert_eq!(a.stats().merged + b.stats().merged, 0);
    }
}
