//! Memory-side design parameters (the paper's Table III).
//!
//! The published Table III is garbled in the available text, so the twelve
//! parameters here are reconstructed from the parameters the paper's
//! figures and prose name explicitly — L1-Latency, L1-Clock, L2-Size,
//! RAM-Latency, Cache-Line-Width, plus cache clock speeds and sizes — and
//! their natural completions (associativities, RAM clock, prefetch depth),
//! so that core (18) + memory (12) equals the paper's stated "thirty
//! variable input features".

/// Fixed core clock frequency in GHz (matches a ThunderX2-class part; the
/// paper varies cache/RAM clocks relative to a fixed core).
pub const CORE_CLOCK_GHZ: f64 = 2.5;

/// Memory-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemParams {
    /// Cache line width in bytes (uniform across levels, as in SST configs).
    pub line_bytes: u32,
    /// L1 data cache capacity in KiB.
    pub l1_size_kib: u32,
    /// L1 associativity (ways).
    pub l1_assoc: u32,
    /// L1 hit latency in *L1-domain* cycles.
    pub l1_latency: u32,
    /// L1 clock in GHz.
    pub l1_clock_ghz: f64,
    /// L2 cache capacity in KiB.
    pub l2_size_kib: u32,
    /// L2 associativity (ways).
    pub l2_assoc: u32,
    /// L2 hit latency in *L2-domain* cycles.
    pub l2_latency: u32,
    /// L2 clock in GHz.
    pub l2_clock_ghz: f64,
    /// DRAM access time in nanoseconds.
    pub ram_access_ns: f64,
    /// DRAM interface clock in GHz (scales the line transfer time).
    pub ram_clock_ghz: f64,
    /// Next-line prefetch depth in lines (0 disables prefetching).
    pub prefetch_depth: u32,
}

impl MemParams {
    /// A ThunderX2-like baseline (32 KiB 8-way L1, 256 KiB 8-way L2,
    /// 64-byte lines), used for the Table I validation experiment.
    pub fn thunderx2() -> MemParams {
        MemParams {
            line_bytes: 64,
            l1_size_kib: 32,
            l1_assoc: 8,
            l1_latency: 4,
            l1_clock_ghz: CORE_CLOCK_GHZ,
            l2_size_kib: 256,
            l2_assoc: 8,
            l2_latency: 9,
            l2_clock_ghz: CORE_CLOCK_GHZ,
            ram_access_ns: 85.0,
            ram_clock_ghz: 1.2,
            prefetch_depth: 1,
        }
    }

    /// Check structural invariants (power-of-two geometry, L2 strictly
    /// larger and slower in wall-clock terms than L1 — the paper's sampling
    /// constraints).
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(format!(
                "line_bytes {} must be a power of two >= 8",
                self.line_bytes
            ));
        }
        for (name, size, assoc) in [
            ("L1", self.l1_size_kib, self.l1_assoc),
            ("L2", self.l2_size_kib, self.l2_assoc),
        ] {
            let lines = size as u64 * 1024 / u64::from(self.line_bytes);
            if lines == 0 || !lines.is_multiple_of(u64::from(assoc)) {
                return Err(format!(
                    "{name}: {size} KiB not divisible into {assoc}-way sets"
                ));
            }
            let sets = lines / u64::from(assoc);
            if !sets.is_power_of_two() {
                return Err(format!("{name}: set count {sets} not a power of two"));
            }
        }
        if self.l2_size_kib <= self.l1_size_kib {
            return Err("L2 must be larger than L1".into());
        }
        if self.l2_hit_ns() <= self.l1_hit_ns() {
            return Err("L2 must have higher latency than L1".into());
        }
        for (name, v) in [
            ("l1_clock_ghz", self.l1_clock_ghz),
            ("l2_clock_ghz", self.l2_clock_ghz),
            ("ram_clock_ghz", self.ram_clock_ghz),
            ("ram_access_ns", self.ram_access_ns),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.l1_latency == 0 || self.l2_latency == 0 {
            return Err("cache latencies must be >= 1 cycle".into());
        }
        Ok(())
    }

    /// L1 hit latency in nanoseconds.
    #[inline]
    pub fn l1_hit_ns(&self) -> f64 {
        self.l1_latency as f64 / self.l1_clock_ghz
    }

    /// L2 hit latency in nanoseconds (the L2 tag+data time itself, not
    /// including the L1 miss detection).
    #[inline]
    pub fn l2_hit_ns(&self) -> f64 {
        self.l2_latency as f64 / self.l2_clock_ghz
    }

    /// L1 hit latency in core cycles (≥ 1).
    #[inline]
    pub fn l1_hit_core_cycles(&self) -> u64 {
        ns_to_core_cycles(self.l1_hit_ns())
    }

    /// Additional core cycles for an L1-miss/L2-hit beyond the L1 probe.
    #[inline]
    pub fn l2_hit_core_cycles(&self) -> u64 {
        ns_to_core_cycles(self.l2_hit_ns())
    }

    /// DRAM access latency in core cycles, including the line transfer time
    /// over the DRAM interface (`line_bytes / 8` beats at `ram_clock_ghz`,
    /// 8-byte interface) — this is where a faster RAM clock raises
    /// effective memory bandwidth.
    #[inline]
    pub fn ram_core_cycles(&self) -> u64 {
        let beats = f64::from(self.line_bytes) / 8.0;
        let transfer_ns = beats / self.ram_clock_ghz;
        ns_to_core_cycles(self.ram_access_ns + transfer_ns)
    }

    /// Number of sets in L1.
    #[inline]
    pub fn l1_sets(&self) -> u32 {
        self.l1_size_kib * 1024 / self.line_bytes / self.l1_assoc
    }

    /// Number of sets in L2.
    #[inline]
    pub fn l2_sets(&self) -> u32 {
        self.l2_size_kib * 1024 / self.line_bytes / self.l2_assoc
    }
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams::thunderx2()
    }
}

/// Convert nanoseconds to core cycles, rounding up, minimum one cycle.
#[inline]
pub fn ns_to_core_cycles(ns: f64) -> u64 {
    ((ns * CORE_CLOCK_GHZ).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        MemParams::thunderx2().validate().unwrap();
    }

    #[test]
    fn latency_ordering_core_cycles() {
        let p = MemParams::thunderx2();
        assert!(p.l1_hit_core_cycles() >= 1);
        assert!(p.l2_hit_core_cycles() > 0);
        assert!(p.ram_core_cycles() > p.l2_hit_core_cycles());
    }

    #[test]
    fn baseline_l1_is_four_core_cycles() {
        // L1 at core clock with latency 4 → exactly 4 core cycles.
        assert_eq!(MemParams::thunderx2().l1_hit_core_cycles(), 4);
    }

    #[test]
    fn slow_l1_clock_raises_core_cycle_latency() {
        let mut p = MemParams::thunderx2();
        let base = p.l1_hit_core_cycles();
        p.l1_clock_ghz = 1.0;
        assert!(p.l1_hit_core_cycles() > base);
    }

    #[test]
    fn wider_line_costs_more_ram_transfer() {
        let mut p = MemParams::thunderx2();
        let narrow = p.ram_core_cycles();
        p.line_bytes = 256;
        assert!(p.ram_core_cycles() > narrow);
    }

    #[test]
    fn validate_rejects_l2_not_larger() {
        let mut p = MemParams::thunderx2();
        p.l2_size_kib = 32;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_l2_faster_than_l1() {
        let mut p = MemParams::thunderx2();
        p.l2_latency = 1;
        p.l2_clock_ghz = 4.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_pow2_sets() {
        let mut p = MemParams::thunderx2();
        p.l1_size_kib = 24; // 24 KiB / 64B / 8-way = 48 sets, not pow2
        assert!(p.validate().is_err());
    }

    #[test]
    fn set_counts() {
        let p = MemParams::thunderx2();
        assert_eq!(p.l1_sets(), 64);
        assert_eq!(p.l2_sets(), 512);
    }

    #[test]
    fn ns_conversion_rounds_up_and_floors_at_one() {
        assert_eq!(ns_to_core_cycles(0.01), 1);
        assert_eq!(ns_to_core_cycles(1.0), 3); // 2.5 cycles → 3
        assert_eq!(ns_to_core_cycles(10.0), 25);
    }
}
