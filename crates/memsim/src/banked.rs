//! Finite-banked "hardware proxy" hierarchy.
//!
//! The paper validates its simulator against physical ThunderX2 hardware
//! (Table I) and attributes the residual error to "a simplified simulation
//! of the memory backend, with our implementation of SST using basic
//! prefetching algorithms, as well as abstracting out important features of
//! a modern memory subsystem such as memory banking".
//!
//! We have no ThunderX2, so the hardware side of the validation experiment
//! is played by this deliberately *more detailed* model: the same cache
//! hierarchy but with a finite number of DRAM banks (occupancy-based
//! contention) and no prefetcher. Comparing [`crate::Hierarchy`]-driven
//! simulations against [`BankedHierarchy`]-driven ones exercises the same
//! validation procedure and produces per-application discrepancies of the
//! same origin (memory-access-pattern-dependent banking effects) as the
//! paper reports.

use crate::cache::{Cache, LookupResult};
use crate::fasthash::FastMap;
use crate::params::MemParams;
use crate::stats::MemStats;
use crate::{Cycle, MemoryModel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of DRAM banks in the hardware-proxy model.
pub const DEFAULT_BANKS: usize = 8;

/// Two-level hierarchy with finite DRAM banks and no prefetching.
#[derive(Debug, Clone)]
pub struct BankedHierarchy {
    params: MemParams,
    l1: Cache,
    l2: Cache,
    stats: MemStats,
    in_flight: FastMap<u64, Cycle>,
    /// Completion times of every fill issued; popped eagerly at sample
    /// time so MSHR occupancy statistics are exact (see
    /// [`crate::Hierarchy`]'s field of the same name).
    fills: BinaryHeap<Reverse<Cycle>>,
    /// Per-bank busy-until cycle.
    bank_free: Vec<Cycle>,
    /// Cycles a bank is occupied per line transfer.
    bank_occupancy: u64,
    l1_lat: u64,
    l2_lat: u64,
    ram_lat: u64,
}

impl BankedHierarchy {
    /// Build with the default bank count.
    pub fn new(params: MemParams) -> BankedHierarchy {
        BankedHierarchy::with_banks(params, DEFAULT_BANKS)
    }

    /// Build with an explicit bank count.
    pub fn with_banks(params: MemParams, banks: usize) -> BankedHierarchy {
        BankedHierarchy::with_contention(params, banks, 0)
    }

    /// Build a multi-core contention model: `co_runners` phantom cores
    /// share the DRAM controller under saturation (the paper's §VII
    /// future-work scenario, and its stated single-core assumption — "a
    /// multicore environment in which all cores work under saturation of
    /// the main memory controller").
    ///
    /// Each bank's service occupancy is multiplied by `1 + co_runners`
    /// (fair round-robin service among saturating cores) and every DRAM
    /// access pays the expected queue wait of half a service round.
    pub fn with_contention(params: MemParams, banks: usize, co_runners: u32) -> BankedHierarchy {
        assert!(banks > 0);
        debug_assert!(params.validate().is_ok(), "invalid MemParams");
        // A line transfer occupies its bank for the interface transfer time.
        let beats = f64::from(params.line_bytes) / 8.0;
        let base_occupancy = crate::params::ns_to_core_cycles(beats / params.ram_clock_ghz);
        let occupancy = base_occupancy * u64::from(1 + co_runners);
        let queue_wait = base_occupancy * u64::from(co_runners) / 2;
        BankedHierarchy {
            l1: Cache::new(params.l1_size_kib, params.l1_assoc, params.line_bytes),
            l2: Cache::new(params.l2_size_kib, params.l2_assoc, params.line_bytes),
            l1_lat: params.l1_hit_core_cycles(),
            l2_lat: params.l2_hit_core_cycles(),
            ram_lat: params.ram_core_cycles() + queue_wait,
            bank_free: vec![0; banks],
            bank_occupancy: occupancy,
            params,
            stats: MemStats::default(),
            in_flight: FastMap::default(),
            fills: BinaryHeap::new(),
        }
    }

    #[inline]
    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.params.line_bytes)) % self.bank_free.len() as u64) as usize
    }

    /// DRAM access with bank contention: the access starts when its bank
    /// frees up and holds the bank for the transfer time. Queue time
    /// spent waiting for a busy bank feeds the DRAM-queue counters.
    fn ram_access(&mut self, line_addr: u64, ready_at: Cycle) -> Cycle {
        let b = self.bank_of(line_addr);
        let start = ready_at.max(self.bank_free[b]);
        let wait = start - ready_at;
        if wait > 0 {
            self.stats.dram_queue_waits += 1;
            self.stats.dram_queue_wait_cycles += wait;
        }
        self.bank_free[b] = start + self.bank_occupancy;
        start + self.ram_lat
    }

    fn access_inner(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        debug_assert_eq!(line_addr % u64::from(self.params.line_bytes), 0);
        self.stats.requests += 1;
        if self.in_flight.len() > 4096 {
            self.in_flight.retain(|_, &mut c| c > now);
        }

        if let Some(&complete) = self.in_flight.get(&line_addr) {
            if complete > now {
                self.stats.merged += 1;
                self.l1.access(line_addr, is_store);
                return complete;
            }
            self.in_flight.remove(&line_addr);
        }

        match self.l1.access(line_addr, is_store) {
            LookupResult::Hit => {
                self.stats.l1_hits += 1;
                now + self.l1_lat
            }
            l1_miss => {
                self.stats.l1_misses += 1;
                if l1_miss == LookupResult::MissEvictDirty {
                    self.stats.writebacks += 1;
                    self.stats.l1_writebacks += 1;
                }
                let probe_done = now + self.l1_lat + self.l2_lat;
                let complete = match self.l2.access(line_addr, false) {
                    LookupResult::Hit => {
                        self.stats.l2_hits += 1;
                        probe_done
                    }
                    l2_miss => {
                        self.stats.l2_misses += 1;
                        if l2_miss == LookupResult::MissEvictDirty {
                            self.stats.writebacks += 1;
                            self.stats.l2_writebacks += 1;
                        }
                        self.ram_access(line_addr, probe_done)
                    }
                };
                self.in_flight.insert(line_addr, complete);
                self.fills.push(Reverse(complete));
                complete
            }
        }
    }
}

impl MemoryModel for BankedHierarchy {
    fn access(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        let complete = self.access_inner(line_addr, is_store, now);
        // Outstanding-fill (MSHR) occupancy, sampled once per access;
        // completed fills are dropped first so the sample is exact.
        while self.fills.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.fills.pop();
        }
        let outstanding = self.fills.len() as u64;
        self.stats.mshr_peak = self.stats.mshr_peak.max(outstanding);
        self.stats.mshr_occupancy_sum += outstanding;
        #[cfg(feature = "check-invariants")]
        {
            assert_eq!(
                line_addr % u64::from(self.params.line_bytes),
                0,
                "unaligned line request {line_addr:#x}"
            );
            assert!(
                complete >= now,
                "completion time {complete} before request {now}"
            );
            assert_eq!(
                outstanding,
                self.in_flight.values().filter(|&&c| c > now).count() as u64,
                "exact fill count diverged from live in-flight entries"
            );
            assert!(
                self.stats.demand_requests_conserved(),
                "request accounting leak: {:?}",
                self.stats
            );
            assert!(
                self.stats.writebacks_conserved(),
                "writeback accounting leak: {:?}",
                self.stats
            );
        }
        complete
    }

    fn line_bytes(&self) -> u32 {
        self.params.line_bytes
    }

    fn l1_hit_latency(&self) -> u64 {
        self.l1_lat
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_contention_serialises_same_bank_misses() {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::with_banks(p, 2);
        let stride = u64::from(p.line_bytes) * 2; // same bank every time
        let t1 = m.access(0, false, 0);
        let t2 = m.access(stride, false, 0);
        let t3 = m.access(stride * 2, false, 0);
        assert!(t2 > t1);
        assert!(t3 > t2);
    }

    #[test]
    fn different_banks_overlap() {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::with_banks(p, 8);
        let lb = u64::from(p.line_bytes);
        // Eight consecutive lines land in eight distinct banks.
        let times: Vec<Cycle> = (0..8).map(|i| m.access(i * lb, false, 0)).collect();
        assert!(
            times.windows(2).all(|w| w[0] == w[1]),
            "no contention expected: {times:?}"
        );
    }

    #[test]
    fn hits_bypass_banks() {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::new(p);
        let t1 = m.access(0, false, 0);
        let t2 = m.access(0, false, t1);
        assert_eq!(t2, t1 + p.l1_hit_core_cycles());
    }

    #[test]
    fn proxy_is_slower_than_default_on_streaming() {
        // A streaming sweep misses constantly; the banked model must cost
        // at least as much as the infinite-bank model (it also lacks the
        // prefetcher, widening the gap).
        let p = MemParams::thunderx2();
        let mut fast = crate::Hierarchy::new(p);
        let mut proxy = BankedHierarchy::with_banks(p, 4);
        let lb = u64::from(p.line_bytes);
        let mut t_fast = 0;
        let mut t_proxy = 0;
        for i in 0..256 {
            t_fast = fast.access(i * lb, false, t_fast);
            t_proxy = proxy.access(i * lb, false, t_proxy);
        }
        assert!(t_proxy > t_fast, "proxy {t_proxy} vs default {t_fast}");
    }

    #[test]
    fn merged_requests_counted() {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::new(p);
        m.access(0, false, 0);
        m.access(0, false, 1);
        assert_eq!(m.stats().merged, 1);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;

    fn streaming_cycles(co_runners: u32) -> Cycle {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::with_contention(p, 4, co_runners);
        let lb = u64::from(p.line_bytes);
        let mut t = 0;
        for i in 0..512 {
            t = m.access(i * lb, false, t);
        }
        t
    }

    #[test]
    fn co_runners_slow_streaming_monotonically() {
        let alone = streaming_cycles(0);
        let with_three = streaming_cycles(3);
        let with_fifteen = streaming_cycles(15);
        assert!(with_three > alone);
        assert!(with_fifteen > with_three);
    }

    #[test]
    fn zero_contention_matches_with_banks() {
        let p = MemParams::thunderx2();
        let mut a = BankedHierarchy::with_banks(p, 4);
        let mut b = BankedHierarchy::with_contention(p, 4, 0);
        let lb = u64::from(p.line_bytes);
        for i in 0..64 {
            assert_eq!(a.access(i * lb, false, i), b.access(i * lb, false, i));
        }
    }

    #[test]
    fn l1_hits_unaffected_by_contention() {
        let p = MemParams::thunderx2();
        let mut m = BankedHierarchy::with_contention(p, 4, 15);
        let t1 = m.access(0, false, 0);
        let t2 = m.access(0, false, t1);
        assert_eq!(t2, t1 + p.l1_hit_core_cycles());
    }
}
