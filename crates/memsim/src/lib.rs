//! # armdse-memsim — SST-like memory hierarchy simulator
//!
//! A request-level model of the paper's SST memory backend: an L1 data
//! cache and an L2 cache in front of DRAM, each in its own clock domain,
//! with line-granular transfers, true-LRU set-associative tag arrays,
//! write-back/write-allocate policy, a basic next-line prefetcher, and
//! merging of outstanding same-line requests.
//!
//! Two behavioural points from the paper are modelled explicitly:
//!
//! * **Infinite banking** — "SST models an infinite number of memory banks
//!   unless explicitly specified", so the default [`Hierarchy`] imposes no
//!   bandwidth limit *inside* the hierarchy: concurrency limits live in the
//!   core's load/store bandwidth and request-rate parameters. A request
//!   split over several cache lines completes when its slowest line does,
//!   but the line fetches proceed in parallel.
//! * **Cache-line width as bandwidth** — a wider line returns more bytes
//!   for one request latency; the paper calls out that this is how the
//!   Cache-Line-Width parameter acts as an L1↔L2↔RAM bandwidth knob.
//!
//! The [`banked::BankedHierarchy`] variant adds finite banks with
//! occupancy-based contention; it is the "hardware proxy" used by the
//! Table I validation experiment (see DESIGN.md substitution table).

#![warn(missing_docs)]

pub mod banked;
pub mod cache;
pub mod fasthash;
pub mod hierarchy;
pub mod params;
pub mod shared;
pub mod stats;

pub use banked::BankedHierarchy;
pub use cache::Cache;
pub use hierarchy::Hierarchy;
pub use params::MemParams;
pub use shared::{CorePort, SharedL2, CORE_ADDR_STRIDE};
pub use stats::MemStats;

/// Completion time (in core cycles) of a memory access.
pub type Cycle = u64;

/// Abstract memory backend driven by the core model.
///
/// `access` is called once per *line request* (the core splits wider
/// accesses with [`split_lines`]) and returns the absolute core cycle at
/// which the data is available (loads) or globally visible (stores).
pub trait MemoryModel {
    /// Perform a line-granular access starting at core cycle `now`.
    fn access(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle;

    /// Cache line width in bytes.
    fn line_bytes(&self) -> u32;

    /// L1 hit latency in core cycles. The core's LSQ uses this as the
    /// store-to-load forwarding latency: SimEng-style LSQs satisfy a
    /// forwarded load through the same L1-access path, so the forward is
    /// as slow as an L1 hit (this is what exposes L1 latency/clock on
    /// store→load coupled codes like MiniSweep's wavefront).
    fn l1_hit_latency(&self) -> u64;

    /// Accumulated statistics.
    fn stats(&self) -> &MemStats;
}

/// Split a byte-range access `[addr, addr+bytes)` into the addresses of the
/// cache lines it touches.
///
/// The number of elements this yields is the number of memory requests the
/// access consumes — each counts against the core's permitted
/// requests-per-cycle and load/store bandwidth.
pub fn split_lines(addr: u64, bytes: u32, line_bytes: u32) -> impl Iterator<Item = u64> {
    debug_assert!(line_bytes.is_power_of_two());
    debug_assert!(bytes > 0);
    let lb = u64::from(line_bytes);
    let first = addr & !(lb - 1);
    let last = (addr + u64::from(bytes) - 1) & !(lb - 1);
    (0..=(last - first) / lb).map(move |i| first + i * lb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_single_line() {
        let v: Vec<u64> = split_lines(0x1000, 8, 64).collect();
        assert_eq!(v, vec![0x1000]);
    }

    #[test]
    fn split_aligned_multi_line() {
        let v: Vec<u64> = split_lines(0x1000, 256, 64).collect();
        assert_eq!(v, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
    }

    #[test]
    fn split_unaligned_straddles() {
        // 8 bytes starting 4 before a line boundary touch two lines.
        let v: Vec<u64> = split_lines(0x103c, 8, 64).collect();
        assert_eq!(v, vec![0x1000, 0x1040]);
    }

    #[test]
    fn split_one_byte() {
        let v: Vec<u64> = split_lines(0x10ff, 1, 64).collect();
        assert_eq!(v, vec![0x10c0]);
    }

    #[test]
    fn split_wide_vector_narrow_line() {
        // 256-byte (2048-bit) vector over 16-byte lines: 16 requests.
        assert_eq!(split_lines(0, 256, 16).count(), 16);
    }
}
