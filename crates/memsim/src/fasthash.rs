//! Minimal multiplicative hasher for integer-keyed hot-path maps.
//!
//! The hierarchy's miss-status (`in_flight`) maps are keyed by line
//! addresses and probed on every memory request; the standard library's
//! default SipHash is DoS-resistant but costs tens of nanoseconds per
//! probe, which is pure overhead for simulator-internal keys that no
//! adversary controls. This hasher is a single multiply + rotate in the
//! spirit of FxHash/fxhash, implemented in-tree to avoid a dependency.
//!
//! Map iteration order changes relative to (randomly seeded) SipHash,
//! but becomes *deterministic* across runs; callers must still avoid
//! order-dependent iteration, as they already did under `RandomState`.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` state plugging [`FastHasher`] in for `RandomState`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`]; drop-in for integer-keyed maps.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// Word-at-a-time multiplicative hasher (not collision-resistant;
/// only for simulator-internal integer keys).
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

/// Odd multiplier close to 2^64 / φ, spreading low-entropy keys
/// (line addresses share alignment bits) across the hash range.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice fallback (unused on the hot path): fold in 8-byte
        // chunks so prefix keys still diffuse.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(K).rotate_left(26);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn aligned_keys_spread() {
        // Line addresses are 64-byte aligned; the hash must not collapse
        // onto a few buckets. Check low-bit diversity of the hashes.
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(bh.hash_one(i * 64) & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct buckets",
            low_bits.len()
        );
    }
}
