//! Default (infinite-bank) two-level hierarchy timing model.

use crate::cache::{Cache, LookupResult};
use crate::fasthash::FastMap;
use crate::params::MemParams;
use crate::stats::MemStats;
use crate::{Cycle, MemoryModel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Two-level write-back hierarchy with next-line prefetch and outstanding
/// request merging; unlimited internal banking, per the paper's note on
/// SST's default behaviour.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    params: MemParams,
    l1: Cache,
    l2: Cache,
    stats: MemStats,
    /// Outstanding line fills: line address → completion cycle. Entries
    /// are trimmed lazily (stale entries are harmless: the merge check
    /// compares against `now`, and their presence suppresses redundant
    /// prefetch issue exactly as a real MSHR's allocate-on-miss would).
    in_flight: FastMap<u64, Cycle>,
    /// Completion times of every fill issued, popped eagerly at sample
    /// time so the MSHR occupancy statistics are exact (a fill is
    /// outstanding iff its completion lies strictly after `now`). Kept
    /// separate from `in_flight` so the exact sampling cannot perturb
    /// merge/prefetch timing.
    fills: BinaryHeap<Reverse<Cycle>>,
    l1_lat: u64,
    l2_lat: u64,
    ram_lat: u64,
}

impl Hierarchy {
    /// Build a hierarchy from validated parameters.
    pub fn new(params: MemParams) -> Hierarchy {
        debug_assert!(params.validate().is_ok(), "invalid MemParams");
        Hierarchy {
            l1: Cache::new(params.l1_size_kib, params.l1_assoc, params.line_bytes),
            l2: Cache::new(params.l2_size_kib, params.l2_assoc, params.line_bytes),
            l1_lat: params.l1_hit_core_cycles(),
            l2_lat: params.l2_hit_core_cycles(),
            ram_lat: params.ram_core_cycles(),
            params,
            stats: MemStats::default(),
            in_flight: FastMap::default(),
            fills: BinaryHeap::new(),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn params(&self) -> &MemParams {
        &self.params
    }

    /// Lazily trim completed in-flight entries.
    fn maybe_trim(&mut self, now: Cycle) {
        if self.in_flight.len() > 4096 {
            self.in_flight.retain(|_, &mut c| c > now);
        }
    }

    /// Resolve the latency path for a line that is absent from L1,
    /// filling tags, counting stats, and returning the completion cycle.
    ///
    /// `fill_l1` is true for prefetches, whose only L1 touch happens
    /// here. Demand misses pass false: their caller already allocated
    /// the line in L1 (and counted any dirty eviction), so a second
    /// access would merely re-bump the LRU tick of the line that is
    /// already most-recent — replacement order is unchanged either way.
    fn miss_path(&mut self, line_addr: u64, is_store: bool, now: Cycle, fill_l1: bool) -> Cycle {
        let l2r = self.l2.access(line_addr, false);
        let complete = match l2r {
            LookupResult::Hit => {
                self.stats.l2_hits += 1;
                now + self.l1_lat + self.l2_lat
            }
            miss => {
                self.stats.l2_misses += 1;
                if miss == LookupResult::MissEvictDirty {
                    self.stats.writebacks += 1;
                    self.stats.l2_writebacks += 1;
                }
                now + self.l1_lat + self.l2_lat + self.ram_lat
            }
        };
        if fill_l1 && self.l1.access(line_addr, is_store) == LookupResult::MissEvictDirty {
            self.stats.writebacks += 1;
            self.stats.l1_writebacks += 1;
        }
        self.in_flight.insert(line_addr, complete);
        self.fills.push(Reverse(complete));
        complete
    }

    /// Issue next-line prefetches after a demand miss at `line_addr`.
    fn prefetch_after(&mut self, line_addr: u64, now: Cycle) {
        for d in 1..=u64::from(self.params.prefetch_depth) {
            let pf = line_addr + d * u64::from(self.params.line_bytes);
            if self.l1.probe(pf) || self.in_flight.contains_key(&pf) {
                continue;
            }
            self.stats.prefetches += 1;
            self.miss_path(pf, false, now, true);
        }
    }

    fn access_inner(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        debug_assert_eq!(line_addr % u64::from(self.params.line_bytes), 0);
        self.stats.requests += 1;
        self.maybe_trim(now);

        // Merge into an outstanding fill of the same line.
        if let Some(&complete) = self.in_flight.get(&line_addr) {
            if complete > now {
                self.stats.merged += 1;
                // Tags were already filled by the original request;
                // update LRU/dirty state.
                self.l1.access(line_addr, is_store);
                return complete;
            }
            self.in_flight.remove(&line_addr);
        }

        match self.l1.access(line_addr, is_store) {
            LookupResult::Hit => {
                self.stats.l1_hits += 1;
                now + self.l1_lat
            }
            miss => {
                self.stats.l1_misses += 1;
                if miss == LookupResult::MissEvictDirty {
                    self.stats.writebacks += 1;
                    self.stats.l1_writebacks += 1;
                }
                // The L1 tag was allocated by `access` just above;
                // resolve timing via L2/DRAM without touching L1 again.
                let complete = self.miss_path(line_addr, is_store, now, false);
                self.prefetch_after(line_addr, now);
                complete
            }
        }
    }
}

impl MemoryModel for Hierarchy {
    fn access(&mut self, line_addr: u64, is_store: bool, now: Cycle) -> Cycle {
        let complete = self.access_inner(line_addr, is_store, now);
        // Outstanding-fill (MSHR) occupancy, sampled once per access.
        // Fills whose completion has passed are dropped first, so the
        // sample counts exactly the fills still in flight at `now`.
        while self.fills.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.fills.pop();
        }
        let outstanding = self.fills.len() as u64;
        self.stats.mshr_peak = self.stats.mshr_peak.max(outstanding);
        self.stats.mshr_occupancy_sum += outstanding;
        #[cfg(feature = "check-invariants")]
        {
            assert_eq!(
                line_addr % u64::from(self.params.line_bytes),
                0,
                "unaligned line request {line_addr:#x}"
            );
            assert!(
                complete >= now,
                "completion time {complete} before request {now}"
            );
            assert_eq!(
                outstanding,
                self.in_flight.values().filter(|&&c| c > now).count() as u64,
                "exact fill count diverged from live in-flight entries"
            );
            assert!(
                self.stats.demand_requests_conserved(),
                "request accounting leak: {:?}",
                self.stats
            );
            assert!(
                self.stats.writebacks_conserved(),
                "writeback accounting leak: {:?}",
                self.stats
            );
        }
        complete
    }

    fn line_bytes(&self) -> u32 {
        self.params.line_bytes
    }

    fn l1_hit_latency(&self) -> u64 {
        self.l1_lat
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(prefetch: u32) -> Hierarchy {
        let mut p = MemParams::thunderx2();
        p.prefetch_depth = prefetch;
        Hierarchy::new(p)
    }

    #[test]
    fn cold_miss_costs_full_path() {
        let mut m = h(0);
        let t = m.access(0x1000, false, 100);
        let p = MemParams::thunderx2();
        assert_eq!(
            t,
            100 + p.l1_hit_core_cycles() + p.l2_hit_core_cycles() + p.ram_core_cycles()
        );
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = h(0);
        let t1 = m.access(0x1000, false, 0);
        let t2 = m.access(0x1000, false, t1);
        assert_eq!(t2, t1 + MemParams::thunderx2().l1_hit_core_cycles());
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn same_line_request_merges_while_in_flight() {
        let mut m = h(0);
        let t1 = m.access(0x1000, false, 0);
        // Second request to the same line before the fill completes.
        let t2 = m.access(0x1000, false, 1);
        assert_eq!(t1, t2);
        assert_eq!(m.stats().merged, 1);
    }

    #[test]
    fn prefetch_hides_next_line_latency() {
        let mut m = h(2);
        let t1 = m.access(0x1000, false, 0);
        assert_eq!(m.stats().prefetches, 2);
        // Demand for the prefetched next line merges into the prefetch.
        let t2 = m.access(0x1040, false, 1);
        assert!(t2 <= t1, "prefetched line should not pay a fresh miss");
        assert_eq!(m.stats().merged, 1);
    }

    #[test]
    fn l2_hit_cheaper_than_ram() {
        let p = MemParams::thunderx2();
        let mut m = h(0);
        // Fill L1 far beyond capacity so an early line falls out of L1 but
        // stays in the (8×) larger L2.
        let lines = u64::from(p.l1_size_kib) * 1024 / u64::from(p.line_bytes);
        let mut now = 0;
        for i in 0..(lines * 2) {
            now = m.access(i * u64::from(p.line_bytes), false, now);
        }
        let s_before = *m.stats();
        let t = m.access(0, false, now); // evicted from L1, resident in L2
        assert_eq!(m.stats().l1_misses, s_before.l1_misses + 1);
        assert_eq!(m.stats().l2_hits, s_before.l2_hits + 1);
        assert_eq!(t, now + p.l1_hit_core_cycles() + p.l2_hit_core_cycles());
    }

    #[test]
    fn store_then_eviction_writes_back() {
        let mut m = h(0);
        let p = MemParams::thunderx2();
        m.access(0, true, 0);
        // Walk enough conflicting lines to evict line 0 from both levels.
        let stride = u64::from(p.line_bytes) * u64::from(p.l2_sets());
        let mut now = 1000;
        for i in 1..=u64::from(p.l2_assoc + 1) {
            now = m.access(i * stride, false, now);
        }
        assert!(m.stats().writebacks >= 1);
    }

    #[test]
    fn mshr_occupancy_is_exact_after_fill_completes() {
        // Crafted overcount pattern: fill line A, let it complete, then
        // touch line B. A stale map entry for A must not inflate the
        // sample — exactly one fill (B's) is outstanding.
        let mut m = h(0);
        let done_a = m.access(0x1000, false, 0);
        assert_eq!(m.stats().mshr_peak, 1);
        assert_eq!(m.stats().mshr_occupancy_sum, 1);
        let done_b = m.access(0x2000, false, done_a);
        assert!(done_b > done_a);
        assert_eq!(m.stats().mshr_peak, 1, "stale fill A inflated the peak");
        assert_eq!(m.stats().mshr_occupancy_sum, 2);
        // After B completes too, a third access samples zero completed
        // fills plus its own (an L1 hit adds none).
        m.access(0x2000, false, done_b);
        assert_eq!(m.stats().mshr_occupancy_sum, 2);
        assert_eq!(m.stats().mshr_peak, 1);
    }

    #[test]
    fn mshr_counts_concurrent_fills() {
        let mut m = h(0);
        // Four distinct lines requested in the same cycle: all in flight.
        for i in 0..4u64 {
            m.access(0x1000 * (i + 1), false, 0);
        }
        assert_eq!(m.stats().mshr_peak, 4);
        assert_eq!(m.stats().mshr_occupancy_sum, 1 + 2 + 3 + 4);
    }

    #[test]
    fn request_count_tracks_all_accesses() {
        let mut m = h(1);
        m.access(0x0, false, 0);
        m.access(0x40, false, 1);
        m.access(0x40, false, 2);
        assert_eq!(m.stats().requests, 3);
    }
}
