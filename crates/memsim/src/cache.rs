//! Set-associative cache tag array with true LRU replacement.

/// One cache way: tag plus state bits.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    /// Line tag (full line address for simplicity; memory is ample).
    tag: u64,
    /// Valid bit.
    valid: bool,
    /// Dirty bit (set by stores; write-back policy).
    dirty: bool,
    /// LRU timestamp (larger = more recently used).
    lru: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent; no line was displaced (an invalid way was filled).
    MissFilled,
    /// Line absent; a clean line was evicted to make room.
    MissEvictClean,
    /// Line absent; a dirty line was evicted (write-back traffic).
    MissEvictDirty,
}

/// A set-associative, write-back, write-allocate cache tag array.
///
/// Timing lives in the hierarchy; this structure answers only *presence*
/// questions and maintains replacement state.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    sets: u32,
    assoc: u32,
    line_bytes: u32,
    tick: u64,
}

impl Cache {
    /// Build a cache of `size_kib` KiB with `assoc` ways and
    /// `line_bytes`-byte lines. Set count must be a power of two
    /// (guaranteed by [`crate::MemParams::validate`]).
    pub fn new(size_kib: u32, assoc: u32, line_bytes: u32) -> Cache {
        let lines = size_kib as u64 * 1024 / u64::from(line_bytes);
        let sets = (lines / u64::from(assoc)) as u32;
        assert!(sets.is_power_of_two() && sets > 0, "invalid cache geometry");
        Cache {
            ways: vec![Way::default(); (sets * assoc) as usize],
            sets,
            assoc,
            line_bytes,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.line_bytes)) & u64::from(self.sets - 1)) as usize
    }

    /// Probe for `line_addr` without changing any state.
    pub fn probe(&self, line_addr: u64) -> bool {
        let s = self.set_of(line_addr);
        self.set_ways(s)
            .iter()
            .any(|w| w.valid && w.tag == line_addr)
    }

    #[inline]
    fn set_ways(&self, set: usize) -> &[Way] {
        let a = self.assoc as usize;
        &self.ways[set * a..(set + 1) * a]
    }

    #[inline]
    fn set_ways_mut(&mut self, set: usize) -> &mut [Way] {
        let a = self.assoc as usize;
        &mut self.ways[set * a..(set + 1) * a]
    }

    /// Access `line_addr`, allocating on miss, updating LRU, and setting
    /// the dirty bit for stores.
    pub fn access(&mut self, line_addr: u64, is_store: bool) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line_addr);
        let ways = self.set_ways_mut(set);

        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line_addr) {
            w.lru = tick;
            w.dirty |= is_store;
            return LookupResult::Hit;
        }

        // Miss: prefer an invalid way, otherwise evict the LRU way.
        let (victim_idx, result) = match ways.iter().position(|w| !w.valid) {
            Some(i) => (i, LookupResult::MissFilled),
            None => {
                let (i, v) = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .expect("assoc >= 1");
                let r = if v.dirty {
                    LookupResult::MissEvictDirty
                } else {
                    LookupResult::MissEvictClean
                };
                (i, r)
            }
        };
        ways[victim_idx] = Way {
            tag: line_addr,
            valid: true,
            dirty: is_store,
            lru: tick,
        };
        result
    }

    /// Insert a line without classifying the access (prefetch fills).
    /// Returns `true` if a dirty line was displaced.
    pub fn fill(&mut self, line_addr: u64) -> bool {
        matches!(self.access(line_addr, false), LookupResult::MissEvictDirty)
    }

    /// Invalidate every line (used between benchmark phases when modelling
    /// a cold-cache run).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            *w = Way::default();
        }
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> u32 {
        self.sets * self.assoc
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> u32 {
        self.ways.iter().filter(|w| w.valid).count() as u32
    }

    /// Cache line width in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 1 KiB, 2-way, 64 B lines → 8 sets.
        Cache::new(1, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.capacity_lines(), 16);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, false), LookupResult::MissFilled);
        assert_eq!(c.access(0x1000, false), LookupResult::Hit);
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (8 sets × 64 B stride ⇒
        // addresses 512 B apart share a set).
        let a = 0x0000;
        let b = 0x0200;
        let d = 0x0400;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        assert_eq!(c.access(d, false), LookupResult::MissEvictClean); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0200, false);
        let r = c.access(0x0400, false); // evicts dirty 0x0000
        assert_eq!(r, LookupResult::MissEvictDirty);
    }

    #[test]
    fn store_hit_sets_dirty() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0000, true); // now dirty via store hit
        c.access(0x0200, false);
        assert_eq!(c.access(0x0400, false), LookupResult::MissEvictDirty);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x1000, false);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // 16 lines in 16 distinct (set, way) slots: addresses 64 B apart.
        for i in 0..16u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.valid_lines(), 16);
        for i in 0..16u64 {
            assert!(c.probe(i * 64));
        }
    }

    #[test]
    fn fill_reports_dirty_writeback() {
        let mut c = tiny();
        c.access(0x0000, true);
        c.access(0x0200, true);
        assert!(c.fill(0x0400));
    }
}
