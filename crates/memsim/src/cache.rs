//! Set-associative cache tag array with true LRU replacement.

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent; no line was displaced (an invalid way was filled).
    MissFilled,
    /// Line absent; a clean line was evicted to make room.
    MissEvictClean,
    /// Line absent; a dirty line was evicted (write-back traffic).
    MissEvictDirty,
}

/// A set-associative, write-back, write-allocate cache tag array.
///
/// Timing lives in the hierarchy; this structure answers only *presence*
/// questions and maintains replacement state.
///
/// Storage is two parallel `Vec<u64>`s rather than a `Vec` of way
/// structs: both zero-initialise through `alloc_zeroed` (no multi-MiB
/// memset when a large L2 is built per simulation), and the hit path
/// touches only the tag array at twice the density of the struct layout.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Per way: `(line_addr << 1) | 1` when valid, `0` when invalid.
    tags: Vec<u64>,
    /// Per way: `(lru_tick << 1) | dirty`; meaningless while invalid.
    meta: Vec<u64>,
    sets: u32,
    assoc: u32,
    line_bytes: u32,
    tick: u64,
}

impl Cache {
    /// Build a cache of `size_kib` KiB with `assoc` ways and
    /// `line_bytes`-byte lines. Set count must be a power of two
    /// (guaranteed by [`crate::MemParams::validate`]).
    pub fn new(size_kib: u32, assoc: u32, line_bytes: u32) -> Cache {
        let lines = size_kib as u64 * 1024 / u64::from(line_bytes);
        let sets = (lines / u64::from(assoc)) as u32;
        assert!(sets.is_power_of_two() && sets > 0, "invalid cache geometry");
        let n = (sets * assoc) as usize;
        Cache {
            tags: vec![0; n],
            meta: vec![0; n],
            sets,
            assoc,
            line_bytes,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.line_bytes)) & u64::from(self.sets - 1)) as usize
    }

    /// Probe for `line_addr` without changing any state.
    pub fn probe(&self, line_addr: u64) -> bool {
        let tag = (line_addr << 1) | 1;
        let a = self.assoc as usize;
        let base = self.set_of(line_addr) * a;
        self.tags[base..base + a].contains(&tag)
    }

    /// Access `line_addr`, allocating on miss, updating LRU, and setting
    /// the dirty bit for stores.
    pub fn access(&mut self, line_addr: u64, is_store: bool) -> LookupResult {
        debug_assert!(line_addr < 1 << 63, "address overflows tag encoding");
        self.tick += 1;
        let tick = self.tick;
        let tag = (line_addr << 1) | 1;
        let a = self.assoc as usize;
        let base = self.set_of(line_addr) * a;

        if let Some(i) = self.tags[base..base + a].iter().position(|&t| t == tag) {
            let m = &mut self.meta[base + i];
            *m = (tick << 1) | (*m & 1) | u64::from(is_store);
            return LookupResult::Hit;
        }

        // Miss: prefer an invalid way, otherwise evict the LRU way (ticks
        // are unique, so min-by-meta is min-by-tick among valid ways).
        let (victim_idx, result) = match self.tags[base..base + a].iter().position(|&t| t == 0) {
            Some(i) => (i, LookupResult::MissFilled),
            None => {
                let (i, m) = self.meta[base..base + a]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, m)| *m)
                    .expect("assoc >= 1");
                let r = if m & 1 != 0 {
                    LookupResult::MissEvictDirty
                } else {
                    LookupResult::MissEvictClean
                };
                (i, r)
            }
        };
        self.tags[base + victim_idx] = tag;
        self.meta[base + victim_idx] = (tick << 1) | u64::from(is_store);
        result
    }

    /// Insert a line without classifying the access (prefetch fills).
    /// Returns `true` if a dirty line was displaced.
    pub fn fill(&mut self, line_addr: u64) -> bool {
        matches!(self.access(line_addr, false), LookupResult::MissEvictDirty)
    }

    /// Invalidate every line (used between benchmark phases when modelling
    /// a cold-cache run).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.meta.fill(0);
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> u32 {
        self.sets * self.assoc
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> u32 {
        self.tags.iter().filter(|&&t| t != 0).count() as u32
    }

    /// Cache line width in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 1 KiB, 2-way, 64 B lines → 8 sets.
        Cache::new(1, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.capacity_lines(), 16);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, false), LookupResult::MissFilled);
        assert_eq!(c.access(0x1000, false), LookupResult::Hit);
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (8 sets × 64 B stride ⇒
        // addresses 512 B apart share a set).
        let a = 0x0000;
        let b = 0x0200;
        let d = 0x0400;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        assert_eq!(c.access(d, false), LookupResult::MissEvictClean); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0200, false);
        let r = c.access(0x0400, false); // evicts dirty 0x0000
        assert_eq!(r, LookupResult::MissEvictDirty);
    }

    #[test]
    fn store_hit_sets_dirty() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0000, true); // now dirty via store hit
        c.access(0x0200, false);
        assert_eq!(c.access(0x0400, false), LookupResult::MissEvictDirty);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x1000, false);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // 16 lines in 16 distinct (set, way) slots: addresses 64 B apart.
        for i in 0..16u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.valid_lines(), 16);
        for i in 0..16u64 {
            assert!(c.probe(i * 64));
        }
    }

    #[test]
    fn fill_reports_dirty_writeback() {
        let mut c = tiny();
        c.access(0x0000, true);
        c.access(0x0200, true);
        assert!(c.fill(0x0400));
    }
}
