//! Extension experiment: surrogate vs simulator on a parameter sweep.
//!
//! The paper's core value proposition is that the surrogate "permits us
//! to more accurately extrapolate across the large search space, allowing
//! us to model the space with a fraction of the data requirements". This
//! experiment validates that claim head-on: the ROB-size sweep of Fig. 7
//! is produced twice — once by fresh simulation (minutes) and once as the
//! trained tree's partial-dependence curve over the dataset
//! (microseconds) — and the two speedup curves are compared point by
//! point.

use crate::report;
use crate::sweeps::{SweepFig, ROB_POINTS};
use armdse_core::config::FEATURE_NAMES;
use armdse_core::{DseDataset, SurrogateSuite};
use armdse_kernels::App;
use armdse_mltree::partial_dependence_speedup;

/// Comparison of one app's simulated vs surrogate speedup curves.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveComparison {
    /// Application name.
    pub app: String,
    /// (swept value, simulated speedup, surrogate-predicted speedup).
    pub points: Vec<(u32, f64, f64)>,
    /// Mean absolute difference between the two speedup curves.
    pub mean_abs_diff: f64,
}

/// The full cross-validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossVal {
    /// One comparison per application.
    pub comparisons: Vec<CurveComparison>,
}

/// Compare the simulated Fig. 7 against the surrogate's ROB
/// partial-dependence speedup.
pub fn run(data: &DseDataset, fig7: &SweepFig, seed: u64) -> CrossVal {
    let suite = SurrogateSuite::train(data, 0.2, seed);
    let rob_feature = FEATURE_NAMES
        .iter()
        .position(|&n| n == "ROB-Size")
        .expect("ROB-Size feature exists");
    let grid: Vec<f64> = ROB_POINTS.iter().map(|&v| f64::from(v)).collect();

    let comparisons = App::ALL
        .iter()
        .filter_map(|&app| {
            let model = suite.model(app)?;
            let ml = data.ml_dataset(app);
            let pd = partial_dependence_speedup(&model.tree, &ml.x, rob_feature, &grid);
            let points: Vec<(u32, f64, f64)> = ROB_POINTS
                .iter()
                .zip(&pd)
                .filter_map(|(&v, &(_, surrogate))| {
                    fig7.speedup(app, v).map(|sim| (v, sim, surrogate))
                })
                .collect();
            let mean_abs_diff = points
                .iter()
                .map(|(_, sim, sur)| (sim - sur).abs())
                .sum::<f64>()
                / points.len().max(1) as f64;
            Some(CurveComparison {
                app: app.name().to_string(),
                points,
                mean_abs_diff,
            })
        })
        .collect();
    CrossVal { comparisons }
}

impl CrossVal {
    /// Render as a text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for t in self.tables() {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        out
    }

    /// The structured artifacts, one table per application.
    pub fn tables(&self) -> Vec<report::Table> {
        self.comparisons
            .iter()
            .map(|c| {
                let rows: Vec<Vec<String>> = c
                    .points
                    .iter()
                    .map(|(v, sim, sur)| {
                        vec![v.to_string(), format!("{sim:.2}x"), format!("{sur:.2}x")]
                    })
                    .collect();
                report::Table::new(
                    &format!(
                        "Extension: surrogate vs simulator ROB sweep — {} (mean |Δ| {:.2})",
                        c.app, c.mean_abs_diff
                    ),
                    &["ROB-Size", "Simulated", "Surrogate PD"],
                    rows,
                )
            })
            .collect()
    }

    /// Whether the surrogate's curves track the simulator within
    /// `tolerance` mean absolute speedup difference for every app.
    pub fn tracks_within(&self, tolerance: f64) -> bool {
        self.comparisons
            .iter()
            .all(|c| c.mean_abs_diff <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::{fig7, SweepOptions};
    use crate::{build_dataset, ExpOptions};
    use armdse_core::engine::Engine;
    use armdse_core::space::ParamSpace;
    use armdse_kernels::WorkloadScale;

    #[test]
    fn surrogate_curve_has_correct_direction() {
        let mut opts = ExpOptions::quick();
        // 300 configs (up from 150): with fewer samples the tree sees
        // too few high-ROB points and its partial dependence at the
        // largest ROB can dip below 1.0 for one app — a data-sparsity
        // artefact, not a direction error.
        opts.configs = 300;
        let engine = Engine::idealized();
        let data = build_dataset(&engine, &opts).unwrap();
        let sweep = SweepOptions {
            base_configs: 3,
            scale: WorkloadScale::Tiny,
            seed: 5,
        };
        let f7 = fig7(&engine, &ParamSpace::paper(), &sweep);
        let cv = run(&data, &f7, 5);
        assert_eq!(cv.comparisons.len(), 4);
        for c in &cv.comparisons {
            // Surrogate speedup at the largest ROB must exceed 1 (the
            // direction of the simulated effect), even with a small
            // training set.
            let last = c.points.last().unwrap();
            assert!(
                last.2 > 1.0,
                "{}: surrogate missed the ROB direction: {:?}",
                c.app,
                c.points
            );
        }
        let t = cv.to_table();
        assert!(t.contains("Surrogate PD"));
    }
}
