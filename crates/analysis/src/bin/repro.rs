//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--configs N] [--scale tiny|small|standard]
//!                    [--seed N] [--sweep-configs N] [--threads N]
//!                    [--out DIR] [--resume] [--max-chunks N]
//!                    [--metrics DIR] [--explore N] [--explore-pareto]
//!                    [--cores N] [--banks N] [--apps base|extended]
//! repro --serve ADDR [--out DIR] [--runners N]
//!
//! experiments:
//!   fig1      SVE fraction of retired instructions per vector length
//!   table1    simulated vs hardware-proxy cycles on the ThunderX2 baseline
//!   dataset   generate and save the design-space dataset (CSV)
//!   fig2      prediction-accuracy tolerance curves
//!   fig3      permutation feature importances (full space)
//!   fig4      importances with vector length fixed at 128
//!   fig5      importances with vector length fixed at 2048
//!   fig6      speedup vs vector length (STREAM, miniBUDE)
//!   fig7      speedup vs ROB size
//!   fig8      speedup vs FP/SVE register count
//!   headline  paper-vs-measured headline numbers
//!   unseen    extension: leave-one-app-out transfer accuracy
//!   multicore extension: slowdown under shared-DRAM contention, plus
//!             the phantom-projection-vs-real-machine validation table
//!   crossval  extension: surrogate partial dependence vs fresh simulation
//!   summary   distribution/coverage summary of the cached dataset
//!   explore   surrogate-guided adaptive exploration (budget via --explore)
//!   all       everything above, sharing one dataset
//! ```
//!
//! Dataset generation streams rows straight to `<out>/dataset.csv` and
//! checkpoints its position in `<out>/dataset.ckpt` after every chunk.
//! An interrupted campaign continues with `--resume` — the resumed CSV
//! is byte-identical to an uninterrupted run at any `--threads` count.
//! `--max-chunks N` pauses generation after N chunks (leaving the
//! checkpoint in place), giving scripts a deterministic interruption
//! point; ci.sh uses it to smoke-test the resume path.
//!
//! The `explore` experiment replaces the fixed sweep with the adaptive
//! [`Explorer`] loop: `--explore N` sets the simulation budget (default
//! a tenth of `--configs`), `--explore-pareto` switches acquisition to
//! two-objective mode (predicted cycles vs structure cost). Artifacts
//! (`explore_dataset.csv`, `explore_curve.{csv,json}`, `explore.ckpt`,
//! and `explore_pareto.csv` in Pareto mode) land under `--out`; the
//! same `--resume` / `--max-chunks` semantics apply, and the finished
//! artifacts are byte-identical at any `--threads` count.
//!
//! `--cores N` runs every experiment on the real multicore machine
//! ([`armdse_simcore::MultiCore`]): N pipelines, each executing its own
//! instance of the workload, contending over the shared banked L2 and
//! DRAM. `--banks N` sets the shared-L2 bank count (default 8). The
//! multicore machine always simulates at full fidelity, so `--cores`
//! conflicts with `--reuse` / a non-full `--fidelity`. Dataset
//! campaigns on a multicore machine record the machine shape in their
//! checkpoint (`mc.cores` / `mc.banks`) and refuse to resume under a
//! different shape; with `--metrics` the metrics CSV carries one
//! aggregate row per job plus one detail row per core (see
//! docs/METRICS.md and docs/MULTICORE.md).
//!
//! `--apps extended` widens dataset-driven experiments from the paper's
//! four applications to the extended kernel set (adds SpMV, GEMM, and
//! the pointer-chasing Graph kernel); the unseen-code transfer matrix
//! folds the extra kernels in automatically.
//!
//! `--metrics DIR` additionally runs every dataset job with cycle
//! accounting enabled, streaming one counter row per job to
//! `DIR/metrics.csv` (schema: docs/METRICS.md) alongside the dataset
//! rows, with the same determinism and checkpoint/resume guarantees.
//! After a completed campaign the bottleneck analysis
//! (cycle-accounting shares + the bottleneck-vs-importance cross-tab)
//! is emitted into the same directory.
//! All experiments in one invocation share a single [`Engine`] (and so
//! one workload cache).

use armdse_analysis::report::{discarded_table, tables_to_json, Table};
use armdse_analysis::sweeps::SweepOptions;
use armdse_analysis::{
    accuracy, bottleneck, crossval, fig1, headline, importance, multicore, sweeps, table1, unseen,
    ExpOptions,
};
use armdse_core::engine::{CsvSink, Engine, Progress, RunControl, RunPlan};
use armdse_core::explorer::{ExploreControl, ExploreOptions, ExploreProgress, Explorer};
use armdse_core::metrics::{MetricsCsvSink, MetricsSink};
use armdse_core::space::ParamSpace;
use armdse_core::{ArmdseError, DseDataset, SurrogateSuite};
use armdse_kernels::{App, WorkloadScale};
use armdse_server::{Server, ServerConfig};
use armdse_simcore::Topology;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Cli {
    experiment: String,
    opts: ExpOptions,
    out: PathBuf,
    resume: bool,
    max_chunks: Option<usize>,
    metrics: Option<PathBuf>,
    explore_budget: Option<usize>,
    explore_pareto: bool,
    explore_screen: usize,
    fidelity: FidelityArg,
    topology: Topology,
}

/// `--fidelity` argument: which simulation tier the shared engine runs
/// at. `--reuse` is shorthand for `--fidelity memoized`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FidelityArg {
    Full,
    Memoized,
    Sampled,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut opts = ExpOptions::default();
    let mut out = PathBuf::from("results");
    let mut resume = false;
    let mut max_chunks = None;
    let mut metrics = None;
    let mut explore_budget = None;
    let mut explore_pareto = false;
    let mut explore_screen = 0;
    let mut fidelity = FidelityArg::Full;
    let mut topology = Topology::default();
    while let Some(flag) = args.next() {
        let mut val = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--configs" => opts.configs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => opts.threads = val()?.parse().map_err(|e| format!("{e}"))?,
            "--sweep-configs" => opts.sweep_configs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => {
                opts.scale = match val()?.as_str() {
                    "tiny" => WorkloadScale::Tiny,
                    "small" => WorkloadScale::Small,
                    "standard" => WorkloadScale::Standard,
                    s => return Err(format!("unknown scale {s}")),
                }
            }
            "--out" => out = PathBuf::from(val()?),
            "--resume" => resume = true,
            "--max-chunks" => max_chunks = Some(val()?.parse().map_err(|e| format!("{e}"))?),
            "--metrics" => metrics = Some(PathBuf::from(val()?)),
            "--explore" => explore_budget = Some(val()?.parse().map_err(|e| format!("{e}"))?),
            "--explore-pareto" => explore_pareto = true,
            "--explore-screen" => explore_screen = val()?.parse().map_err(|e| format!("{e}"))?,
            "--reuse" => fidelity = FidelityArg::Memoized,
            "--fidelity" => {
                fidelity = match val()?.as_str() {
                    "full" => FidelityArg::Full,
                    "memoized" => FidelityArg::Memoized,
                    "sampled" => FidelityArg::Sampled,
                    s => return Err(format!("unknown fidelity {s}")),
                }
            }
            "--cores" => {
                topology.cores = val()?.parse().map_err(|e| format!("{e}"))?;
                if topology.cores == 0 {
                    return Err("--cores must be at least 1".to_string());
                }
            }
            "--banks" => {
                topology.banks = val()?.parse().map_err(|e| format!("{e}"))?;
                if topology.banks == 0 {
                    return Err("--banks must be at least 1".to_string());
                }
            }
            "--apps" => {
                opts.apps = match val()?.as_str() {
                    "base" => App::ALL.to_vec(),
                    "extended" => App::EXTENDED.to_vec(),
                    s => return Err(format!("unknown app set {s} (base|extended)")),
                }
            }
            f => return Err(format!("unknown flag {f}")),
        }
    }
    if topology != Topology::default() && fidelity != FidelityArg::Full {
        return Err(
            "--cores/--banks run the multicore machine, which only simulates at full \
                    fidelity; drop --reuse/--fidelity"
                .to_string(),
        );
    }
    Ok(Cli {
        experiment,
        opts,
        out,
        resume,
        max_chunks,
        metrics,
        explore_budget,
        explore_pareto,
        explore_screen,
        fidelity,
        topology,
    })
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("--serve") {
        match serve(&std::env::args().skip(2).collect::<Vec<_>>()) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}\n\nusage: repro --serve ADDR [--out DIR] [--runners N]");
                std::process::exit(2);
            }
        }
    }
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: repro <experiment> [--configs N] [--scale tiny|small|standard] [--seed N] [--sweep-configs N] [--threads N] [--out DIR] [--resume] [--max-chunks N] [--metrics DIR] [--explore N] [--explore-pareto] [--explore-screen N] [--reuse] [--fidelity full|memoized|sampled] [--cores N] [--banks N] [--apps base|extended]");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&cli.out).expect("create output directory");
    let t0 = Instant::now();
    run(&cli);
    eprintln!("[repro] {} finished in {:?}", cli.experiment, t0.elapsed());
}

/// Report an engine error and exit (plan/checkpoint problems are user
/// errors, not bugs — no backtrace).
fn fail(e: ArmdseError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

/// `repro --serve ADDR [--out DIR] [--runners N]` — run the DSE job
/// server until a `POST /shutdown` arrives. The job store lives under
/// `<out>/jobs` (campaigns interrupted by a shutdown reopen as paused
/// and resume byte-identically), and the resolved bind address —
/// meaningful with an ephemeral `127.0.0.1:0` — is written to
/// `<out>/server.addr` for scripts to pick up.
fn serve(args: &[String]) -> Result<(), String> {
    let mut args = args.iter();
    let addr = args
        .next()
        .ok_or("missing bind address (try 127.0.0.1:0)")?
        .clone();
    let mut out = PathBuf::from("results");
    let mut runners = 2usize;
    while let Some(flag) = args.next() {
        let mut val = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => out = PathBuf::from(val()?),
            "--runners" => runners = val()?.parse().map_err(|e| format!("{e}"))?,
            f => return Err(format!("unknown flag {f}")),
        }
    }
    let config = ServerConfig {
        addr,
        jobs_dir: out.join("jobs"),
        runners: runners.max(1),
    };
    std::fs::create_dir_all(&out).expect("create output directory");
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => fail(e),
    };
    let local = server.local_addr();
    std::fs::write(out.join("server.addr"), format!("{local}\n"))
        .unwrap_or_else(|e| fail(ArmdseError::from(e)));
    eprintln!(
        "[repro] serving jobs on {local} ({} runner threads; job store {})",
        config.runners,
        config.jobs_dir.display()
    );
    server
        .serve()
        .unwrap_or_else(|e| fail(ArmdseError::from(e)));
    eprintln!(
        "[repro] server shut down; job state saved under {}",
        config.jobs_dir.display()
    );
    Ok(())
}

fn run(cli: &Cli) {
    let space = ParamSpace::paper();
    let opts = &cli.opts;
    let engine = if cli.topology != Topology::default() {
        Engine::multicore(cli.topology.cores, cli.topology.banks)
    } else {
        match cli.fidelity {
            FidelityArg::Full => Engine::idealized(),
            FidelityArg::Memoized => Engine::memoized(armdse_simcore::DEFAULT_INTERVAL_LEN),
            FidelityArg::Sampled => Engine::sampled(
                armdse_simcore::DEFAULT_INTERVAL_LEN,
                armdse_simcore::DEFAULT_WARMUP,
            ),
        }
    };
    if cli.topology != Topology::default() {
        eprintln!(
            "[repro] multicore machine: {} core(s), {} shared-L2 bank(s)",
            cli.topology.cores, cli.topology.banks
        );
    }
    if cli.fidelity != FidelityArg::Full {
        eprintln!("[repro] fidelity tier: {:?}", engine.backend().fidelity());
    }
    let sweep = SweepOptions {
        base_configs: opts.sweep_configs,
        scale: opts.scale,
        seed: opts.seed ^ 0x5EED_CAFE,
    };
    let gen_opts = opts.gen_options();

    match cli.experiment.as_str() {
        "fig1" => {
            emit_table(cli, "fig1", &fig1::run(&engine, opts.scale).table());
        }
        "table1" => {
            emit_table(cli, "table1", &table1::run(&engine, opts.scale).table());
        }
        "dataset" => {
            let data = dataset(cli, &space, &engine, true);
            emit_text(cli, "dataset_summary", &data.summary().to_table());
        }
        "fig2" => {
            let data = dataset(cli, &space, &engine, false);
            emit_table(cli, "fig2", &accuracy::run(&data, opts.seed).table());
        }
        "fig3" => {
            let data = dataset(cli, &space, &engine, false);
            emit_table(cli, "fig3", &importance::fig3(&data, opts.seed).table());
        }
        "fig4" | "fig5" => {
            let vl = if cli.experiment == "fig4" { 128 } else { 2048 };
            let fig = importance::fig45(&engine, &space, &gen_opts, vl, opts.seed)
                .unwrap_or_else(|e| fail(e));
            emit_table(cli, &cli.experiment, &fig.table());
        }
        "fig6" => {
            let f = sweeps::fig6(&engine, &space, &sweep);
            emit_chart(cli, "fig6", &f.table(), &f.to_chart());
        }
        "fig7" => {
            let f = sweeps::fig7(&engine, &space, &sweep);
            emit_chart(cli, "fig7", &f.table(), &f.to_chart());
        }
        "fig8" => {
            let f = sweeps::fig8(&engine, &space, &sweep);
            emit_chart(cli, "fig8", &f.table(), &f.to_chart());
        }
        "summary" => {
            let data = dataset(cli, &space, &engine, false);
            emit_text(cli, "dataset_summary", &data.summary().to_table());
        }
        "explore" => explore(cli, &space, &engine),
        "crossval" => {
            let data = dataset(cli, &space, &engine, false);
            let f7 = sweeps::fig7(&engine, &space, &sweep);
            emit_tables(
                cli,
                "crossval",
                &crossval::run(&data, &f7, opts.seed).tables(),
                None,
            );
        }
        "multicore" => {
            emit_tables(
                cli,
                "multicore",
                &[
                    multicore::run(&engine, opts.scale).table(),
                    multicore::validate(&engine, opts.scale).table(),
                ],
                None,
            );
        }
        "unseen" => {
            let data = dataset(cli, &space, &engine, false);
            emit_table(cli, "unseen", &unseen::run(&data, opts.seed).table());
        }
        "headline" => {
            let data = dataset(cli, &space, &engine, false);
            emit_table(
                cli,
                "headline",
                &headline::run(&engine, &data, &space, &sweep, opts.seed).table(),
            );
        }
        "all" => {
            emit_table(cli, "fig1", &fig1::run(&engine, opts.scale).table());
            emit_table(cli, "table1", &table1::run(&engine, opts.scale).table());
            let data = dataset(cli, &space, &engine, false);
            let suite = SurrogateSuite::train(&data, 0.2, opts.seed);
            emit_table(cli, "fig2", &accuracy::from_suite(&suite).table());
            emit_table(
                cli,
                "fig3",
                &importance::from_suite(&suite, "Fig. 3").table(),
            );
            // Half-size pinned datasets for the constrained figures.
            let mut pinned_opts = gen_opts.clone();
            pinned_opts.configs = (gen_opts.configs / 2).clamp(20, 1500);
            emit_table(
                cli,
                "fig4",
                &importance::fig45(&engine, &space, &pinned_opts, 128, opts.seed)
                    .unwrap_or_else(|e| fail(e))
                    .table(),
            );
            emit_table(
                cli,
                "fig5",
                &importance::fig45(&engine, &space, &pinned_opts, 2048, opts.seed)
                    .unwrap_or_else(|e| fail(e))
                    .table(),
            );
            let f6 = sweeps::fig6(&engine, &space, &sweep);
            let f7 = sweeps::fig7(&engine, &space, &sweep);
            let f8 = sweeps::fig8(&engine, &space, &sweep);
            emit_chart(cli, "fig6", &f6.table(), &f6.to_chart());
            emit_chart(cli, "fig7", &f7.table(), &f7.to_chart());
            emit_chart(cli, "fig8", &f8.table(), &f8.to_chart());
            emit_table(
                cli,
                "headline",
                &headline::from_parts(&suite, &f7, &f8).table(),
            );
            emit_table(cli, "unseen", &unseen::run(&data, opts.seed).table());
            emit_tables(
                cli,
                "multicore",
                &[
                    multicore::run(&engine, opts.scale).table(),
                    multicore::validate(&engine, opts.scale).table(),
                ],
                None,
            );
            emit_tables(
                cli,
                "crossval",
                &crossval::run(&data, &f7, opts.seed).tables(),
                None,
            );
        }
        e => {
            eprintln!("unknown experiment '{e}'");
            std::process::exit(2);
        }
    }
    if let Some(rs) = engine.backend().reuse_stats() {
        let lookups = rs.hits + rs.misses;
        eprintln!(
            "[repro] interval reuse: {}/{} lookups hit ({:.1}%), {} insertion(s), {} eviction(s)",
            rs.hits,
            lookups,
            100.0 * rs.hits as f64 / lookups.max(1) as f64,
            rs.insertions,
            rs.evictions
        );
    }
}

/// Run the surrogate-guided adaptive exploration loop (the `explore`
/// experiment). The candidate pool is `--configs` seeded STREAM design
/// points; the simulation budget defaults to a tenth of the pool. The
/// explorer streams its artifacts under `--out` itself; this wrapper
/// adds the per-chunk progress log, `--max-chunks` pause semantics, and
/// a final accuracy-vs-samples summary table.
fn explore(cli: &Cli, space: &ParamSpace, engine: &Engine) {
    let pool = cli.opts.configs.max(20);
    let budget = cli
        .explore_budget
        .unwrap_or_else(|| (pool / 10).max(8))
        .min(pool);
    let eopts = ExploreOptions {
        scale: cli.opts.scale,
        seed: cli.opts.seed,
        pool,
        budget,
        batch: budget.div_ceil(6).max(2),
        holdout: (pool / 6).clamp(10, 200),
        threads: cli.opts.threads,
        pareto: cli.explore_pareto,
        screen_factor: cli.explore_screen,
        ..ExploreOptions::for_app(App::Stream)
    };
    eprintln!(
        "[repro] {} exploration: pool {}, budget {} in {} round(s){} ...",
        if cli.resume { "resuming" } else { "running" },
        eopts.pool,
        eopts.budget,
        eopts.rounds(),
        if eopts.pareto { ", Pareto mode" } else { "" }
    );
    let mut chunks = 0usize;
    let max_chunks = cli.max_chunks;
    let mut observer = |p: &ExploreProgress| {
        eprintln!(
            "[repro]   round {}/{}: {}/{} jobs, {}/{} samples",
            p.round + 1,
            p.rounds,
            p.jobs_done,
            p.round_jobs,
            p.samples,
            p.budget
        );
        chunks += 1;
        max_chunks.is_none_or(|max| chunks < max)
    };
    let report = Explorer::new(engine, space, eopts, &cli.out)
        .unwrap_or_else(|e| fail(e))
        .run(ExploreControl {
            resume: cli.resume,
            observer: Some(&mut observer),
        })
        .unwrap_or_else(|e| fail(e));
    if !report.completed {
        eprintln!(
            "[repro] explore paused after {} round(s) with {} sample(s) (--max-chunks); \
             continue with --resume",
            report.rounds_done, report.samples
        );
        std::process::exit(0);
    }
    let rows: Vec<Vec<String>> = report
        .curve
        .iter()
        .map(|p| {
            vec![
                p.round.to_string(),
                p.samples.to_string(),
                format!("{:.3}", p.epsilon),
                format!("{:.4}", p.r2),
                format!("{:.0}", p.mae),
            ]
        })
        .collect();
    let table = Table::new(
        "Adaptive exploration: surrogate accuracy vs samples",
        &["round", "samples", "epsilon", "holdout R2", "holdout MAE"],
        rows,
    )
    .note(format!(
        "{} simulations selected from a {}-candidate pool; final holdout R2 {:.4}",
        report.samples,
        pool,
        report.final_r2()
    ));
    emit_table(cli, "explore_summary", &table);
}

/// Load the dataset CSV if present and complete, else generate it by
/// streaming rows to `<out>/dataset.csv` with a checkpoint after each
/// chunk. With `--resume` an interrupted campaign continues from its
/// checkpoint; the finished file is byte-identical to an uninterrupted
/// run. `force_regen` (the `dataset` experiment) always regenerates —
/// unless `--resume` is finishing an interrupted campaign.
fn dataset(cli: &Cli, space: &ParamSpace, engine: &Engine, force_regen: bool) -> DseDataset {
    let path = cli.out.join("dataset.csv");
    let ckpt = cli.out.join("dataset.ckpt");
    let resuming = cli.resume && ckpt.exists() && path.exists();

    if !force_regen && !resuming {
        if ckpt.exists() {
            eprintln!(
                "[repro] {} is incomplete (checkpoint present) — regenerating from scratch; \
                 pass --resume to continue it instead",
                path.display()
            );
        } else if let Ok(d) = DseDataset::load_csv(&path) {
            eprintln!(
                "[repro] loaded {} rows from {}",
                d.rows.len(),
                path.display()
            );
            return d;
        }
    }

    let gen_opts = cli.opts.gen_options();
    let plan = RunPlan::new(space, &gen_opts).unwrap_or_else(|e| fail(e));
    eprintln!(
        "[repro] {} dataset: {} configs x {} apps = {} jobs ...",
        if resuming { "resuming" } else { "generating" },
        plan.configs(),
        plan.apps().len(),
        plan.jobs()
    );
    let mut sink = if resuming {
        CsvSink::append(&path)
    } else {
        CsvSink::create(&path)
    }
    .unwrap_or_else(|e| fail(e));
    let mut metrics_sink = cli.metrics.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("create metrics directory");
        let mpath = dir.join("metrics.csv");
        if resuming && mpath.exists() {
            MetricsCsvSink::append(&mpath)
        } else {
            MetricsCsvSink::create(&mpath)
        }
        .unwrap_or_else(|e| fail(e))
    });
    let mut chunks = 0usize;
    let max_chunks = cli.max_chunks;
    let mut observer = |p: &Progress| {
        eprintln!(
            "[repro]   {}/{} jobs ({:.0}%), {} rows, {} discarded",
            p.jobs_done,
            p.total_jobs,
            100.0 * p.fraction(),
            p.rows,
            p.discarded
        );
        chunks += 1;
        max_chunks.is_none_or(|max| chunks < max)
    };
    let summary = engine
        .run_controlled(
            &plan,
            &mut sink,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: resuming,
                observer: Some(&mut observer),
                metrics: metrics_sink.as_mut().map(|m| m as &mut dyn MetricsSink),
                checkpoint_extra: None,
                ..RunControl::default()
            },
        )
        .unwrap_or_else(|e| fail(e));
    if !summary.completed {
        eprintln!(
            "[repro] paused after {} chunk(s) at job {}/{} (--max-chunks); continue with --resume",
            cli.max_chunks.unwrap_or(0),
            summary.jobs_done,
            summary.jobs
        );
        std::process::exit(0);
    }
    // Campaign complete: the checkpoint has served its purpose.
    std::fs::remove_file(&ckpt).ok();
    emit_table(cli, "discarded", &discarded_table(&sink.discarded));
    if summary.resumed_from > 0 {
        eprintln!("[repro] resumed from job {}", summary.resumed_from);
    }
    eprintln!(
        "[repro] saved {} rows to {}",
        sink.rows_written(),
        path.display()
    );
    let data = DseDataset::load_csv(&path).expect("reload the dataset just written");
    if let Some(dir) = &cli.metrics {
        emit_metrics_analysis(cli, dir, &data);
    }
    data
}

/// Load the streamed metrics CSV back, derive per-app bottleneck labels,
/// and cross-tabulate them against the surrogate's permutation
/// importances. Artifacts land in the metrics directory (not `--out`):
/// `bottleneck.{txt,csv,json}` next to `metrics.csv`.
fn emit_metrics_analysis(cli: &Cli, dir: &Path, data: &DseDataset) {
    let mpath = dir.join("metrics.csv");
    let table = match bottleneck::MetricsTable::load_csv(&mpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[repro] metrics analysis skipped: {e}");
            return;
        }
    };
    eprintln!(
        "[repro] {} metrics rows in {}",
        table.len(),
        mpath.display()
    );
    let suite = SurrogateSuite::train(data, 0.2, cli.opts.seed);
    let fig = importance::from_suite(&suite, "Fig. 3");
    let tables = bottleneck::run(&table, &fig).tables();
    let mut text = String::new();
    for t in &tables {
        text.push_str(&t.to_text());
        text.push('\n');
    }
    println!("{text}");
    let write = |ext: &str, body: &str| {
        std::fs::write(dir.join(format!("bottleneck.{ext}")), body)
            .expect("write metrics artifact");
    };
    write("txt", &text);
    let csv: Vec<String> = tables.iter().map(|t| t.to_csv()).collect();
    write("csv", &csv.join("\n"));
    write("json", &tables_to_json(&tables));
}

/// Persist one experiment table as `.txt` + `.csv` + `.json`.
fn emit_table(cli: &Cli, name: &str, table: &Table) {
    emit_tables(cli, name, std::slice::from_ref(table), None);
}

/// Persist a table with an ASCII chart appended to the text artifact.
fn emit_chart(cli: &Cli, name: &str, table: &Table, chart: &str) {
    emit_tables(cli, name, std::slice::from_ref(table), Some(chart));
}

/// Print an experiment's tables and persist them under the output
/// directory in all three formats: aligned text (`.txt`, diffable
/// against EXPERIMENTS.md), CSV (`.csv`), and JSON (`.json`).
fn emit_tables(cli: &Cli, name: &str, tables: &[Table], chart: Option<&str>) {
    let mut text = String::new();
    for t in tables {
        text.push_str(&t.to_text());
        if tables.len() > 1 {
            text.push('\n');
        }
    }
    if let Some(c) = chart {
        text.push('\n');
        text.push_str(c);
    }
    println!("{text}");
    let write = |ext: &str, body: &str| {
        let path = cli.out.join(format!("{name}.{ext}"));
        std::fs::write(&path, body).expect("write result file");
    };
    write("txt", &text);
    let csv: Vec<String> = tables.iter().map(|t| t.to_csv()).collect();
    write("csv", &csv.join("\n"));
    write("json", &tables_to_json(tables));
}

/// Print and persist a preformatted text artifact (`.txt` only).
fn emit_text(cli: &Cli, name: &str, text: &str) {
    println!("{text}");
    let path = cli.out.join(format!("{name}.txt"));
    std::fs::write(&path, text).expect("write result file");
}
