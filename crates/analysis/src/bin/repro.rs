//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--configs N] [--scale tiny|small|standard]
//!                    [--seed N] [--sweep-configs N] [--threads N]
//!                    [--out DIR]
//!
//! experiments:
//!   fig1      SVE fraction of retired instructions per vector length
//!   table1    simulated vs hardware-proxy cycles on the ThunderX2 baseline
//!   dataset   generate and save the design-space dataset (CSV)
//!   fig2      prediction-accuracy tolerance curves
//!   fig3      permutation feature importances (full space)
//!   fig4      importances with vector length fixed at 128
//!   fig5      importances with vector length fixed at 2048
//!   fig6      speedup vs vector length (STREAM, miniBUDE)
//!   fig7      speedup vs ROB size
//!   fig8      speedup vs FP/SVE register count
//!   headline  paper-vs-measured headline numbers
//!   unseen    extension: leave-one-app-out transfer accuracy
//!   multicore extension: slowdown under shared-DRAM contention
//!   crossval  extension: surrogate partial dependence vs fresh simulation
//!   summary   distribution/coverage summary of the cached dataset
//!   all       everything above, sharing one dataset
//! ```

use armdse_analysis::sweeps::SweepOptions;
use armdse_analysis::{accuracy, crossval, fig1, headline, importance, multicore, sweeps, table1, unseen, ExpOptions};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::{DseDataset, SurrogateSuite};
use armdse_kernels::{App, WorkloadScale};
use std::path::PathBuf;
use std::time::Instant;

struct Cli {
    experiment: String,
    opts: ExpOptions,
    out: PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut opts = ExpOptions::default();
    let mut out = PathBuf::from("results");
    while let Some(flag) = args.next() {
        let mut val = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--configs" => opts.configs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => opts.threads = val()?.parse().map_err(|e| format!("{e}"))?,
            "--sweep-configs" => {
                opts.sweep_configs = val()?.parse().map_err(|e| format!("{e}"))?
            }
            "--scale" => {
                opts.scale = match val()?.as_str() {
                    "tiny" => WorkloadScale::Tiny,
                    "small" => WorkloadScale::Small,
                    "standard" => WorkloadScale::Standard,
                    s => return Err(format!("unknown scale {s}")),
                }
            }
            "--out" => out = PathBuf::from(val()?),
            f => return Err(format!("unknown flag {f}")),
        }
    }
    Ok(Cli { experiment, opts, out })
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: repro <experiment> [--configs N] [--scale tiny|small|standard] [--seed N] [--sweep-configs N] [--threads N] [--out DIR]");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&cli.out).expect("create output directory");
    let t0 = Instant::now();
    run(&cli);
    eprintln!("[repro] {} finished in {:?}", cli.experiment, t0.elapsed());
}

fn run(cli: &Cli) {
    let space = ParamSpace::paper();
    let opts = &cli.opts;
    let sweep = SweepOptions {
        base_configs: opts.sweep_configs,
        scale: opts.scale,
        seed: opts.seed ^ 0x5EED_CAFE,
    };
    let gen_opts = GenOptions {
        configs: opts.configs,
        scale: opts.scale,
        seed: opts.seed,
        threads: opts.threads,
        apps: App::ALL.to_vec(),
    };

    match cli.experiment.as_str() {
        "fig1" => {
            emit(cli, "fig1", &fig1::run(opts.scale).to_table());
        }
        "table1" => {
            emit(cli, "table1", &table1::run(opts.scale).to_table());
        }
        "dataset" => {
            let data = dataset(cli, &space, &gen_opts, true);
            emit(cli, "dataset_summary", &data.summary().to_table());
        }
        "fig2" => {
            let data = dataset(cli, &space, &gen_opts, false);
            emit(cli, "fig2", &accuracy::run(&data, opts.seed).to_table());
        }
        "fig3" => {
            let data = dataset(cli, &space, &gen_opts, false);
            emit(cli, "fig3", &importance::fig3(&data, opts.seed).to_table());
        }
        "fig4" | "fig5" => {
            let vl = if cli.experiment == "fig4" { 128 } else { 2048 };
            let fig = importance::fig45(&space, &gen_opts, vl, opts.seed);
            emit(cli, &cli.experiment, &fig.to_table());
        }
        "fig6" => {
            let f = sweeps::fig6(&space, &sweep);
            emit(cli, "fig6", &format!("{}\n{}", f.to_table(), f.to_chart()));
        }
        "fig7" => {
            let f = sweeps::fig7(&space, &sweep);
            emit(cli, "fig7", &format!("{}\n{}", f.to_table(), f.to_chart()));
        }
        "fig8" => {
            let f = sweeps::fig8(&space, &sweep);
            emit(cli, "fig8", &format!("{}\n{}", f.to_table(), f.to_chart()));
        }
        "summary" => {
            let data = dataset(cli, &space, &gen_opts, false);
            emit(cli, "dataset_summary", &data.summary().to_table());
        }
        "crossval" => {
            let data = dataset(cli, &space, &gen_opts, false);
            let f7 = sweeps::fig7(&space, &sweep);
            emit(cli, "crossval", &crossval::run(&data, &f7, opts.seed).to_table());
        }
        "multicore" => {
            emit(cli, "multicore", &multicore::run(opts.scale).to_table());
        }
        "unseen" => {
            let data = dataset(cli, &space, &gen_opts, false);
            emit(cli, "unseen", &unseen::run(&data, opts.seed).to_table());
        }
        "headline" => {
            let data = dataset(cli, &space, &gen_opts, false);
            emit(
                cli,
                "headline",
                &headline::run(&data, &space, &sweep, opts.seed).to_table(),
            );
        }
        "all" => {
            emit(cli, "fig1", &fig1::run(opts.scale).to_table());
            emit(cli, "table1", &table1::run(opts.scale).to_table());
            let data = dataset(cli, &space, &gen_opts, false);
            let suite = SurrogateSuite::train(&data, 0.2, opts.seed);
            emit(cli, "fig2", &accuracy::from_suite(&suite).to_table());
            emit(cli, "fig3", &importance::from_suite(&suite, "Fig. 3").to_table());
            // Half-size pinned datasets for the constrained figures.
            let mut pinned_opts = gen_opts.clone();
            pinned_opts.configs = (gen_opts.configs / 2).clamp(20, 1500);
            emit(
                cli,
                "fig4",
                &importance::fig45(&space, &pinned_opts, 128, opts.seed).to_table(),
            );
            emit(
                cli,
                "fig5",
                &importance::fig45(&space, &pinned_opts, 2048, opts.seed).to_table(),
            );
            let f6 = sweeps::fig6(&space, &sweep);
            let f7 = sweeps::fig7(&space, &sweep);
            let f8 = sweeps::fig8(&space, &sweep);
            emit(cli, "fig6", &format!("{}\n{}", f6.to_table(), f6.to_chart()));
            emit(cli, "fig7", &format!("{}\n{}", f7.to_table(), f7.to_chart()));
            emit(cli, "fig8", &format!("{}\n{}", f8.to_table(), f8.to_chart()));
            emit(cli, "headline", &headline::from_parts(&suite, &f7, &f8).to_table());
            emit(cli, "unseen", &unseen::run(&data, opts.seed).to_table());
            emit(cli, "multicore", &multicore::run(opts.scale).to_table());
            emit(cli, "crossval", &crossval::run(&data, &f7, opts.seed).to_table());
        }
        e => {
            eprintln!("unknown experiment '{e}'");
            std::process::exit(2);
        }
    }
}

/// Load the dataset CSV if present, else generate it (and save when
/// `force_save`).
fn dataset(cli: &Cli, space: &ParamSpace, gen_opts: &GenOptions, force_save: bool) -> DseDataset {
    let path = cli.out.join("dataset.csv");
    if !force_save {
        if let Ok(d) = DseDataset::load_csv(&path) {
            eprintln!("[repro] loaded {} rows from {}", d.rows.len(), path.display());
            return d;
        }
    }
    eprintln!(
        "[repro] generating dataset: {} configs x {} apps ...",
        gen_opts.configs,
        gen_opts.apps.len()
    );
    let d = armdse_core::orchestrator::generate_dataset(space, gen_opts);
    d.save_csv(&path).expect("save dataset csv");
    eprintln!("[repro] saved {} rows to {}", d.rows.len(), path.display());
    d
}

/// Print a table and persist it under the output directory.
fn emit(cli: &Cli, name: &str, table: &str) {
    println!("{table}");
    let path = cli.out.join(format!("{name}.txt"));
    std::fs::write(&path, table).expect("write result file");
}
