//! Extension experiment: unseen-code prediction (the paper's stated
//! limitation, §VII).
//!
//! "This approach is still limited to applications the model has been
//! trained on, and cannot yet adapt to unseen codes as the model must
//! learn the characteristics of each code to accurately predict
//! otherwise."
//!
//! Protocol: each application's tree is trained on its own rows (80/20
//! split, exactly as the paper does), then asked to predict every *other*
//! application's cycles for the same configurations. Because the feature
//! vector carries no program information, the model can only reproduce
//! the cycle landscape of the code it was trained on; transfer accuracy
//! collapses, confirming the limitation and motivating the paper's
//! future-work direction of program-aware surrogates (Dubach et al.'s
//! architecture-centric models).

use crate::report;
use armdse_core::DseDataset;
use armdse_kernels::App;
use armdse_mltree::{mean_relative_accuracy, train_test_split, DecisionTreeRegressor, Regressor};

/// One source-model row of the transfer matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRow {
    /// App the model was trained on.
    pub trained_on: String,
    /// Accuracy (%) on the training app's held-out test split.
    pub in_distribution_pct: f64,
    /// Accuracy (%) per target app (training app included, full rows).
    pub per_target_pct: Vec<(String, f64)>,
}

/// The cross-application transfer matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct UnseenFig {
    /// One row per source model.
    pub rows: Vec<TransferRow>,
}

/// Run the cross-application transfer experiment over every
/// application present in `data` (a dataset generated over the
/// extended kernel set — SpMV, GEMM, Graph — widens the matrix
/// automatically).
pub fn run(data: &DseDataset, seed: u64) -> UnseenFig {
    let apps = data.apps();
    let rows = apps
        .iter()
        .map(|&source| {
            let ml = data.ml_dataset(source);
            let (train, test) = train_test_split(&ml, 0.2, seed);
            let tree = DecisionTreeRegressor::fit(&train.x, &train.y);
            let in_distribution_pct = mean_relative_accuracy(&tree.predict(&test.x), &test.y);

            let per_target_pct = apps
                .iter()
                .map(|&target| {
                    let t = data.ml_dataset(target);
                    (
                        target.name().to_string(),
                        mean_relative_accuracy(&tree.predict(&t.x), &t.y),
                    )
                })
                .collect();

            TransferRow {
                trained_on: source.name().to_string(),
                in_distribution_pct,
                per_target_pct,
            }
        })
        .collect();
    UnseenFig { rows }
}

impl UnseenFig {
    /// Transfer accuracy from a model trained on `source` to `target`.
    pub fn transfer(&self, source: App, target: App) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.trained_on == source.name())?
            .per_target_pct
            .iter()
            .find(|(t, _)| t == target.name())
            .map(|(_, p)| *p)
    }

    /// In-distribution accuracy of `source`'s model.
    pub fn in_distribution(&self, source: App) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.trained_on == source.name())
            .map(|r| r.in_distribution_pct)
    }

    /// The paper's limitation is confirmed when, for most models, every
    /// cross-application prediction is materially worse than the model's
    /// own in-distribution accuracy.
    pub fn limitation_confirmed(&self) -> bool {
        let confirmed = self
            .rows
            .iter()
            .filter(|r| {
                let worst_transfer = r
                    .per_target_pct
                    .iter()
                    .filter(|(t, _)| *t != r.trained_on)
                    .map(|(_, p)| *p)
                    .fold(f64::MAX, f64::min);
                worst_transfer + 10.0 < r.in_distribution_pct
            })
            .count();
        confirmed * 2 > self.rows.len()
    }

    /// Render the transfer matrix (rows = source model, cols = target).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured transfer matrix (rows = source, cols = target).
    pub fn table(&self) -> report::Table {
        let mut headers = vec!["Trained on".to_string(), "In-dist.".to_string()];
        let targets = self
            .rows
            .first()
            .map(|r| r.per_target_pct.as_slice())
            .unwrap_or_default();
        headers.extend(targets.iter().map(|(t, _)| format!("→ {t}")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.trained_on.clone(), report::pct(r.in_distribution_pct)];
                row.extend(r.per_target_pct.iter().map(|(_, p)| report::pct(*p)));
                row
            })
            .collect();
        report::Table::new(
            "Extension: cross-application transfer accuracy (paper §VII limitation)",
            &headers_ref,
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, ExpOptions};
    use armdse_core::engine::Engine;

    #[test]
    fn transfer_collapses_across_applications() {
        let mut opts = ExpOptions::quick();
        opts.configs = 80;
        let data = build_dataset(&Engine::idealized(), &opts).unwrap();
        let f = run(&data, 3);
        assert_eq!(f.rows.len(), 4);
        assert!(
            f.limitation_confirmed(),
            "cross-app prediction should be clearly worse: {f:#?}"
        );
        // A model asked about its own training app (full rows, including
        // rows it memorised) does far better than on a foreign app.
        let self_acc = f.transfer(App::Stream, App::Stream).unwrap();
        let cross_acc = f.transfer(App::Stream, App::MiniSweep).unwrap();
        assert!(self_acc > cross_acc, "{self_acc} !> {cross_acc}");
        let t = f.to_table();
        assert!(t.contains("Trained on"));
    }

    #[test]
    fn extended_kernels_widen_the_matrix() {
        // A dataset generated over the extended app set folds the new
        // kernels into the transfer matrix without any code changes.
        let mut opts = ExpOptions::quick();
        opts.configs = 30;
        opts.apps = App::EXTENDED.to_vec();
        let data = build_dataset(&Engine::idealized(), &opts).unwrap();
        let f = run(&data, 3);
        assert_eq!(f.rows.len(), App::EXTENDED.len());
        assert!(f.transfer(App::Spmv, App::Gemm).is_some());
        assert!(f.in_distribution(App::Graph).is_some());
        let t = f.to_table();
        for app in App::EXTENDED {
            assert!(t.contains(app.name()), "missing {}", app.name());
        }
    }
}
