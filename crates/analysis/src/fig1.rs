//! Fig. 1 — percentage of retired instructions that are SVE instructions
//! across vector lengths.
//!
//! The paper measures this by counting retired instructions with at least
//! one Z register operand in SimEng (validated against A64FX
//! `SVE_INST_RETIRED`). Here the workload generators define the
//! instruction stream, so the fraction is measured from the simulated
//! retirement stream and cross-checked against the analytic summary.

use crate::report;
use armdse_core::engine::Engine;
use armdse_core::DesignConfig;
use armdse_kernels::{App, WorkloadScale};

/// Vector lengths plotted in Fig. 1.
pub const VLS: [u32; 5] = [128, 256, 512, 1024, 2048];

/// Result: per app, per VL, the SVE percentage of retired instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// (app name, [(vl, sve %)]).
    pub series: Vec<(String, Vec<(u32, f64)>)>,
}

/// Run the experiment on `engine`. Uses the simulated retirement stream
/// on the ThunderX2 baseline (with bandwidth raised to admit every VL).
pub fn run(engine: &Engine, scale: WorkloadScale) -> Fig1 {
    let mut series = Vec::new();
    for app in App::ALL {
        let mut points = Vec::new();
        for vl in VLS {
            let mut cfg = DesignConfig::thunderx2();
            cfg.core.vector_length = vl;
            cfg.core.load_bandwidth = cfg.core.load_bandwidth.max(vl / 8);
            cfg.core.store_bandwidth = cfg.core.store_bandwidth.max(vl / 8);
            let stats = engine.simulate_config(app, scale, &cfg);
            assert!(stats.validated, "{app:?} vl={vl} failed validation");
            // Cross-check simulated vs analytic (they must agree exactly).
            debug_assert!(
                (stats.sve_fraction() - engine.workload(app, scale, vl).summary.sve_fraction())
                    .abs()
                    < 1e-12
            );
            points.push((vl, 100.0 * stats.sve_fraction()));
        }
        series.push((app.name().to_string(), points));
    }
    Fig1 { series }
}

impl Fig1 {
    /// Render the figure as a text table (rows = apps, columns = VLs).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact (rows = apps, columns = VLs).
    pub fn table(&self) -> report::Table {
        let mut headers = vec!["App".to_string()];
        headers.extend(VLS.iter().map(|v| format!("VL={v}")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(app, pts)| {
                let mut r = vec![app.clone()];
                r.extend(pts.iter().map(|(_, p)| report::pct(*p)));
                r
            })
            .collect();
        report::Table::new(
            "Fig. 1: % of retired instructions that are SVE instructions",
            &headers_ref,
            rows,
        )
    }

    /// SVE percentage for (app, vl).
    pub fn sve_pct(&self, app: App, vl: u32) -> Option<f64> {
        self.series
            .iter()
            .find(|(n, _)| n == app.name())?
            .1
            .iter()
            .find(|(v, _)| *v == vl)
            .map(|(_, p)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_matches_paper_shape() {
        let f = run(&Engine::idealized(), WorkloadScale::Tiny);
        for vl in [128, 2048] {
            assert!(f.sve_pct(App::Stream, vl).unwrap() > 40.0);
            assert!(f.sve_pct(App::MiniBude, vl).unwrap() > 40.0);
            assert!(f.sve_pct(App::TeaLeaf, vl).unwrap() < 15.0);
            assert!(f.sve_pct(App::MiniSweep, vl).unwrap() < 1.0);
        }
    }

    #[test]
    fn table_renders_all_apps() {
        let f = run(&Engine::idealized(), WorkloadScale::Tiny);
        let t = f.to_table();
        for app in App::ALL {
            assert!(t.contains(app.name()), "{t}");
        }
    }
}
