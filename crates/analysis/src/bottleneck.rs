//! Counter-derived bottleneck labels cross-tabulated against surrogate
//! feature importances.
//!
//! The paper reads its decision trees *statistically*: permutation
//! importance says which design-space feature the surrogate leans on.
//! The observability layer gives an independent, *mechanistic* answer:
//! the exclusive cycle-attribution buckets (`stall_*` columns of the
//! metrics CSV, see `docs/METRICS.md`) say where cycles actually went.
//! This module joins the two. For every application it derives a
//! bottleneck label (the dominant stall bucket over all campaign jobs),
//! maps that bucket to the design-space features that govern it
//! ([`bucket_features`]), and checks whether the surrogate's top
//! importances agree — a disagreement flags either a surrogate
//! artefact or a mis-modelled mechanism, which is exactly what the
//! paper's validation section is after.
//!
//! Everything here is driven by the CSV *header*, not fixed column
//! offsets, so the analysis keeps working on metrics files written by
//! older campaigns (or after a checkpoint resume) as long as the
//! column names are present.

use crate::importance::ImportanceFig;
use crate::report::{self, Table};
use armdse_core::ArmdseError;
use armdse_kernels::App;
use std::path::Path;

/// A loaded metrics CSV: header-indexed numeric columns plus the app
/// and validated identity columns.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTable {
    /// Column names, in file order.
    pub columns: Vec<String>,
    /// Per-row application (the `app` column).
    pub apps: Vec<App>,
    /// Per-row validation flag (the `validated` column).
    pub validated: Vec<bool>,
    /// Numeric cells, `values[row][col]` (the `app` column parses as 0).
    pub values: Vec<Vec<u64>>,
}

impl MetricsTable {
    /// Load a metrics CSV written by `armdse_core::metrics`.
    ///
    /// Multicore campaigns interleave per-core detail rows (non-empty
    /// `core` cell) with the per-job aggregates; only the aggregates are
    /// loaded here — the analysis attributes cycles per *job*, and
    /// keeping the detail rows would double-count every counter. Files
    /// without a `core` column (pre-multicore campaigns) load as before.
    pub fn load_csv(path: &Path) -> Result<MetricsTable, ArmdseError> {
        let body = std::fs::read_to_string(path)?;
        let mut lines = body.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad(path, "empty metrics file"))?;
        let columns: Vec<String> = header.split(',').map(str::to_string).collect();
        let app_col = columns
            .iter()
            .position(|c| c == "app")
            .ok_or_else(|| bad(path, "missing 'app' column"))?;
        let core_col = columns.iter().position(|c| c == "core");
        let val_col = columns
            .iter()
            .position(|c| c == "validated")
            .ok_or_else(|| bad(path, "missing 'validated' column"))?;
        let mut t = MetricsTable {
            columns,
            apps: Vec::new(),
            validated: Vec::new(),
            values: Vec::new(),
        };
        for (lineno, line) in lines.enumerate() {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != t.columns.len() {
                return Err(bad(
                    path,
                    &format!(
                        "row {}: {} cells, expected {}",
                        lineno + 2,
                        cells.len(),
                        t.columns.len()
                    ),
                ));
            }
            let app = App::parse(cells[app_col])
                .ok_or_else(|| bad(path, &format!("unknown app '{}'", cells[app_col])))?;
            if core_col.is_some_and(|c| !cells[c].is_empty()) {
                continue; // per-core detail row: aggregates only
            }
            let mut row = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                if i == app_col || Some(i) == core_col {
                    row.push(0);
                } else {
                    row.push(cell.parse::<u64>().map_err(|_| {
                        bad(
                            path,
                            &format!(
                                "row {}: unparsable '{}' in {}",
                                lineno + 2,
                                cell,
                                t.columns[i]
                            ),
                        )
                    })?);
                }
            }
            t.apps.push(app);
            t.validated.push(row[val_col] != 0);
            t.values.push(row);
        }
        Ok(t)
    }

    /// Index of a named column.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Indices of the exclusive stall-attribution columns, in bucket
    /// (i.e. file) order.
    pub fn stall_cols(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].starts_with("stall_"))
            .collect()
    }

    /// Number of rows (jobs).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of column `col` over all rows of `app`.
    fn app_sum(&self, app: App, col: usize) -> u64 {
        self.values
            .iter()
            .zip(&self.apps)
            .filter(|(_, a)| **a == app)
            .map(|(row, _)| row[col])
            .sum()
    }

    /// Per-app dominant stall bucket over summed cycles: the bottleneck
    /// label. Ties break toward the earlier (front-of-pipe) bucket,
    /// matching `Counters::dominant_stall`. `None` if the app has no
    /// rows or never stalled.
    pub fn bottleneck_of(&self, app: App) -> Option<(String, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for c in self.stall_cols() {
            let s = self.app_sum(app, c);
            if s > 0 && best.is_none_or(|(_, b)| s > b) {
                best = Some((c, s));
            }
        }
        best.map(|(c, s)| (self.columns[c].clone(), s))
    }

    /// Applications present in the table, in [`App::EXTENDED`] order
    /// (the paper's four first, then the extension kernels).
    pub fn apps_present(&self) -> Vec<App> {
        App::EXTENDED
            .into_iter()
            .filter(|a| self.apps.contains(a))
            .collect()
    }
}

fn bad(path: &Path, what: &str) -> ArmdseError {
    ArmdseError::InvalidPlan(format!("{}: {what}", path.display()))
}

/// Design-space features that govern a stall bucket: the mechanistic
/// side of the cross-tabulation. An empty slice means the bucket has no
/// single governing feature (e.g. `stall_dependency` is a program
/// property, not a design-space knob).
pub fn bucket_features(bucket: &str) -> &'static [&'static str] {
    match bucket {
        "stall_fetch_starved" | "stall_frontend_latency" => {
            &["Fetch-Block-Size", "Loop-Buffer-Size", "Frontend-Width"]
        }
        "stall_rename_free_list" => &[
            "GP-Registers",
            "FP-SVE-Registers",
            "Predicate-Registers",
            "Conditional-Registers",
        ],
        "stall_rob_full" => &["ROB-Size", "Commit-Width"],
        "stall_rs_full" => &["Frontend-Width", "Commit-Width"],
        "stall_lq_full" => &["Load-Queue-Size"],
        "stall_sq_full" => &["Store-Queue-Size"],
        "stall_issue_bandwidth" => &["Frontend-Width", "Commit-Width"],
        "stall_exec_latency" => &["Vector-Length"],
        "stall_mem_request_cap" => &[
            "Mem-Requests-Per-Cycle",
            "Loads-Per-Cycle",
            "Stores-Per-Cycle",
            "Load-Bandwidth",
            "Store-Bandwidth",
        ],
        "stall_mem_store_hazard" => &["Store-Queue-Size", "L1-Latency"],
        "stall_mem_data" => &[
            "L1-Latency",
            "L1-Size",
            "L1-Clock",
            "L2-Latency",
            "L2-Size",
            "L2-Clock",
            "RAM-Latency",
            "RAM-Clock",
            "Cache-Line-Width",
            "Prefetch-Depth",
        ],
        "stall_lsq_completion" => &["LSQ-Completion-Width"],
        "stall_drain" => &["Store-Bandwidth"],
        _ => &[],
    }
}

/// The bottleneck report: cycle-accounting shares and the
/// importance cross-tabulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    accounting: Table,
    cross: Table,
}

impl BottleneckReport {
    /// Both artifacts, accounting first.
    pub fn tables(&self) -> Vec<Table> {
        vec![self.accounting.clone(), self.cross.clone()]
    }
}

/// Build the report from a loaded metrics table and the surrogate's
/// permutation importances (same dataset, same campaign).
pub fn run(metrics: &MetricsTable, fig: &ImportanceFig) -> BottleneckReport {
    BottleneckReport {
        accounting: accounting_table(metrics),
        cross: cross_table(metrics, fig),
    }
}

/// Per-application cycle-accounting shares: how the campaign's cycles
/// split between retirement and the top stall buckets.
pub fn accounting_table(metrics: &MetricsTable) -> Table {
    let cycles_col = metrics.col("cycles");
    let stall_cols = metrics.stall_cols();
    let retire_cols: Vec<usize> = (0..metrics.columns.len())
        .filter(|&i| metrics.columns[i].starts_with("retire_"))
        .collect();
    let mut rows = Vec::new();
    for app in metrics.apps_present() {
        let jobs = metrics.apps.iter().filter(|a| **a == app).count();
        let cycles: u64 = cycles_col.map_or(0, |c| metrics.app_sum(app, c));
        let retire: u64 = retire_cols.iter().map(|&c| metrics.app_sum(app, c)).sum();
        // Top two stall buckets by summed cycles.
        let mut stalls: Vec<(usize, u64)> = stall_cols
            .iter()
            .map(|&c| (c, metrics.app_sum(app, c)))
            .filter(|(_, s)| *s > 0)
            .collect();
        stalls.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let share = |n: u64| {
            if cycles == 0 {
                "-".to_string()
            } else {
                report::pct(100.0 * n as f64 / cycles as f64)
            }
        };
        let top = |i: usize| {
            stalls.get(i).map_or("-".to_string(), |(c, s)| {
                format!("{} ({})", metrics.columns[*c], share(*s))
            })
        };
        rows.push(vec![
            app.name().to_string(),
            jobs.to_string(),
            cycles.to_string(),
            share(retire),
            top(0),
            top(1),
        ]);
    }
    Table::new(
        "Cycle accounting per application (summed over campaign jobs)",
        &[
            "App",
            "Jobs",
            "Cycles",
            "Retiring",
            "Top stall",
            "2nd stall",
        ],
        rows,
    )
    .note("Shares are of total attributed cycles; buckets are exclusive (docs/METRICS.md).")
}

/// Per-application cross-tabulation: counter-derived bottleneck vs the
/// surrogate's top permutation importances.
pub fn cross_table(metrics: &MetricsTable, fig: &ImportanceFig) -> Table {
    let cycles_col = metrics.col("cycles");
    let mut rows = Vec::new();
    let mut agreements = 0usize;
    let mut labelled = 0usize;
    for app in metrics.apps_present() {
        let (bucket, stall_cycles) = match metrics.bottleneck_of(app) {
            Some(b) => b,
            None => continue,
        };
        let cycles: u64 = cycles_col.map_or(0, |c| metrics.app_sum(app, c));
        let share = if cycles == 0 {
            "-".to_string()
        } else {
            report::pct(100.0 * stall_cycles as f64 / cycles as f64)
        };
        let candidates = bucket_features(&bucket);
        // The surrogate's top-3 features for this app.
        let top3: Vec<String> = fig
            .per_app
            .iter()
            .find(|(a, _)| a == app.name())
            .map(|(_, fs)| fs.iter().take(3).map(|(f, _)| f.clone()).collect())
            .unwrap_or_default();
        // Best-ranked candidate feature and its importance.
        let best_candidate = candidates
            .iter()
            .filter_map(|f| fig.percent_of(app, f).map(|p| (*f, p)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let agree = !candidates.is_empty() && top3.iter().any(|t| candidates.contains(&t.as_str()));
        labelled += 1;
        if agree {
            agreements += 1;
        }
        rows.push(vec![
            app.name().to_string(),
            bucket,
            share,
            best_candidate.map_or("-".to_string(), |(f, p)| {
                format!("{f} ({})", report::pct(p))
            }),
            top3.first().cloned().unwrap_or_else(|| "-".to_string()),
            if candidates.is_empty() {
                "n/a".to_string()
            } else if agree {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    Table::new(
        "Bottleneck label vs surrogate importance",
        &[
            "App",
            "Dominant stall",
            "Share",
            "Best governed feature",
            "Top importance",
            "Agree",
        ],
        rows,
    )
    .note(format!(
        "{agreements}/{labelled} apps: a feature governing the dominant stall ranks in the \
         surrogate's top-3 importances."
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_csv() -> std::path::PathBuf {
        let path = std::env::temp_dir().join("armdse_bottleneck_toy.csv");
        std::fs::write(
            &path,
            "job,config_index,app,validated,cycles,retire_scalar,stall_rob_full,stall_mem_data\n\
             0,0,STREAM,1,100,40,10,50\n\
             1,0,TeaLeaf,1,80,60,15,5\n\
             2,1,STREAM,0,120,30,20,70\n",
        )
        .unwrap();
        path
    }

    fn toy_fig() -> ImportanceFig {
        ImportanceFig {
            label: "t".into(),
            per_app: vec![
                (
                    "STREAM".into(),
                    vec![
                        ("RAM-Latency".into(), 40.0),
                        ("Vector-Length".into(), 30.0),
                        ("ROB-Size".into(), 5.0),
                    ],
                ),
                (
                    "TeaLeaf".into(),
                    vec![
                        ("Vector-Length".into(), 50.0),
                        ("L1-Size".into(), 10.0),
                        ("GP-Registers".into(), 8.0),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn load_is_header_driven_and_typed() {
        let path = toy_csv();
        let t = MetricsTable::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t.len(), 3);
        assert_eq!(t.apps, [App::Stream, App::TeaLeaf, App::Stream]);
        assert_eq!(t.validated, [true, true, false]);
        assert_eq!(t.stall_cols().len(), 2);
        let c = t.col("stall_mem_data").unwrap();
        assert_eq!(t.values[0][c], 50);
    }

    #[test]
    fn bottleneck_is_the_summed_argmax() {
        let path = toy_csv();
        let t = MetricsTable::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // STREAM: rob_full 10+20=30, mem_data 50+70=120.
        assert_eq!(
            t.bottleneck_of(App::Stream),
            Some(("stall_mem_data".to_string(), 120))
        );
        // TeaLeaf: rob_full 15 beats mem_data 5.
        assert_eq!(
            t.bottleneck_of(App::TeaLeaf),
            Some(("stall_rob_full".to_string(), 15))
        );
        assert_eq!(t.bottleneck_of(App::MiniSweep), None);
    }

    #[test]
    fn every_stall_bucket_maps_to_known_features() {
        use armdse_core::space::FEATURE_NAMES;
        use armdse_simcore::CycleBucket;
        for b in CycleBucket::ALL {
            if b.is_retire() {
                continue;
            }
            for f in bucket_features(b.name()) {
                assert!(
                    FEATURE_NAMES.contains(f),
                    "{}: unknown feature {f}",
                    b.name()
                );
            }
        }
        // The program-property bucket intentionally maps to nothing.
        assert!(bucket_features("stall_dependency").is_empty());
        assert!(bucket_features("no_such_bucket").is_empty());
    }

    #[test]
    fn cross_tab_reports_agreement() {
        let path = toy_csv();
        let t = MetricsTable::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let r = run(&t, &toy_fig());
        let tables = r.tables();
        assert_eq!(tables.len(), 2);
        let cross = &tables[1];
        // STREAM is mem_data-bound and RAM-Latency tops its importances.
        let stream = cross.rows.iter().find(|r| r[0] == "STREAM").unwrap();
        assert_eq!(stream[1], "stall_mem_data");
        assert_eq!(stream[5], "yes");
        // TeaLeaf is rob_full-bound but ROB-Size is nowhere in its top-3.
        let tea = cross.rows.iter().find(|r| r[0] == "TeaLeaf").unwrap();
        assert_eq!(tea[5], "no");
        assert!(cross.notes[0].contains("1/2"));
    }

    #[test]
    fn accounting_table_shares_are_of_cycles() {
        let path = toy_csv();
        let t = MetricsTable::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let table = accounting_table(&t);
        let stream = table.rows.iter().find(|r| r[0] == "STREAM").unwrap();
        assert_eq!(stream[1], "2"); // jobs
        assert_eq!(stream[2], "220"); // cycles
        assert!(stream[4].starts_with("stall_mem_data"));
    }

    #[test]
    fn per_core_detail_rows_are_skipped() {
        // A multicore metrics file interleaves the aggregate (empty
        // `core` cell) with per-core detail; only aggregates load.
        let path = std::env::temp_dir().join("armdse_bottleneck_multicore.csv");
        std::fs::write(
            &path,
            "job,config_index,app,core,validated,cycles,stall_mem_data\n\
             0,0,STREAM,,1,100,60\n\
             0,0,STREAM,0,1,90,30\n\
             0,0,STREAM,1,1,100,30\n\
             1,0,SpMV,,1,50,20\n",
        )
        .unwrap();
        let t = MetricsTable::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t.len(), 2, "aggregate rows only");
        assert_eq!(t.apps, [App::Stream, App::Spmv]);
        // Counters come from the aggregate, not a double-counted sum.
        assert_eq!(
            t.bottleneck_of(App::Stream),
            Some(("stall_mem_data".to_string(), 60))
        );
        assert_eq!(t.apps_present(), [App::Stream, App::Spmv]);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let path = std::env::temp_dir().join("armdse_bottleneck_bad.csv");
        std::fs::write(&path, "job,app,validated\n1,STREAM\n").unwrap();
        assert!(MetricsTable::load_csv(&path).is_err());
        std::fs::write(&path, "job,app,validated\nx,STREAM,1\n").unwrap();
        assert!(MetricsTable::load_csv(&path).is_err());
        std::fs::write(&path, "job,app,validated\n1,NOPE,1\n").unwrap();
        assert!(MetricsTable::load_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
