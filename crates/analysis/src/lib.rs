//! # armdse-analysis — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — SVE fraction of retired instructions per VL per app |
//! | [`table1`] | Table I — simulated vs (proxy-)hardware cycles, ThunderX2 baseline |
//! | [`accuracy`] | Fig. 2 — % of predictions within confidence intervals |
//! | [`importance`] | Figs. 3/4/5 — permutation feature importances (free / VL=128 / VL=2048) |
//! | [`sweeps`] | Figs. 6/7/8 — speedup vs vector length / ROB size / FP registers |
//! | [`headline`] | §VI headline numbers — mean accuracy, VL weighting, ROB & FP-reg knees |
//! | [`unseen`] | Extension: leave-one-app-out transfer (the paper's §VII limitation) |
//! | [`multicore`] | Extension: shared-DRAM contention (the paper's §VII future work) |
//! | [`crossval`] | Extension: surrogate partial dependence vs fresh simulation |
//!
//! [`plot`] renders any figure's data as ASCII bar/line charts (the
//! artifact's `graph-generation.py` stand-in).
//!
//! Each experiment returns a structured result that renders to an aligned
//! text table (and CSV rows) so `repro <experiment>` output can be diffed
//! against EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod accuracy;
pub mod bottleneck;
pub mod crossval;
pub mod fig1;
pub mod headline;
pub mod importance;
pub mod multicore;
pub mod plot;
pub mod report;
pub mod sweeps;
pub mod table1;
pub mod unseen;

use armdse_core::engine::{Engine, RunPlan};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::{ArmdseError, DseDataset};
use armdse_kernels::{App, WorkloadScale};

/// Shared experiment options.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Design points sampled for dataset-driven experiments.
    pub configs: usize,
    /// Workload input scale.
    pub scale: WorkloadScale,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for dataset generation.
    pub threads: usize,
    /// Base design points per sweep experiment (each is re-simulated at
    /// every sweep value, paired-sample style).
    pub sweep_configs: usize,
    /// Applications included in dataset-driven experiments. Defaults to
    /// the paper's four ([`App::ALL`]); switch to [`App::EXTENDED`] to
    /// fold the SpMV/GEMM/Graph kernels into the dataset and every
    /// experiment that derives its app set from it.
    pub apps: Vec<App>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            configs: 400,
            scale: WorkloadScale::Standard,
            seed: 20240931, // arbitrary fixed seed for reproducibility
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sweep_configs: 12,
            apps: App::ALL.to_vec(),
        }
    }
}

impl ExpOptions {
    /// A reduced option set for fast tests and benches.
    pub fn quick() -> ExpOptions {
        ExpOptions {
            configs: 40,
            scale: WorkloadScale::Tiny,
            seed: 7,
            threads: 2,
            sweep_configs: 4,
            apps: App::ALL.to_vec(),
        }
    }
}

impl ExpOptions {
    /// The dataset-generation options these experiment options imply.
    pub fn gen_options(&self) -> GenOptions {
        GenOptions {
            configs: self.configs,
            scale: self.scale,
            seed: self.seed,
            threads: self.threads,
            apps: self.apps.clone(),
        }
    }
}

/// Generate (or regenerate) the shared dataset used by the model-driven
/// experiments (Figs. 2/3 and the headline numbers) on `engine`,
/// sharing its workload cache with every other experiment in the
/// process.
pub fn build_dataset(engine: &Engine, opts: &ExpOptions) -> Result<DseDataset, ArmdseError> {
    let plan = RunPlan::new(&ParamSpace::paper(), &opts.gen_options())?;
    let mut data = DseDataset::default();
    engine.run(&plan, &mut data)?;
    Ok(data)
}
