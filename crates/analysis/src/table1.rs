//! Table I — simulated single-core cycles compared to hardware cycles on
//! the ThunderX2 baseline.
//!
//! The paper compares SimEng+SST against a physical Marvell ThunderX2
//! node. We have no hardware, so the "hardware" side is played by the
//! finite-banked, prefetch-free proxy model (see DESIGN.md substitution
//! table); what this experiment preserves is the *validation procedure*
//! and the per-application, access-pattern-dependent error structure the
//! paper reports.

use crate::report;
use armdse_core::engine::Engine;
use armdse_core::DesignConfig;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::BankedProxy;

/// The paper's published Table I values (for EXPERIMENTS.md comparison).
pub const PAPER_TABLE1: [(&str, u64, u64, f64); 4] = [
    ("STREAM", 25_078_088, 26_665_221, 5.95),
    ("MiniBude", 42_436_227, 48_778_524, 13.05),
    ("TeaLeaf", 19_966_725, 14_607_184, 36.69),
    ("MiniSweep", 6_529_912, 10_374_617, 37.05),
];

/// One validation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Application name.
    pub app: String,
    /// Cycles on the default (SST-like) hierarchy.
    pub simulated_cycles: u64,
    /// Cycles on the hardware-proxy hierarchy.
    pub hardware_cycles: u64,
    /// Percentage difference `|sim - hw| / hw`.
    pub pct_difference: f64,
}

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// One row per application.
    pub rows: Vec<ValidationRow>,
}

/// Run the validation experiment on the ThunderX2 baseline. The
/// "hardware" column runs the same cached workloads through the
/// finite-banked [`BankedProxy`] backend on the same engine.
pub fn run(engine: &Engine, scale: WorkloadScale) -> Table1 {
    let cfg = DesignConfig::thunderx2();
    let rows = App::ALL
        .iter()
        .map(|&app| {
            let sim = engine.simulate_config(app, scale, &cfg);
            let hw = engine.simulate_config_on(&BankedProxy, app, scale, &cfg);
            assert!(sim.validated && hw.validated, "{app:?} failed validation");
            let diff = 100.0 * (sim.cycles as f64 - hw.cycles as f64).abs() / hw.cycles as f64;
            ValidationRow {
                app: app.name().to_string(),
                simulated_cycles: sim.cycles,
                hardware_cycles: hw.cycles,
                pct_difference: diff,
            }
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Render as a text table mirroring the paper's layout.
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact mirroring the paper's layout.
    pub fn table(&self) -> report::Table {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.simulated_cycles.to_string(),
                    r.hardware_cycles.to_string(),
                    report::pct(r.pct_difference),
                ]
            })
            .collect();
        report::Table::new(
            "Table I: simulated vs hardware-proxy cycles (ThunderX2 baseline)",
            &["App", "Simulated Cycles", "Hardware Cycles", "% Difference"],
            rows,
        )
    }

    /// Mean absolute percentage difference across apps.
    pub fn mean_pct_difference(&self) -> f64 {
        self.rows.iter().map(|r| r.pct_difference).sum::<f64>() / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows_with_nonzero_divergence() {
        let t = run(&Engine::idealized(), WorkloadScale::Tiny);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert!(r.simulated_cycles > 0 && r.hardware_cycles > 0);
        }
        // The proxy must diverge somewhere (else it isn't a proxy).
        assert!(t.rows.iter().any(|r| r.pct_difference > 0.1));
    }

    #[test]
    fn divergence_in_papers_order_of_magnitude() {
        // The paper sees 6%–37%; we only require the same order: below 60%
        // everywhere at Small scale.
        let t = run(&Engine::idealized(), WorkloadScale::Small);
        for r in &t.rows {
            assert!(
                r.pct_difference < 60.0,
                "{}: {}% divergence is out of band",
                r.app,
                r.pct_difference
            );
        }
    }

    #[test]
    fn table_mentions_every_app() {
        let t = run(&Engine::idealized(), WorkloadScale::Tiny).to_table();
        for (app, ..) in PAPER_TABLE1 {
            assert!(t.contains(app));
        }
    }
}
