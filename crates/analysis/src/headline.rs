//! §VI headline numbers: the paper's four quotable results.
//!
//! 1. Mean prediction accuracy 93.38% across applications.
//! 2. Vector length carries the largest performance weighting
//!    (25.91% of the summed importance).
//! 3. ROB sizes beyond ~152 yield minimal further improvement.
//! 4. FP/SVE register counts below ~144 bottleneck register rename.

use crate::report;
use crate::sweeps::{SweepFig, SweepOptions};
use armdse_core::engine::Engine;
use armdse_core::space::ParamSpace;
use armdse_core::{DseDataset, SurrogateSuite};
use armdse_kernels::App;

/// The reproduced headline numbers beside the paper's.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Mean accuracy across per-app models (paper: 93.38%).
    pub mean_accuracy_pct: f64,
    /// Mean importance % of vector length across apps (paper: 25.91%).
    pub vl_importance_pct: f64,
    /// Rank of vector length among the 30 features by mean importance
    /// (paper: 1st).
    pub vl_rank: usize,
    /// ROB knee: smallest ROB reaching 90% of peak speedup, worst app
    /// (paper: 152).
    pub rob_knee: u32,
    /// FP/SVE register knee at 90% of peak speedup, worst app
    /// (paper: 144).
    pub fp_knee: u32,
}

/// Compute the headline numbers from a trained suite plus the two sweeps.
pub fn run(
    engine: &Engine,
    data: &DseDataset,
    space: &ParamSpace,
    sweep_opts: &SweepOptions,
    seed: u64,
) -> Headline {
    let suite = SurrogateSuite::train(data, 0.2, seed);
    let fig7 = crate::sweeps::fig7(engine, space, sweep_opts);
    let fig8 = crate::sweeps::fig8(engine, space, sweep_opts);
    from_parts(&suite, &fig7, &fig8)
}

/// Assemble from precomputed parts (used by `repro all` to avoid
/// recomputation).
pub fn from_parts(suite: &SurrogateSuite, fig7: &SweepFig, fig8: &SweepFig) -> Headline {
    let vl = suite.mean_importance_pct("Vector-Length");
    // Rank vector length among all features by mean importance.
    let mut means: Vec<(String, f64)> = armdse_core::config::FEATURE_NAMES
        .iter()
        .map(|&n| (n.to_string(), suite.mean_importance_pct(n)))
        .collect();
    means.sort_by(|a, b| b.1.total_cmp(&a.1));
    let vl_rank = means
        .iter()
        .position(|(n, _)| n == "Vector-Length")
        .expect("vector length present")
        + 1;

    let worst_knee = |fig: &SweepFig| {
        App::ALL
            .iter()
            .filter_map(|&a| fig.knee(a, 0.9))
            .max()
            .expect("knee for some app")
    };

    Headline {
        mean_accuracy_pct: suite.mean_accuracy_pct(),
        vl_importance_pct: vl,
        vl_rank,
        rob_knee: worst_knee(fig7),
        fp_knee: worst_knee(fig8),
    }
}

impl Headline {
    /// Render as a paper-vs-measured table.
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured paper-vs-measured artifact.
    pub fn table(&self) -> report::Table {
        let rows = vec![
            vec![
                "Mean prediction accuracy".to_string(),
                "93.38%".to_string(),
                report::pct(self.mean_accuracy_pct),
            ],
            vec![
                "Vector-length importance share".to_string(),
                "25.91%".to_string(),
                report::pct(self.vl_importance_pct),
            ],
            vec![
                "Vector-length importance rank".to_string(),
                "1".to_string(),
                self.vl_rank.to_string(),
            ],
            vec![
                "ROB saturation knee".to_string(),
                "152".to_string(),
                self.rob_knee.to_string(),
            ],
            vec![
                "FP/SVE register knee".to_string(),
                "144".to_string(),
                self.fp_knee.to_string(),
            ],
        ];
        report::Table::new(
            "Headline results (paper vs this reproduction)",
            &["Quantity", "Paper", "Measured"],
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, ExpOptions};
    use armdse_kernels::WorkloadScale;

    #[test]
    fn headline_computes_and_renders() {
        let engine = Engine::idealized();
        let opts = ExpOptions::quick();
        let data = build_dataset(&engine, &opts).unwrap();
        let sweep = SweepOptions {
            base_configs: 3,
            scale: WorkloadScale::Tiny,
            seed: 13,
        };
        let h = run(&engine, &data, &ParamSpace::paper(), &sweep, 3);
        assert!(h.mean_accuracy_pct > 0.0);
        assert!((1..=30).contains(&h.vl_rank));
        assert!(h.rob_knee >= 8 && h.rob_knee <= 512);
        assert!(h.fp_knee >= 38 && h.fp_knee <= 512);
        let t = h.to_table();
        assert!(t.contains("93.38%") && t.contains("25.91%"));
    }
}
