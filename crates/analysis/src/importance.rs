//! Figs. 3, 4, 5 — permutation feature importance percentages.
//!
//! * Fig. 3: importances on the full design space.
//! * Fig. 4: importances with vector length constrained to 128 bits.
//! * Fig. 5: importances with vector length constrained to 2048 bits.
//!
//! The constrained variants answer the paper's question: "to ensure a
//! fair comparison of other features we also analyse the importance of
//! all other features when vector length is constrained."

use crate::report;
use armdse_core::engine::{Engine, RunPlan};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::{ArmdseError, DseDataset, SurrogateSuite};
use armdse_kernels::App;

/// Number of features shown per app (the paper plots the top ten).
pub const TOP_K: usize = 10;

/// Importance percentages for every app.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceFig {
    /// Figure label ("Fig. 3" / "Fig. 4" / "Fig. 5").
    pub label: String,
    /// (app, [(feature, importance %)]) — full set, descending by mean.
    pub per_app: Vec<(String, Vec<(String, f64)>)>,
}

/// Fig. 3: train on the full-space dataset and rank importances.
pub fn fig3(data: &DseDataset, seed: u64) -> ImportanceFig {
    let suite = SurrogateSuite::train(data, 0.2, seed);
    from_suite(&suite, "Fig. 3")
}

/// Figs. 4/5: generate a dataset with vector length pinned, then train
/// and rank. `vl` is 128 for Fig. 4 and 2048 for Fig. 5.
pub fn fig45(
    engine: &Engine,
    space: &ParamSpace,
    opts: &GenOptions,
    vl: u32,
    seed: u64,
) -> Result<ImportanceFig, ArmdseError> {
    let plan = RunPlan::pinned(space, opts, &[("Vector-Length", f64::from(vl))])?;
    let mut data = DseDataset::default();
    engine.run(&plan, &mut data)?;
    let suite = SurrogateSuite::train(&data, 0.2, seed);
    let label = if vl == 128 {
        "Fig. 4 (VL=128)"
    } else {
        "Fig. 5 (VL=2048)"
    };
    Ok(from_suite(&suite, label))
}

/// Build the figure from a trained suite.
pub fn from_suite(suite: &SurrogateSuite, label: &str) -> ImportanceFig {
    ImportanceFig {
        label: label.to_string(),
        per_app: suite
            .models
            .iter()
            .map(|m| {
                (
                    m.app.name().to_string(),
                    m.importance
                        .ranked()
                        .iter()
                        .map(|f| (f.name.clone(), f.percent))
                        .collect(),
                )
            })
            .collect(),
    }
}

impl ImportanceFig {
    /// Importance % of `feature` for `app`.
    pub fn percent_of(&self, app: App, feature: &str) -> Option<f64> {
        self.per_app
            .iter()
            .find(|(a, _)| a == app.name())?
            .1
            .iter()
            .find(|(f, _)| f == feature)
            .map(|(_, p)| *p)
    }

    /// Mean importance % of `feature` across apps (0 when absent).
    pub fn mean_percent_of(&self, feature: &str) -> f64 {
        let vals: Vec<f64> = self
            .per_app
            .iter()
            .map(|(_, fs)| {
                fs.iter()
                    .find(|(f, _)| f == feature)
                    .map_or(0.0, |(_, p)| *p)
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Features ranked by mean importance across apps.
    pub fn ranked_by_mean(&self) -> Vec<(String, f64)> {
        let names: Vec<String> = self
            .per_app
            .first()
            .map(|(_, fs)| fs.iter().map(|(f, _)| f.clone()).collect())
            .unwrap_or_default();
        let mut v: Vec<(String, f64)> = names
            .iter()
            .map(|n| (n.clone(), self.mean_percent_of(n)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Render the top-K table: rows = features (ordered by mean, as the
    /// paper does), columns = apps.
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact: rows = features (ordered by mean),
    /// columns = apps.
    pub fn table(&self) -> report::Table {
        let apps: Vec<&str> = self.per_app.iter().map(|(a, _)| a.as_str()).collect();
        let mut headers = vec!["Feature"];
        headers.extend(apps.iter());
        let ranked = self.ranked_by_mean();
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .take(TOP_K)
            .map(|(feat, _)| {
                let mut r = vec![feat.clone()];
                for (_, fs) in &self.per_app {
                    let p = fs.iter().find(|(f, _)| f == feat).map_or(0.0, |(_, p)| *p);
                    r.push(report::pct(p));
                }
                r
            })
            .collect();
        report::Table::new(
            &format!(
                "{}: top-{TOP_K} permutation feature importances",
                self.label
            ),
            &headers,
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, ExpOptions};

    use armdse_core::engine::Engine;

    #[test]
    fn fig3_reports_and_renders() {
        let data = build_dataset(&Engine::idealized(), &ExpOptions::quick()).unwrap();
        let f = fig3(&data, 11);
        assert_eq!(f.per_app.len(), 4);
        let t = f.to_table();
        assert!(t.contains("Fig. 3"));
        // Mean ranking produces 30 entries.
        assert_eq!(f.ranked_by_mean().len(), 30);
    }

    #[test]
    fn fig45_pins_vector_length_through_the_engine_plan() {
        let engine = Engine::idealized();
        let mut opts = ExpOptions::quick().gen_options();
        opts.configs = 12;
        let f = fig45(&engine, &ParamSpace::paper(), &opts, 128, 11).unwrap();
        assert!(f.label.contains("VL=128"));
        // With VL pinned, its importance collapses to (near) zero.
        for app in App::ALL {
            let p = f.percent_of(app, "Vector-Length").unwrap_or(0.0);
            assert!(p.abs() < 1e-9, "{app:?}: pinned VL importance {p}");
        }
    }

    #[test]
    fn mean_percent_is_mean() {
        let f = ImportanceFig {
            label: "t".into(),
            per_app: vec![
                ("A".into(), vec![("X".into(), 10.0)]),
                ("B".into(), vec![("X".into(), 30.0)]),
            ],
        };
        assert!((f.mean_percent_of("X") - 20.0).abs() < 1e-12);
        assert_eq!(f.mean_percent_of("missing"), 0.0);
    }
}
