//! Text-table and CSV rendering shared by the experiments.

/// Render an aligned text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render rows as CSV with a header.
pub fn format_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format a float with fixed decimals, trimming noise.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            "T",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "20000".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("long-header"));
        // All data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_shape() {
        let c = format_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(25.913), "25.91%");
    }
}
