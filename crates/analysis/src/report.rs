//! Result-emission: structured tables with text, CSV, and JSON
//! rendering, shared by all experiments.
//!
//! Everything here is hand-rolled on `std` (no serde): experiment
//! results are plain (title, headers, rows) tables plus optional note
//! lines, and the three renderers keep `repro` artifacts diffable
//! (text), machine-readable (CSV), and self-describing (JSON).

/// A rendered experiment artifact: one titled table plus free-form
/// notes (footer lines such as headline summaries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (one line).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Footer notes appended after the table in text output and kept
    /// as a JSON array in structured output.
    pub notes: Vec<String>,
}

impl Table {
    /// Build a table from borrowed parts.
    pub fn new(title: &str, headers: &[&str], rows: Vec<Vec<String>>) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
            notes: Vec::new(),
        }
    }

    /// Append a footer note line.
    pub fn note(mut self, line: impl Into<String>) -> Table {
        self.notes.push(line.into());
        self
    }

    /// Render as an aligned text table (plus notes).
    pub fn to_text(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        let mut out = format_table(&self.title, &headers, &self.rows);
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Render the data rows as CSV with a header line.
    pub fn to_csv(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        format_csv(&headers, &self.rows)
    }

    /// Render as a JSON object:
    /// `{"title": ..., "headers": [...], "rows": [[...]], "notes": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"title\":");
        json_string(&self.title, &mut out);
        out.push_str(",\"headers\":");
        json_string_array(&self.headers, &mut out);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string_array(row, &mut out);
        }
        out.push_str("],\"notes\":");
        json_string_array(&self.notes, &mut out);
        out.push('}');
        out
    }
}

/// The discarded-runs section of a report: which (config, app) runs a
/// campaign dropped at validation and why. The paper silently keeps
/// only validation-passing runs; surfacing the discards makes a
/// mis-modelled design point visible instead of shrinking the dataset
/// without a trace. Always renders — an explicit "none discarded" note
/// when the list is empty.
pub fn discarded_table(discarded: &[armdse_core::dataset::DiscardedRun]) -> Table {
    let rows: Vec<Vec<String>> = discarded
        .iter()
        .map(|d| {
            vec![
                d.config_index.to_string(),
                d.app.name().to_string(),
                d.cycles.to_string(),
                if d.hit_cycle_limit {
                    "cycle limit"
                } else {
                    "op-count mismatch"
                }
                .to_string(),
            ]
        })
        .collect();
    let t = Table::new(
        "Discarded runs (failed validation; excluded from the dataset)",
        &["Config", "App", "Cycles", "Reason"],
        rows,
    );
    if discarded.is_empty() {
        t.note("No runs were discarded: every simulation passed validation.")
    } else {
        t.note(format!("{} run(s) discarded.", discarded.len()))
    }
}

/// Render several tables as one JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

/// Write a JSON string literal (RFC 8259 escaping) into `out`.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_string_array(items: &[String], out: &mut String) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(s, out);
    }
    out.push(']');
}

/// Render an aligned text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render rows as CSV with a header. Cells containing commas, quotes,
/// or newlines are quoted per RFC 4180.
pub fn format_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cell = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = headers
        .iter()
        .map(|h| cell(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Format a float with fixed decimals, trimming noise.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            "T",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "20000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("long-header"));
        // All data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_shape() {
        let c = format_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let c = format_csv(&["x"], &[vec!["a,b".into()], vec!["say \"hi\"".into()]]);
        assert_eq!(c, "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_quotes_bare_carriage_returns() {
        // RFC 4180: any field containing CR must be quoted, even with no LF.
        let c = format_csv(&["x"], &[vec!["a\rb".into()]]);
        assert_eq!(c, "x\n\"a\rb\"\n");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(25.913), "25.91%");
    }

    #[test]
    fn structured_table_renders_all_three_formats() {
        let t = Table::new(
            "Demo",
            &["k", "v"],
            vec![vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]],
        )
        .note("footer line");
        let text = t.to_text();
        assert!(text.starts_with("Demo\n"));
        assert!(text.ends_with("footer line\n"));
        assert_eq!(t.to_csv(), "k,v\na,1\nb,2\n");
        assert_eq!(
            t.to_json(),
            r#"{"title":"Demo","headers":["k","v"],"rows":[["a","1"],["b","2"]],"notes":["footer line"]}"#
        );
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let t = Table::new("q\"t\n", &["h"], vec![vec!["\t\\".into()]]);
        let j = t.to_json();
        assert!(j.contains(r#""q\"t\n""#));
        assert!(j.contains(r#""\t\\""#));
        // Valid JSON shape: balanced braces/brackets at the ends.
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn discarded_section_renders_reasons_and_empty_note() {
        use armdse_core::dataset::DiscardedRun;
        use armdse_kernels::App;
        let empty = discarded_table(&[]);
        assert!(empty.to_text().contains("No runs were discarded"));
        let some = discarded_table(&[
            DiscardedRun {
                app: App::Stream,
                config_index: 3,
                cycles: 9,
                hit_cycle_limit: true,
            },
            DiscardedRun {
                app: App::TeaLeaf,
                config_index: 5,
                cycles: 2,
                hit_cycle_limit: false,
            },
        ]);
        let text = some.to_text();
        assert!(text.contains("cycle limit"));
        assert!(text.contains("op-count mismatch"));
        assert!(text.contains("2 run(s) discarded"));
    }

    #[test]
    fn tables_to_json_is_an_array() {
        let a = Table::new("A", &["h"], vec![]);
        let b = Table::new("B", &["h"], vec![]);
        let j = tables_to_json(&[a, b]);
        assert!(j.starts_with("[{") && j.ends_with("}]"));
        assert!(j.contains(r#""title":"A""#) && j.contains(r#""title":"B""#));
    }
}
