//! Extension experiment: multi-core memory contention (paper §VII).
//!
//! "Even on a node level, this study abstracts away the memory contention
//! behaviour exhibited in multi-core systems. […] this work lays the
//! foundation for future work into the impacts of parallel execution."
//!
//! This experiment implements that future work on the contended memory
//! model: each application is simulated on the ThunderX2 baseline while
//! 0–15 phantom co-runners saturate the shared DRAM controller. The
//! paper's expectation — memory-bound codes degrade most, compute-bound
//! codes barely notice — is checked by the accompanying tests.

use crate::report;
use armdse_core::engine::Engine;
use armdse_core::DesignConfig;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::Contended;

/// Co-runner counts simulated (0 = the paper's single-core setting).
pub const CO_RUNNERS: [u32; 5] = [0, 1, 3, 7, 15];

/// Slowdown series for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSeries {
    /// Application name.
    pub app: String,
    /// (co-runners, cycles, slowdown vs solo).
    pub points: Vec<(u32, u64, f64)>,
}

/// The full contention experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreFig {
    /// One series per application.
    pub series: Vec<ContentionSeries>,
}

/// Run the contention sweep on the ThunderX2 baseline: one [`Contended`]
/// backend per co-runner count, all sharing the engine's workload cache.
pub fn run(engine: &Engine, scale: WorkloadScale) -> MulticoreFig {
    let cfg = DesignConfig::thunderx2();
    let series = App::ALL
        .iter()
        .map(|&app| {
            let mut points = Vec::new();
            let mut solo = 0u64;
            for &n in &CO_RUNNERS {
                let s = engine.simulate_config_on(&Contended { co_runners: n }, app, scale, &cfg);
                assert!(s.validated, "{app:?} with {n} co-runners failed validation");
                if n == 0 {
                    solo = s.cycles;
                }
                points.push((n, s.cycles, s.cycles as f64 / solo as f64));
            }
            ContentionSeries {
                app: app.name().to_string(),
                points,
            }
        })
        .collect();
    MulticoreFig { series }
}

impl MulticoreFig {
    /// Slowdown of `app` at `co_runners`.
    pub fn slowdown(&self, app: App, co_runners: u32) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.app == app.name())?
            .points
            .iter()
            .find(|(n, _, _)| *n == co_runners)
            .map(|(_, _, s)| *s)
    }

    /// Render as a text table (rows = co-runner counts, columns = apps).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact (rows = co-runner counts, columns = apps).
    pub fn table(&self) -> report::Table {
        let mut headers = vec!["Co-runners"];
        let names: Vec<&str> = self.series.iter().map(|s| s.app.as_str()).collect();
        headers.extend(names.iter());
        let rows: Vec<Vec<String>> = CO_RUNNERS
            .iter()
            .map(|&n| {
                let mut r = vec![n.to_string()];
                for s in &self.series {
                    let sd = s
                        .points
                        .iter()
                        .find(|(c, _, _)| *c == n)
                        .map(|(_, _, s)| *s)
                        .unwrap_or(f64::NAN);
                    r.push(format!("{sd:.2}x"));
                }
                r
            })
            .collect();
        report::Table::new(
            "Extension: slowdown under shared-DRAM contention (paper §VII future work)",
            &headers,
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_codes_degrade_most() {
        // Standard scale so compulsory (cold) DRAM misses are amortised;
        // at tiny inputs even compute-bound codes are cold-miss dominated.
        let f = run(&Engine::idealized(), WorkloadScale::Standard);
        // STREAM (sustained-bandwidth) must suffer more than the
        // register/L1-resident miniBUDE.
        let stream = f.slowdown(App::Stream, 15).unwrap();
        let bude = f.slowdown(App::MiniBude, 15).unwrap();
        assert!(
            stream > bude * 1.2,
            "STREAM ({stream}) should degrade clearly more than miniBUDE ({bude})"
        );
        assert!(stream > 1.3, "STREAM should clearly degrade ({stream})");
    }

    #[test]
    fn slowdown_monotone_in_co_runners() {
        let f = run(&Engine::idealized(), WorkloadScale::Tiny);
        for s in &f.series {
            for w in s.points.windows(2) {
                assert!(
                    w[1].2 >= w[0].2 * 0.999,
                    "{}: slowdown must not shrink with contention: {:?}",
                    s.app,
                    s.points
                );
            }
        }
    }

    #[test]
    fn table_renders_all_apps() {
        let t = run(&Engine::idealized(), WorkloadScale::Tiny).to_table();
        for app in App::ALL {
            assert!(t.contains(app.name()));
        }
    }
}
