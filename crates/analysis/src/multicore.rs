//! Extension experiment: multi-core memory contention (paper §VII).
//!
//! "Even on a node level, this study abstracts away the memory contention
//! behaviour exhibited in multi-core systems. […] this work lays the
//! foundation for future work into the impacts of parallel execution."
//!
//! This experiment implements that future work on the contended memory
//! model: each application is simulated on the ThunderX2 baseline while
//! 0–15 phantom co-runners saturate the shared DRAM controller. The
//! paper's expectation — memory-bound codes degrade most, compute-bound
//! codes barely notice — is checked by the accompanying tests.
//!
//! The phantom-co-runner sweep is a closed-form *projection*: the
//! co-runners are synthetic DRAM traffic, not real pipelines. Since the
//! simulator grew a real multicore machine
//! ([`armdse_simcore::MultiCore`]), [`validate`] cross-checks the
//! projection against it — N real cores each running their own instance
//! of the workload over the shared banked L2 + DRAM — and the tests pin
//! the two models to agree on direction (no contention speedups) and on
//! which application is most contention-sensitive.

use crate::report;
use armdse_core::engine::Engine;
use armdse_core::DesignConfig;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::{Contended, MultiCore, Topology};

/// Co-runner counts simulated (0 = the paper's single-core setting).
pub const CO_RUNNERS: [u32; 5] = [0, 1, 3, 7, 15];

/// Slowdown series for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSeries {
    /// Application name.
    pub app: String,
    /// (co-runners, cycles, slowdown vs solo).
    pub points: Vec<(u32, u64, f64)>,
}

/// The full contention experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreFig {
    /// One series per application.
    pub series: Vec<ContentionSeries>,
}

/// Run the contention sweep on the ThunderX2 baseline: one [`Contended`]
/// backend per co-runner count, all sharing the engine's workload cache.
pub fn run(engine: &Engine, scale: WorkloadScale) -> MulticoreFig {
    let cfg = DesignConfig::thunderx2();
    let series = App::ALL
        .iter()
        .map(|&app| {
            let mut points = Vec::new();
            let mut solo = 0u64;
            for &n in &CO_RUNNERS {
                let s = engine.simulate_config_on(&Contended { co_runners: n }, app, scale, &cfg);
                assert!(s.validated, "{app:?} with {n} co-runners failed validation");
                if n == 0 {
                    solo = s.cycles;
                }
                points.push((n, s.cycles, s.cycles as f64 / solo as f64));
            }
            ContentionSeries {
                app: app.name().to_string(),
                points,
            }
        })
        .collect();
    MulticoreFig { series }
}

impl MulticoreFig {
    /// Slowdown of `app` at `co_runners`.
    pub fn slowdown(&self, app: App, co_runners: u32) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.app == app.name())?
            .points
            .iter()
            .find(|(n, _, _)| *n == co_runners)
            .map(|(_, _, s)| *s)
    }

    /// Render as a text table (rows = co-runner counts, columns = apps).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact (rows = co-runner counts, columns = apps).
    pub fn table(&self) -> report::Table {
        let mut headers = vec!["Co-runners"];
        let names: Vec<&str> = self.series.iter().map(|s| s.app.as_str()).collect();
        headers.extend(names.iter());
        let rows: Vec<Vec<String>> = CO_RUNNERS
            .iter()
            .map(|&n| {
                let mut r = vec![n.to_string()];
                for s in &self.series {
                    let sd = s
                        .points
                        .iter()
                        .find(|(c, _, _)| *c == n)
                        .map(|(_, _, s)| *s)
                        .unwrap_or(f64::NAN);
                    r.push(format!("{sd:.2}x"));
                }
                r
            })
            .collect();
        report::Table::new(
            "Extension: slowdown under shared-DRAM contention (paper §VII future work)",
            &headers,
            rows,
        )
    }
}

/// Core counts swept by [`validate`] (1 = the uncontended baseline).
pub const VALIDATE_CORES: [u32; 3] = [1, 2, 4];

/// One application's projected-vs-measured slowdown comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementRow {
    /// Application name.
    pub app: String,
    /// (cores, projected slowdown, measured slowdown). Projected comes
    /// from [`Contended`] with `cores - 1` phantom co-runners; measured
    /// from a real [`MultiCore`] machine with `cores` pipelines.
    pub points: Vec<(u32, f64, f64)>,
}

/// The closed-form projection validated against the real machine.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementFig {
    /// One row per application.
    pub rows: Vec<AgreementRow>,
}

/// Cross-check the phantom-co-runner projection against the real
/// multicore machine at matching core counts. Both slowdown columns are
/// normalised to their own single-core run, so the comparison isolates
/// *contention scaling* from any absolute-cycle offset between the two
/// backends.
pub fn validate(engine: &Engine, scale: WorkloadScale) -> AgreementFig {
    let cfg = DesignConfig::thunderx2();
    let banks = Topology::default().banks;
    let rows = App::ALL
        .iter()
        .map(|&app| {
            let mut solo_proj = 0u64;
            let mut solo_real = 0u64;
            let points = VALIDATE_CORES
                .iter()
                .map(|&n| {
                    let proj = engine.simulate_config_on(
                        &Contended { co_runners: n - 1 },
                        app,
                        scale,
                        &cfg,
                    );
                    let real =
                        engine.simulate_config_on(&MultiCore::new(n, banks), app, scale, &cfg);
                    assert!(proj.validated && real.validated, "{app:?} at {n} cores");
                    if n == 1 {
                        solo_proj = proj.cycles;
                        solo_real = real.cycles;
                    }
                    (
                        n,
                        proj.cycles as f64 / solo_proj as f64,
                        real.cycles as f64 / solo_real as f64,
                    )
                })
                .collect();
            AgreementRow {
                app: app.name().to_string(),
                points,
            }
        })
        .collect();
    AgreementFig { rows }
}

impl AgreementFig {
    /// Projected slowdown of `app` at `cores` (phantom co-runners).
    pub fn projected(&self, app: App, cores: u32) -> Option<f64> {
        self.point(app, cores).map(|(_, p, _)| p)
    }

    /// Measured slowdown of `app` at `cores` (real machine).
    pub fn measured(&self, app: App, cores: u32) -> Option<f64> {
        self.point(app, cores).map(|(_, _, m)| m)
    }

    fn point(&self, app: App, cores: u32) -> Option<(u32, f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.app == app.name())?
            .points
            .iter()
            .find(|(n, _, _)| *n == cores)
            .copied()
    }

    /// The projection agrees with the machine when (a) neither model
    /// reports a contention *speedup* anywhere, and (b) at the largest
    /// core count, the application the projection ranks most
    /// contention-sensitive is measured at least as degraded as the one
    /// it ranks least sensitive. Magnitudes are allowed to differ — the
    /// phantom model saturates the controller harder than real
    /// co-runners do — but direction and ranking must match.
    pub fn agrees(&self) -> bool {
        let no_speedup = self
            .rows
            .iter()
            .flat_map(|r| r.points.iter())
            .all(|&(_, p, m)| p >= 0.999 && m >= 0.999);
        let top = VALIDATE_CORES[VALIDATE_CORES.len() - 1];
        let at_top = |key: fn(&(u32, f64, f64)) -> f64| {
            self.rows.iter().filter_map(move |r| {
                r.points
                    .iter()
                    .find(|(n, _, _)| *n == top)
                    .map(|pt| (r.app.as_str(), key(pt)))
            })
        };
        let extreme = |by_max: bool| -> Option<&str> {
            let mut best: Option<(&str, f64)> = None;
            for (app, p) in at_top(|&(_, p, _)| p) {
                let better = match best {
                    None => true,
                    Some((_, b)) => {
                        if by_max {
                            p > b
                        } else {
                            p < b
                        }
                    }
                };
                if better {
                    best = Some((app, p));
                }
            }
            best.map(|(a, _)| a)
        };
        let (Some(most), Some(least)) = (extreme(true), extreme(false)) else {
            return false;
        };
        let measured_of = |name: &str| {
            at_top(|&(_, _, m)| m)
                .find(|(a, _)| *a == name)
                .map(|(_, m)| m)
        };
        let ranking_holds = match (measured_of(most), measured_of(least)) {
            (Some(m_most), Some(m_least)) => m_most >= m_least,
            _ => false,
        };
        no_speedup && ranking_holds
    }

    /// Render as a text table.
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact: one row per `(app, cores)` pair with the
    /// projected and measured slowdown columns side by side.
    pub fn table(&self) -> report::Table {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .flat_map(|r| {
                r.points.iter().map(|&(n, p, m)| {
                    vec![
                        r.app.clone(),
                        n.to_string(),
                        format!("{p:.2}x"),
                        format!("{m:.2}x"),
                    ]
                })
            })
            .collect();
        report::Table::new(
            "Extension: phantom-co-runner projection vs real multicore machine",
            &["App", "Cores", "Projected", "Measured"],
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_codes_degrade_most() {
        // Standard scale so compulsory (cold) DRAM misses are amortised;
        // at tiny inputs even compute-bound codes are cold-miss dominated.
        let f = run(&Engine::idealized(), WorkloadScale::Standard);
        // STREAM (sustained-bandwidth) must suffer more than the
        // register/L1-resident miniBUDE.
        let stream = f.slowdown(App::Stream, 15).unwrap();
        let bude = f.slowdown(App::MiniBude, 15).unwrap();
        assert!(
            stream > bude * 1.2,
            "STREAM ({stream}) should degrade clearly more than miniBUDE ({bude})"
        );
        assert!(stream > 1.3, "STREAM should clearly degrade ({stream})");
    }

    #[test]
    fn slowdown_monotone_in_co_runners() {
        let f = run(&Engine::idealized(), WorkloadScale::Tiny);
        for s in &f.series {
            for w in s.points.windows(2) {
                assert!(
                    w[1].2 >= w[0].2 * 0.999,
                    "{}: slowdown must not shrink with contention: {:?}",
                    s.app,
                    s.points
                );
            }
        }
    }

    #[test]
    fn table_renders_all_apps() {
        let t = run(&Engine::idealized(), WorkloadScale::Tiny).to_table();
        for app in App::ALL {
            assert!(t.contains(app.name()));
        }
    }

    #[test]
    fn projection_tracks_the_real_machine() {
        // Standard scale so compulsory DRAM misses are amortised and the
        // memory-bound / compute-bound ranking is meaningful.
        let f = validate(&Engine::idealized(), WorkloadScale::Standard);
        assert!(f.agrees(), "projection diverges:\n{}", f.to_table());
        // One core is the normalisation baseline for both columns.
        for app in App::ALL {
            assert_eq!(f.projected(app, 1), Some(1.0));
            assert_eq!(f.measured(app, 1), Some(1.0));
        }
        let t = f.to_table();
        assert!(t.contains("Projected") && t.contains("Measured"));
    }

    #[test]
    fn real_machine_contention_is_monotone_in_cores() {
        let f = validate(&Engine::idealized(), WorkloadScale::Tiny);
        for r in &f.rows {
            for w in r.points.windows(2) {
                assert!(
                    w[1].2 >= w[0].2 * 0.999,
                    "{}: measured slowdown must not shrink with cores: {:?}",
                    r.app,
                    r.points
                );
            }
        }
    }
}
