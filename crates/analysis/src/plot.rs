//! ASCII chart rendering — the stand-in for the artifact's
//! `graph-generation.py`.
//!
//! Every figure in the paper is a bar or line chart; these helpers render
//! the same data as terminal plots so `repro` output is visually
//! comparable with the paper without a plotting stack.

/// Render horizontal bars: one labelled bar per entry, scaled to
/// `width` columns at the maximum value.
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if entries.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = entries
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    for (label, v) in entries {
        let filled = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:>label_w$} |{}{} {v:.2}\n",
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Render one or more line series over a shared integer x-axis as an
/// ASCII grid (`height` rows tall). Series are marked `a`, `b`, `c`, …
pub fn line_chart(
    title: &str,
    series: &[(String, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
        (lo.min(x), hi.max(x))
    });
    let (ymin, ymax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
        (lo.min(y), hi.max(y))
    });
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = (b'a' + (si % 26) as u8) as char;
        for &(x, y) in pts {
            let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = mark;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let ylabel = if i == 0 {
            format!("{ymax:>8.2}")
        } else if i == height - 1 {
            format!("{ymin:>8.2}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("{ylabel} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{} +{}\n", " ".repeat(8), "-".repeat(width)));
    out.push_str(&format!(
        "{}  {xmin:<10.0}{:>w$.0}\n",
        " ".repeat(8),
        xmax,
        w = width - 10
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        let mark = (b'a' + (si % 26) as u8) as char;
        out.push_str(&format!("  {mark} = {name}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let c = bar_chart("t", &[("big".into(), 10.0), ("half".into(), 5.0)], 20);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[1].matches('█').count(), 20);
        assert_eq!(lines[2].matches('█').count(), 10);
    }

    #[test]
    fn bar_chart_empty() {
        assert!(bar_chart("t", &[], 10).contains("no data"));
    }

    #[test]
    fn line_chart_places_extremes() {
        let c = line_chart("t", &[("s".into(), vec![(0.0, 0.0), (10.0, 5.0)])], 21, 5);
        // Max value row carries the max label; the mark appears.
        assert!(c.contains("5.00"));
        assert!(c.contains("0.00"));
        assert!(c.contains("a = s"));
        assert!(c.matches('a').count() >= 2);
    }

    #[test]
    fn line_chart_multiple_series_marks() {
        let c = line_chart(
            "t",
            &[
                ("one".into(), vec![(0.0, 1.0), (1.0, 2.0)]),
                ("two".into(), vec![(0.0, 2.0), (1.0, 1.0)]),
            ],
            10,
            4,
        );
        assert!(c.contains("a = one") && c.contains("b = two"));
    }
}
