//! Figs. 6, 7, 8 — mean speedup when sweeping one parameter.
//!
//! * Fig. 6: vector length 128→2048, STREAM and miniBUDE only (the two
//!   vectorised codes), restricted to configurations whose load bandwidth
//!   is at least 256 bytes "to ensure a fair comparison, given this is the
//!   minimum a result with vector length 2048 has".
//! * Fig. 7: ROB size 8→512, all applications.
//! * Fig. 8: FP/SVE physical registers 38→512, all applications.
//!
//! Where the paper bins its random dataset by the swept parameter, we use
//! the paired-sample equivalent: a set of random base configurations is
//! re-simulated at every sweep value, and the speedup is the ratio of
//! mean cycles against the sweep's reference value. Pairing removes the
//! between-configuration variance that binning averages out with volume
//! (we run thousands of simulations, not 180,000).

use crate::report;
use armdse_core::engine::Engine;
use armdse_core::space::ParamSpace;
use armdse_core::DesignConfig;
use armdse_kernels::{App, WorkloadScale};

/// ROB sizes swept in Fig. 7 (includes the paper's knee at 152).
pub const ROB_POINTS: [u32; 10] = [8, 16, 32, 64, 96, 128, 152, 256, 384, 512];

/// FP/SVE register counts swept in Fig. 8 (includes the paper's knee at
/// 144 and the minimum 38).
pub const FP_POINTS: [u32; 9] = [38, 72, 104, 144, 176, 240, 320, 424, 512];

/// Vector lengths swept in Fig. 6.
pub const VL_POINTS: [u32; 5] = [128, 256, 512, 1024, 2048];

/// One speedup series.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Application name.
    pub app: String,
    /// (swept value, mean cycles, speedup vs reference).
    pub points: Vec<(u32, f64, f64)>,
}

/// A full sweep figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFig {
    /// Figure label.
    pub label: String,
    /// Name of the swept parameter.
    pub param: String,
    /// One series per application.
    pub series: Vec<SweepSeries>,
}

/// Options for sweep experiments.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Number of random base configurations (paired across sweep values).
    pub base_configs: usize,
    /// Workload scale.
    pub scale: WorkloadScale,
    /// Seed for base-configuration sampling.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            base_configs: 12,
            scale: WorkloadScale::Standard,
            seed: 61_803,
        }
    }
}

fn mean_cycles(engine: &Engine, app: App, scale: WorkloadScale, configs: &[DesignConfig]) -> f64 {
    let mut total = 0u64;
    let mut n = 0u64;
    for cfg in configs {
        let s = engine.simulate_config(app, scale, cfg);
        if s.validated {
            total += s.cycles;
            n += 1;
        }
    }
    assert!(n > 0, "no validated runs for {app:?}");
    total as f64 / n as f64
}

/// Fig. 6: speedup vs vector length for the vectorised codes.
pub fn fig6(engine: &Engine, space: &ParamSpace, opts: &SweepOptions) -> SweepFig {
    // Base configs with the paper's Load-Bandwidth >= 256 filter (applied
    // to stores too, so every VL is admissible on every base config).
    let bases: Vec<DesignConfig> = (0..opts.base_configs as u64)
        .map(|i| {
            let mut c = space.sample_seeded(opts.seed + i);
            c.core.load_bandwidth = c.core.load_bandwidth.max(256);
            c.core.store_bandwidth = c.core.store_bandwidth.max(256);
            c
        })
        .collect();

    let series = [App::Stream, App::MiniBude]
        .iter()
        .map(|&app| {
            let mut points = Vec::new();
            for &vl in &VL_POINTS {
                let configs: Vec<DesignConfig> = bases
                    .iter()
                    .map(|b| {
                        let mut c = *b;
                        c.core.vector_length = vl;
                        c
                    })
                    .collect();
                points.push((vl, mean_cycles(engine, app, opts.scale, &configs)));
            }
            to_series(app, points)
        })
        .collect();
    SweepFig {
        label: "Fig. 6".into(),
        param: "Vector-Length".into(),
        series,
    }
}

/// Fig. 7: speedup vs ROB size for all applications.
pub fn fig7(engine: &Engine, space: &ParamSpace, opts: &SweepOptions) -> SweepFig {
    sweep_all_apps(
        engine,
        space,
        opts,
        "Fig. 7",
        "ROB-Size",
        &ROB_POINTS,
        |c, v| {
            c.core.rob_size = v;
        },
    )
}

/// Fig. 8: speedup vs FP/SVE register count for all applications.
pub fn fig8(engine: &Engine, space: &ParamSpace, opts: &SweepOptions) -> SweepFig {
    sweep_all_apps(
        engine,
        space,
        opts,
        "Fig. 8",
        "FP-SVE-Registers",
        &FP_POINTS,
        |c, v| {
            c.core.fp_regs = v;
        },
    )
}

fn sweep_all_apps(
    engine: &Engine,
    space: &ParamSpace,
    opts: &SweepOptions,
    label: &str,
    param: &str,
    points: &[u32],
    apply: impl Fn(&mut DesignConfig, u32),
) -> SweepFig {
    let bases: Vec<DesignConfig> = (0..opts.base_configs as u64)
        .map(|i| space.sample_seeded(opts.seed + i))
        .collect();
    let series = App::ALL
        .iter()
        .map(|&app| {
            let mut pts = Vec::new();
            for &v in points {
                let configs: Vec<DesignConfig> = bases
                    .iter()
                    .map(|b| {
                        let mut c = *b;
                        apply(&mut c, v);
                        c
                    })
                    .collect();
                pts.push((v, mean_cycles(engine, app, opts.scale, &configs)));
            }
            to_series(app, pts)
        })
        .collect();
    SweepFig {
        label: label.into(),
        param: param.into(),
        series,
    }
}

fn to_series(app: App, raw: Vec<(u32, f64)>) -> SweepSeries {
    let reference = raw.first().expect("non-empty sweep").1;
    SweepSeries {
        app: app.name().to_string(),
        points: raw
            .into_iter()
            .map(|(v, cycles)| (v, cycles, reference / cycles))
            .collect(),
    }
}

impl SweepFig {
    /// Speedup of `app` at swept value `v`.
    pub fn speedup(&self, app: App, v: u32) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.app == app.name())?
            .points
            .iter()
            .find(|(x, _, _)| *x == v)
            .map(|(_, _, s)| *s)
    }

    /// The knee: smallest swept value whose speedup reaches `frac` of the
    /// maximum speedup for `app`.
    pub fn knee(&self, app: App, frac: f64) -> Option<u32> {
        let s = self.series.iter().find(|s| s.app == app.name())?;
        let max = s
            .points
            .iter()
            .map(|(_, _, sp)| *sp)
            .fold(f64::MIN, f64::max);
        s.points
            .iter()
            .find(|(_, _, sp)| *sp >= frac * max)
            .map(|(v, _, _)| *v)
    }

    /// Render the speedup curves as an ASCII line chart.
    pub fn to_chart(&self) -> String {
        let series: Vec<(String, Vec<(f64, f64)>)> = self
            .series
            .iter()
            .map(|s| {
                (
                    s.app.clone(),
                    s.points
                        .iter()
                        .map(|&(v, _, sp)| ((v as f64).log2(), sp))
                        .collect(),
                )
            })
            .collect();
        crate::plot::line_chart(
            &format!("{}: speedup vs log2({})", self.label, self.param),
            &series,
            60,
            14,
        )
    }

    /// Render as a text table (rows = swept values, columns = apps).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact (rows = swept values, columns = apps).
    pub fn table(&self) -> report::Table {
        let mut headers = vec![self.param.as_str()];
        let names: Vec<&str> = self.series.iter().map(|s| s.app.as_str()).collect();
        headers.extend(names.iter());
        let values: Vec<u32> = self.series[0].points.iter().map(|(v, _, _)| *v).collect();
        let rows: Vec<Vec<String>> = values
            .iter()
            .map(|&v| {
                let mut r = vec![v.to_string()];
                for s in &self.series {
                    let sp = s
                        .points
                        .iter()
                        .find(|(x, _, _)| *x == v)
                        .map(|(_, _, sp)| *sp)
                        .unwrap_or(f64::NAN);
                    r.push(format!("{sp:.2}x"));
                }
                r
            })
            .collect();
        report::Table::new(
            &format!(
                "{}: mean speedup vs {} (relative to {})",
                self.label, self.param, values[0]
            ),
            &headers,
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepOptions {
        SweepOptions {
            base_configs: 3,
            scale: WorkloadScale::Tiny,
            seed: 55,
        }
    }

    #[test]
    fn fig6_vectorised_codes_speed_up_strongly() {
        // Small scale: Tiny inputs have too few poses/elements for long
        // vectors to shrink the trip counts (the paper's effect needs a
        // non-degenerate problem size).
        let opts = SweepOptions {
            base_configs: 3,
            scale: WorkloadScale::Small,
            seed: 55,
        };
        let f = fig6(&Engine::idealized(), &ParamSpace::paper(), &opts);
        for app in [App::Stream, App::MiniBude] {
            assert_eq!(f.speedup(app, 128), Some(1.0));
            let s = f.speedup(app, 2048).unwrap();
            assert!(s > 2.0, "{app:?} vl speedup only {s}");
        }
    }

    #[test]
    fn fig7_rob_speedup_saturates() {
        let f = fig7(&Engine::idealized(), &ParamSpace::paper(), &quick());
        for app in App::ALL {
            let early = f.speedup(app, 8).unwrap();
            let knee = f.speedup(app, 152).unwrap();
            let late = f.speedup(app, 512).unwrap();
            assert_eq!(early, 1.0);
            assert!(knee >= 1.0);
            // Beyond the knee the curve flattens.
            assert!(late <= knee * 1.3, "{app:?}: {late} vs {knee}");
        }
    }

    #[test]
    fn fig8_fp_regs_monotoneish() {
        let f = fig8(&Engine::idealized(), &ParamSpace::paper(), &quick());
        for app in App::ALL {
            assert_eq!(f.speedup(app, 38), Some(1.0));
            let s = f.speedup(app, 512).unwrap();
            assert!(s >= 0.95, "{app:?} fp sweep regressed: {s}");
        }
    }

    #[test]
    fn table_renders() {
        let f = fig7(&Engine::idealized(), &ParamSpace::paper(), &quick());
        let t = f.to_table();
        assert!(t.contains("ROB-Size"));
        assert!(t.contains("152"));
    }

    #[test]
    fn knee_detection() {
        let f = SweepFig {
            label: "t".into(),
            param: "p".into(),
            series: vec![SweepSeries {
                app: "STREAM".into(),
                points: vec![(8, 100.0, 1.0), (16, 50.0, 2.0), (32, 48.0, 2.08)],
            }],
        };
        assert_eq!(f.knee(App::Stream, 0.9), Some(16));
    }
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn chart_renders_series_legend() {
        let f = SweepFig {
            label: "Fig. T".into(),
            param: "ROB-Size".into(),
            series: vec![
                SweepSeries {
                    app: "STREAM".into(),
                    points: vec![(8, 100.0, 1.0), (64, 25.0, 4.0), (512, 20.0, 5.0)],
                },
                SweepSeries {
                    app: "TeaLeaf".into(),
                    points: vec![(8, 50.0, 1.0), (64, 30.0, 1.7), (512, 25.0, 2.0)],
                },
            ],
        };
        let c = f.to_chart();
        assert!(c.contains("a = STREAM"));
        assert!(c.contains("b = TeaLeaf"));
        assert!(c.contains("log2(ROB-Size)"));
    }
}
