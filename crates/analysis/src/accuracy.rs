//! Fig. 2 — percentage of cycle predictions within specified confidence
//! intervals of the true simulated value, per application, on the unseen
//! 20% test split.

use crate::report;
use armdse_core::surrogate::TOLERANCES;
use armdse_core::{DseDataset, SurrogateSuite};

/// The reproduced Fig. 2 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// (app, [(tolerance, fraction within)]).
    pub curves: Vec<(String, Vec<(f64, f64)>)>,
    /// Mean relative accuracy across apps (paper: 93.38%).
    pub mean_accuracy_pct: f64,
}

/// Train the per-app surrogates and evaluate their tolerance curves.
pub fn run(data: &DseDataset, seed: u64) -> Fig2 {
    let suite = SurrogateSuite::train(data, 0.2, seed);
    from_suite(&suite)
}

/// Extract Fig. 2 from an already-trained suite.
pub fn from_suite(suite: &SurrogateSuite) -> Fig2 {
    Fig2 {
        curves: suite
            .models
            .iter()
            .map(|m| (m.app.name().to_string(), m.metrics.tolerance_curve.clone()))
            .collect(),
        mean_accuracy_pct: suite.mean_accuracy_pct(),
    }
}

impl Fig2 {
    /// Render as a text table (rows = apps, columns = intervals).
    pub fn to_table(&self) -> String {
        self.table().to_text()
    }

    /// The structured artifact (rows = apps, columns = intervals).
    pub fn table(&self) -> report::Table {
        let mut headers = vec!["App".to_string()];
        headers.extend(TOLERANCES.iter().map(|t| format!("≤{}%", t * 100.0)));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|(app, curve)| {
                let mut r = vec![app.clone()];
                r.extend(curve.iter().map(|(_, frac)| report::pct(100.0 * frac)));
                r
            })
            .collect();
        report::Table::new(
            "Fig. 2: % of predictions within confidence interval of true cycles",
            &headers_ref,
            rows,
        )
        .note(format!(
            "Mean accuracy across applications: {} (paper: 93.38%)",
            report::pct(self.mean_accuracy_pct)
        ))
    }

    /// Fraction within `tol` for an app.
    pub fn within(&self, app: &str, tol: f64) -> Option<f64> {
        self.curves
            .iter()
            .find(|(a, _)| a == app)?
            .1
            .iter()
            .find(|(t, _)| (*t - tol).abs() < 1e-12)
            .map(|(_, f)| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, ExpOptions};
    use armdse_core::engine::Engine;

    #[test]
    fn curves_cover_all_sampled_apps_and_are_monotone() {
        let data = build_dataset(&Engine::idealized(), &ExpOptions::quick()).unwrap();
        let f = run(&data, 3);
        assert_eq!(f.curves.len(), 4);
        for (_, curve) in &f.curves {
            for w in curve.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
        assert!(f.mean_accuracy_pct > 0.0);
        let t = f.to_table();
        assert!(t.contains("STREAM") && t.contains("93.38%"));
    }
}
