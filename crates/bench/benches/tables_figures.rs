//! One Criterion benchmark per paper table/figure.
//!
//! Each bench regenerates a reduced-size version of the corresponding
//! experiment end-to-end; `repro <fig>` produces the full-size artefact.

use armdse_analysis::sweeps::SweepOptions;
use armdse_analysis::{accuracy, fig1, headline, importance, sweeps, table1};
use armdse_bench::bench_dataset;
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::SurrogateSuite;
use armdse_kernels::{App, WorkloadScale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_gen_opts() -> GenOptions {
    GenOptions {
        configs: 24,
        scale: WorkloadScale::Tiny,
        seed: 0xF1C5,
        threads: 1,
        apps: App::ALL.to_vec(),
    }
}

fn sweep_opts() -> SweepOptions {
    SweepOptions { base_configs: 2, scale: WorkloadScale::Tiny, seed: 3 }
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_vectorisation", |b| {
        b.iter(|| black_box(fig1::run(WorkloadScale::Tiny)))
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_validation", |b| {
        b.iter(|| black_box(table1::run(WorkloadScale::Tiny)))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let data = bench_dataset(24);
    c.bench_function("fig2_accuracy", |b| {
        b.iter(|| black_box(accuracy::run(&data, 7)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let data = bench_dataset(24);
    c.bench_function("fig3_importance", |b| {
        b.iter(|| black_box(importance::fig3(&data, 7)))
    });
}

fn bench_fig4_fig5(c: &mut Criterion) {
    let space = ParamSpace::paper();
    let opts = small_gen_opts();
    c.bench_function("fig4_importance_vl128", |b| {
        b.iter(|| black_box(importance::fig45(&space, &opts, 128, 7)))
    });
    c.bench_function("fig5_importance_vl2048", |b| {
        b.iter(|| black_box(importance::fig45(&space, &opts, 2048, 7)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let space = ParamSpace::paper();
    c.bench_function("fig6_vl_sweep", |b| {
        b.iter(|| black_box(sweeps::fig6(&space, &sweep_opts())))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let space = ParamSpace::paper();
    c.bench_function("fig7_rob_sweep", |b| {
        b.iter(|| black_box(sweeps::fig7(&space, &sweep_opts())))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let space = ParamSpace::paper();
    c.bench_function("fig8_reg_sweep", |b| {
        b.iter(|| black_box(sweeps::fig8(&space, &sweep_opts())))
    });
}

fn bench_headline(c: &mut Criterion) {
    let space = ParamSpace::paper();
    let data = bench_dataset(24);
    let suite = SurrogateSuite::train(&data, 0.2, 7);
    let f7 = sweeps::fig7(&space, &sweep_opts());
    let f8 = sweeps::fig8(&space, &sweep_opts());
    c.bench_function("headline_numbers", |b| {
        b.iter(|| black_box(headline::from_parts(&suite, &f7, &f8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_table1, bench_fig2, bench_fig3,
              bench_fig4_fig5, bench_fig6, bench_fig7, bench_fig8,
              bench_headline
}
criterion_main!(benches);
