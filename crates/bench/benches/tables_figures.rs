//! One benchmark per paper table/figure (std-only harness; bench IDs
//! unchanged from the Criterion era).
//!
//! Each bench regenerates a reduced-size version of the corresponding
//! experiment end-to-end; `repro <fig>` produces the full-size artefact.

use armdse_analysis::sweeps::SweepOptions;
use armdse_analysis::{accuracy, fig1, headline, importance, sweeps, table1};
use armdse_bench::bench_dataset;
use armdse_bench::harness::Harness;
use armdse_core::engine::Engine;
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::SurrogateSuite;
use armdse_kernels::{App, WorkloadScale};
use std::hint::black_box;

fn small_gen_opts() -> GenOptions {
    GenOptions {
        configs: 24,
        scale: WorkloadScale::Tiny,
        seed: 0xF1C5,
        threads: 1,
        apps: App::ALL.to_vec(),
    }
}

fn sweep_opts() -> SweepOptions {
    SweepOptions {
        base_configs: 2,
        scale: WorkloadScale::Tiny,
        seed: 3,
    }
}

fn main() {
    let mut h = Harness::from_args("tables_figures");
    let space = ParamSpace::paper();
    let engine = Engine::idealized();
    let data = bench_dataset(24);

    h.bench("fig1_vectorisation", || {
        black_box(fig1::run(&engine, WorkloadScale::Tiny))
    });
    h.bench("table1_validation", || {
        black_box(table1::run(&engine, WorkloadScale::Tiny))
    });
    h.bench("fig2_accuracy", || black_box(accuracy::run(&data, 7)));
    h.bench("fig3_importance", || black_box(importance::fig3(&data, 7)));

    let opts = small_gen_opts();
    h.bench("fig4_importance_vl128", || {
        black_box(importance::fig45(&engine, &space, &opts, 128, 7).unwrap())
    });
    h.bench("fig5_importance_vl2048", || {
        black_box(importance::fig45(&engine, &space, &opts, 2048, 7).unwrap())
    });

    h.bench("fig6_vl_sweep", || {
        black_box(sweeps::fig6(&engine, &space, &sweep_opts()))
    });
    h.bench("fig7_rob_sweep", || {
        black_box(sweeps::fig7(&engine, &space, &sweep_opts()))
    });
    h.bench("fig8_reg_sweep", || {
        black_box(sweeps::fig8(&engine, &space, &sweep_opts()))
    });

    let suite = SurrogateSuite::train(&data, 0.2, 7);
    let f7 = sweeps::fig7(&engine, &space, &sweep_opts());
    let f8 = sweeps::fig8(&engine, &space, &sweep_opts());
    h.bench("headline_numbers", || {
        black_box(headline::from_parts(&suite, &f7, &f8))
    });

    h.finish();
}
