//! Benchmarks of the multicore machine layer: simulated core-cycles
//! per second through the full `MultiCore` backend at N = 1, 2, 4
//! cores, plus a small 2-core campaign through the engine for the
//! orchestration-inclusive number.
//!
//! The N=1 point is the slice-loop overhead bound (it must track the
//! single-core backend), and the N=2/4 points record how simulation
//! throughput scales as the machine grows — a slice-loop or shared-L2
//! regression moves these before it moves anything user-visible.

use armdse_bench::harness::Harness;
use armdse_core::dataset::DseDataset;
use armdse_core::engine::{Engine, RunPlan};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::{CoreParams, MultiCore, SimBackend, Topology};
use std::hint::black_box;

/// A small single-threaded campaign over the extended kernels, so the
/// measured quantity is machine time, not thread scheduling.
fn plan() -> RunPlan {
    let opts = GenOptions {
        configs: 4,
        scale: WorkloadScale::Tiny,
        seed: 0x3C0_2E24,
        threads: 1,
        apps: vec![App::Spmv, App::Gemm, App::Graph],
    };
    RunPlan::new(&ParamSpace::paper(), &opts).expect("bench plan validates")
}

fn main() {
    let mut h = Harness::from_args("multicore");

    // Single-workload machine throughput at each core count: one SpMV
    // (gather-bound, so the shared backside is actually exercised) on
    // the ThunderX2 point. Elements = total core-cycles simulated per
    // iteration (cores × makespan), so the reported rate is
    // core-cycles/sec and comparable across N.
    let engine = Engine::idealized();
    let core = CoreParams::thunderx2();
    let mem = armdse_memsim::MemParams::thunderx2();
    let w = engine.workload(App::Spmv, WorkloadScale::Tiny, core.vector_length);
    for n in [1u32, 2, 4] {
        let machine = MultiCore::new(n, Topology::default().banks);
        let cycles = machine.run(&w.program, &core, &mem).cycles;
        h.bench_throughput(
            &format!("multicore/n{n}_core_cycles"),
            cycles * n as u64,
            || black_box(machine.run(&w.program, &core, &mem).cycles),
        );
    }

    // Campaign-level: simulated jobs/sec through the engine on the
    // 2-core machine, the number a `repro --cores 2` user experiences.
    let p = plan();
    let mc = Engine::multicore(2, 4);
    h.bench_throughput("multicore/n2_campaign_jobs", p.jobs() as u64, || {
        let mut sink = DseDataset::default();
        mc.run(&p, &mut sink).expect("bench campaign runs");
        black_box(sink.rows.len())
    });

    h.finish();
}
