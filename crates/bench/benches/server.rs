//! Benchmarks of the serving layer (docs/SERVER.md): what DSE-as-a-
//! service costs on top of the engine itself. Submission latency and
//! status polls are pure wire + store overhead (a scheduler with no
//! runner threads, so nothing executes behind the measurement); the
//! streaming benches measure rows/sec off a completed job's CSV through
//! chunked transfer encoding; the round-trip bench is the full job
//! lifecycle — submit over HTTP, execute on a runner, observe Done.

use armdse_bench::harness::Harness;
use armdse_core::jobstore::{JobSpec, JobState, JobStatus};
use armdse_kernels::{App, WorkloadScale};
use armdse_server::{client, Server, ServerConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("armdse_bench_server_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec(configs: usize, seed: u64) -> JobSpec {
    JobSpec {
        configs,
        scale: WorkloadScale::Tiny,
        seed,
        threads: 1,
        apps: App::ALL.to_vec(),
        ..JobSpec::default()
    }
}

/// Bind a server on an ephemeral port and serve it on a background
/// thread; returns the address (the process exit reaps the thread).
fn start(dir: PathBuf, runners: usize) -> String {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs_dir: dir,
        runners,
    })
    .expect("bench server binds");
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.serve());
    addr
}

fn submit(addr: &str, spec: &JobSpec) -> JobStatus {
    let resp = client::request(addr, "POST", "/jobs", Some(&spec.to_json())).expect("submit");
    assert_eq!(resp.status, 201, "{}", resp.text());
    JobStatus::from_json(&resp.text()).expect("status json")
}

fn wait_done(addr: &str, id: u64) {
    loop {
        let resp = client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
        let st = JobStatus::from_json(&resp.text()).expect("status json");
        if st.state.is_terminal() {
            assert_eq!(st.state, JobState::Done, "{:?}", st.error);
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let mut h = Harness::from_args("server");

    // Idle server (no runners): submissions only queue, so these two
    // benches isolate HTTP parse + spec validation + store write.
    let idle = start(tmp("idle"), 0);
    let queued = spec(4, 0xBE7C_0001);
    h.bench("server/submit_queued", || black_box(submit(&idle, &queued)));
    let probe = submit(&idle, &spec(4, 0xBE7C_0002));
    h.bench("server/status_poll", || {
        let resp =
            client::request(&idle, "GET", &format!("/jobs/{}", probe.id), None).expect("status");
        assert_eq!(resp.status, 200);
        black_box(resp.body.len())
    });

    // Live server: one completed campaign to stream. The stream on a
    // terminal job terminates at EOF, so this measures pure chunked
    // file streaming (rows/sec), no simulation in the loop.
    let live = start(tmp("live"), 1);
    let done = submit(&live, &spec(25, 0xBE7C_0003));
    wait_done(&live, done.id);
    let rows = done.total_jobs as u64; // one CSV row per simulation job
    h.bench_throughput("server/rows_streamed", rows, || {
        let mut bytes = 0usize;
        let code = client::stream(
            &live,
            "GET",
            &format!("/jobs/{}/rows", done.id),
            None,
            &mut |chunk| {
                bytes += chunk.len();
                Ok(())
            },
        )
        .expect("stream");
        assert_eq!(code, 200);
        black_box(bytes)
    });

    // Full lifecycle: submit a minimal campaign over HTTP, let a runner
    // execute it, poll to Done. Dominated by the simulation itself —
    // the number tracks total service overhead per job end to end.
    let tiny = JobSpec {
        configs: 1,
        apps: vec![App::Stream],
        ..spec(1, 0xBE7C_0004)
    };
    let mut seed = 0x1000u64;
    h.bench("server/job_roundtrip", || {
        seed += 1; // fresh seed: defeats any cross-job caching
        let st = submit(
            &live,
            &JobSpec {
                seed,
                ..tiny.clone()
            },
        );
        wait_done(&live, st.id);
        black_box(st.id)
    });

    h.finish();
}
