//! Benchmarks of the adaptive-exploration stack: the acquisition
//! layer's hot functions (scoring, top-k selection, Pareto ranking),
//! the incremental-forest operations the retrain loop leans on, and one
//! end-to-end tiny exploration round-trip through [`Explorer`].
//!
//! The end-to-end bench pins the cost of a whole acquire → simulate →
//! retrain campaign at smoke scale; the component benches localise a
//! regression to the layer that caused it.

use armdse_bench::harness::Harness;
use armdse_core::engine::Engine;
use armdse_core::explorer::{
    acquisition_scores, pareto_ranks, select_top_k, structure_cost, ExploreControl, ExploreOptions,
    Explorer,
};
use armdse_core::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_mltree::{ForestParams, Matrix, RandomForest};
use std::hint::black_box;

/// Deterministic (prediction, uncertainty) pool at cycle magnitudes.
fn pool(n: usize) -> (Vec<u64>, Vec<f64>, Vec<f64>) {
    let ids: Vec<u64> = (0..n as u64).collect();
    let preds: Vec<f64> = (0..n as u64)
        .map(|i| 1.0e7 + ((i * 2654435761) % 5_000_000) as f64)
        .collect();
    let stds: Vec<f64> = (0..n as u64)
        .map(|i| ((i * 40503) % 200_000) as f64)
        .collect();
    (ids, preds, stds)
}

fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let space = ParamSpace::paper();
    let mut x = Matrix::new(30);
    let mut y = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let f = space.sample_seeded(i).to_features();
        y.push(structure_cost(&f) * 1.0e4);
        x.push_row(&f);
    }
    (x, y)
}

fn main() {
    let mut h = Harness::from_args("explore");

    // Acquisition scoring throughput over a large candidate pool.
    let (ids, preds, stds) = pool(4096);
    h.bench_throughput("acquisition/scores_4096", 4096, || {
        black_box(acquisition_scores(&preds, &stds, 0.25))
    });

    // Top-k selection (sort-dominated) over the same pool.
    let scores = acquisition_scores(&preds, &stds, 0.25);
    h.bench_throughput("acquisition/top_k_4096", 4096, || {
        black_box(select_top_k(&ids, &scores, 64))
    });

    // Pareto non-dominated sorting (quadratic in the pool size).
    let objs: Vec<(f64, f64)> = preds
        .iter()
        .zip(&stds)
        .take(1024)
        .map(|(&a, &b)| (a, b))
        .collect();
    h.bench_throughput("acquisition/pareto_ranks_1024", 1024, || {
        black_box(pareto_ranks(&objs))
    });

    // Incremental refit: the per-round retrain cost on an accrued
    // dataset (rotating half-window), vs variance-aware prediction.
    let (x, y) = training_data(256);
    let params = ForestParams {
        n_trees: 32,
        ..Default::default()
    };
    h.bench("forest/partial_refit_256x30", || {
        let mut f = RandomForest::warm_start(params, 7);
        f.partial_refit(&x, &y, 0);
        f.partial_refit(&x, &y, 1);
        black_box(f.trees().len())
    });

    let mut fitted = RandomForest::warm_start(params, 7);
    fitted.partial_refit(&x, &y, 0);
    let probe = ParamSpace::paper().sample_seeded(9001).to_features();
    h.bench_throughput("forest/predict_variance_1000", 1000, || {
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += fitted.predict_variance(black_box(&probe));
        }
        black_box(acc)
    });

    // End-to-end tiny campaign: acquire → simulate → retrain for a
    // 12-simulation budget from a 60-point pool, artifacts included.
    let engine = Engine::idealized();
    let space = ParamSpace::paper();
    let dir = std::env::temp_dir().join("armdse_bench_explore");
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let opts = ExploreOptions {
        scale: WorkloadScale::Tiny,
        seed: 11,
        pool: 60,
        budget: 12,
        batch: 4,
        holdout: 10,
        threads: 1,
        forest: ForestParams {
            n_trees: 8,
            ..Default::default()
        },
        ..ExploreOptions::for_app(App::Stream)
    };
    h.bench("explorer/tiny_campaign_60pool_12budget", || {
        let report = Explorer::new(&engine, &space, opts.clone(), &dir)
            .expect("bench options validate")
            .run(ExploreControl::default())
            .expect("tiny campaign runs");
        black_box(report.samples)
    });
    std::fs::remove_dir_all(&dir).ok();

    h.finish();
}
