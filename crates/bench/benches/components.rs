//! Microbenchmarks of the individual substrates.

use armdse_bench::baseline;
use armdse_core::space::ParamSpace;
use armdse_kernels::{build_workload, App, WorkloadScale};
use armdse_memsim::{Hierarchy, MemParams, MemoryModel};
use armdse_mltree::{
    permutation_importance, DecisionTreeRegressor, Matrix, Regressor,
};
use armdse_isa::TraceCursor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Core-simulation throughput per application (retired instrs / second).
fn bench_simulate(c: &mut Criterion) {
    let cfg = baseline();
    let mut g = c.benchmark_group("simulate");
    for app in App::ALL {
        let w = build_workload(app, WorkloadScale::Small, cfg.core.vector_length);
        g.throughput(Throughput::Elements(w.summary.total()));
        g.bench_with_input(BenchmarkId::from_parameter(app.name()), &w, |b, w| {
            b.iter(|| black_box(armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem)))
        });
    }
    g.finish();
}

/// Trace-cursor decode throughput.
fn bench_cursor(c: &mut Criterion) {
    let w = build_workload(App::Stream, WorkloadScale::Small, 128);
    let mut g = c.benchmark_group("cursor");
    g.throughput(Throughput::Elements(w.summary.total()));
    g.bench_function("stream_small", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for di in TraceCursor::new(&w.program) {
                n += u64::from(di.op.is_vector());
            }
            black_box(n)
        })
    });
    g.finish();
}

/// Memory-hierarchy access throughput (hit-dominated streaming).
fn bench_hierarchy(c: &mut Criterion) {
    let params = MemParams::thunderx2();
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("streaming_4k_lines", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(params);
            let mut t = 0;
            for i in 0..4096u64 {
                t = h.access((i % 512) * 64, false, t);
            }
            black_box(t)
        })
    });
    g.finish();
}

/// Design-space sampling throughput.
fn bench_sampler(c: &mut Criterion) {
    let space = ParamSpace::paper();
    let mut g = c.benchmark_group("sampler");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("sample_1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for seed in 0..1000 {
                acc = acc.wrapping_add(u64::from(
                    space.sample_seeded(seed).core.rob_size,
                ));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn synthetic_training_data(n: usize) -> (Matrix, Vec<f64>) {
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let a = ((i * 2654435761) % 997) as f64;
        let b = ((i * 40503) % 991) as f64;
        let c = ((i * 9176) % 983) as f64;
        rows.push(vec![a, b, c, (i % 13) as f64]);
        y.push(3.0 * a + b * b / 100.0 + if c > 500.0 { 1000.0 } else { 0.0 });
    }
    (Matrix::from_rows(&rows), y)
}

/// Decision-tree training time ("training the machine learning model is
/// extremely fast, taking less than 1 minute" — paper artifact appendix).
fn bench_tree_fit(c: &mut Criterion) {
    let (x, y) = synthetic_training_data(2000);
    c.bench_function("tree_fit_2000x4", |b| {
        b.iter(|| black_box(DecisionTreeRegressor::fit(&x, &y)))
    });
}

/// Tree prediction throughput.
fn bench_tree_predict(c: &mut Criterion) {
    let (x, y) = synthetic_training_data(2000);
    let t = DecisionTreeRegressor::fit(&x, &y);
    let mut g = c.benchmark_group("tree_predict");
    g.throughput(Throughput::Elements(2000));
    g.bench_function("2000_rows", |b| b.iter(|| black_box(t.predict(&x))));
    g.finish();
}

/// Permutation-importance cost (10 repeats, as the paper).
fn bench_importance(c: &mut Criterion) {
    let (x, y) = synthetic_training_data(500);
    let t = DecisionTreeRegressor::fit(&x, &y);
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    c.bench_function("permutation_importance_500x4", |b| {
        b.iter(|| black_box(permutation_importance(&t, &x, &y, &names, 10, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulate, bench_cursor, bench_hierarchy, bench_sampler,
              bench_tree_fit, bench_tree_predict, bench_importance
}
criterion_main!(benches);
