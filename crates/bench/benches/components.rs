//! Microbenchmarks of the individual substrates (std-only harness; the
//! bench IDs are unchanged from the Criterion era).

use armdse_bench::baseline;
use armdse_bench::harness::Harness;
use armdse_core::space::ParamSpace;
use armdse_isa::TraceCursor;
use armdse_kernels::{build_workload, App, WorkloadScale};
use armdse_memsim::{Hierarchy, MemParams, MemoryModel};
use armdse_mltree::{permutation_importance, DecisionTreeRegressor, Matrix, Regressor};
use armdse_simcore::{Idealized, SimBackend};
use std::hint::black_box;

fn synthetic_training_data(n: usize) -> (Matrix, Vec<f64>) {
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let a = ((i * 2654435761) % 997) as f64;
        let b = ((i * 40503) % 991) as f64;
        let c = ((i * 9176) % 983) as f64;
        rows.push(vec![a, b, c, (i % 13) as f64]);
        y.push(3.0 * a + b * b / 100.0 + if c > 500.0 { 1000.0 } else { 0.0 });
    }
    (Matrix::from_rows(&rows), y)
}

fn main() {
    let mut h = Harness::from_args("components");

    // Core-simulation throughput per application (retired instrs / s).
    let cfg = baseline();
    for app in App::ALL {
        let w = build_workload(app, WorkloadScale::Small, cfg.core.vector_length);
        h.bench_throughput(
            &format!("simulate/{}", app.name()),
            w.summary.total(),
            || black_box(Idealized.run(&w.program, &cfg.core, &cfg.mem)),
        );
    }

    // Metrics-collection overhead: the same simulation with cycle
    // accounting enabled. Compare against simulate/STREAM to measure
    // the cost of the observability layer (expected: a few percent).
    let w_m = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    h.bench_throughput("simulate_metrics/STREAM", w_m.summary.total(), || {
        black_box(Idealized.run_with_metrics(&w_m.program, &cfg.core, &cfg.mem))
    });

    // Trace-cursor decode throughput.
    let w = build_workload(App::Stream, WorkloadScale::Small, 128);
    h.bench_throughput("cursor/stream_small", w.summary.total(), || {
        let mut n = 0u64;
        for di in TraceCursor::new(&w.program) {
            n += u64::from(di.op.is_vector());
        }
        black_box(n)
    });

    // Memory-hierarchy access throughput (hit-dominated streaming).
    let params = MemParams::thunderx2();
    h.bench_throughput("hierarchy/streaming_4k_lines", 4096, || {
        let mut hier = Hierarchy::new(params);
        let mut t = 0;
        for i in 0..4096u64 {
            t = hier.access((i % 512) * 64, false, t);
        }
        black_box(t)
    });

    // Design-space sampling throughput.
    let space = ParamSpace::paper();
    h.bench_throughput("sampler/sample_1000", 1000, || {
        let mut acc = 0u64;
        for seed in 0..1000 {
            acc = acc.wrapping_add(u64::from(space.sample_seeded(seed).core.rob_size));
        }
        black_box(acc)
    });

    // Decision-tree training time ("training the machine learning model
    // is extremely fast, taking less than 1 minute" — paper artifact
    // appendix).
    let (x, y) = synthetic_training_data(2000);
    h.bench("tree_fit_2000x4", || {
        black_box(DecisionTreeRegressor::fit(&x, &y))
    });

    // Tree prediction throughput.
    let t = DecisionTreeRegressor::fit(&x, &y);
    h.bench_throughput("tree_predict/2000_rows", 2000, || black_box(t.predict(&x)));

    // Permutation-importance cost (10 repeats, as the paper).
    let (x5, y5) = synthetic_training_data(500);
    let t5 = DecisionTreeRegressor::fit(&x5, &y5);
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    h.bench("permutation_importance_500x4", || {
        black_box(permutation_importance(&t5, &x5, &y5, &names, 10, 1))
    });

    h.finish();
}
