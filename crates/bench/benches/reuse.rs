//! Benchmarks of the interval-reuse stack: cold-cache vs warm-cache
//! campaign throughput through the memoizing tier (the headline number
//! the reuse layer exists to move), the plain backend for context, the
//! sampled screening tier, and the raw interval-cache hit path.
//!
//! The cold/warm pair is the acceptance contract: a warm interval cache
//! must push simulated-jobs/sec well past the cold (memoize-everything)
//! pass, because a repeated design point reduces to hash-chain walks
//! and cache lookups instead of cycle-by-cycle simulation.

use armdse_bench::harness::Harness;
use armdse_core::dataset::DseDataset;
use armdse_core::engine::{Engine, RunPlan};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::{
    CoreParams, Idealized, Memoized, Sampled, SimBackend, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP,
};
use std::hint::black_box;

/// The benchmark campaign: a small single-threaded dataset plan, so the
/// measured quantity is backend time, not thread scheduling.
fn plan() -> RunPlan {
    let opts = GenOptions {
        configs: 6,
        scale: WorkloadScale::Tiny,
        seed: 0xBE7C_2024,
        threads: 1,
        apps: vec![App::Stream, App::TeaLeaf],
    };
    RunPlan::new(&ParamSpace::paper(), &opts).expect("bench plan validates")
}

/// Run the campaign once on `engine`, returning rows (kept black-boxed).
fn run_once(engine: &Engine, p: &RunPlan) -> usize {
    let mut sink = DseDataset::default();
    engine.run(p, &mut sink).expect("bench campaign runs");
    sink.rows.len()
}

fn main() {
    let mut h = Harness::from_args("reuse");
    let p = plan();
    let jobs = p.jobs() as u64;

    // Context: the exact backend with no caching at all.
    let plain = Engine::idealized();
    h.bench_throughput("reuse/plain_jobs", jobs, || black_box(run_once(&plain, &p)));

    // Cold cache: every interval is simulated and inserted. This pays
    // the full simulation plus fingerprinting and snapshotting.
    let cold = Engine::memoized(DEFAULT_INTERVAL_LEN);
    h.bench_throughput("reuse/cold_jobs", jobs, || {
        cold.backend().clear_reuse_cache();
        black_box(run_once(&cold, &p))
    });

    // Warm cache: the same campaign re-run against a populated cache —
    // every interval chain resolves to lookups. The warm/cold ratio is
    // the reuse speedup the tier is accepted on (>= 1.5x).
    let warm = Engine::memoized(DEFAULT_INTERVAL_LEN);
    run_once(&warm, &p);
    h.bench_throughput("reuse/warm_jobs", jobs, || black_box(run_once(&warm, &p)));

    // Sampled screening tier: warmup + one measured interval +
    // extrapolation, the explorer's low-fidelity candidate ranker.
    let sampled = Engine::sampled(DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP);
    h.bench_throughput("reuse/sampled_jobs", jobs, || {
        black_box(run_once(&sampled, &p))
    });

    // Raw single-workload hit path: repeated simulation of one program
    // through a warm memoizer, isolating cache-walk overhead from
    // campaign orchestration.
    let core = CoreParams::thunderx2();
    let mem = armdse_memsim::MemParams::thunderx2();
    let w = plain.workload(App::Stream, WorkloadScale::Tiny, core.vector_length);
    let memo = Memoized::with_interval_len(Idealized, DEFAULT_INTERVAL_LEN);
    memo.run(&w.program, &core, &mem);
    h.bench("reuse/warm_hit_single_workload", || {
        black_box(memo.run(&w.program, &core, &mem).cycles)
    });

    // Sampled single-workload run for the same program, for the
    // tier-vs-tier per-job comparison at identical inputs.
    let s = Sampled::with_params(Idealized, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP);
    h.bench("reuse/sampled_single_workload", || {
        black_box(s.run(&w.program, &core, &mem).cycles)
    });

    h.finish();
}
