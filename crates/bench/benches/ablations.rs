//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * Surrogate family: the paper's single decision tree vs the linear
//!   baseline of prior work vs a random-forest extension (time; the
//!   accuracy comparison lives in `tests/ablation_accuracy.rs`).
//! * Per-app models vs one unified model (the paper argues a unified
//!   tree "would likely branch based on a given application … leading to
//!   a larger and less interpretable model").
//! * Memory-model choices: prefetcher on/off, infinite vs finite banking.
//! * Frontend choices: loop buffer on/off.

use armdse_bench::{baseline, bench_dataset};
use armdse_core::DseDataset;
use armdse_kernels::{build_workload, App, WorkloadScale};
use armdse_mltree::{
    DecisionTreeRegressor, LinearRegression, Matrix, RandomForest,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn app_xy(data: &DseDataset, app: App) -> (Matrix, Vec<f64>) {
    let ml = data.ml_dataset(app);
    (ml.x, ml.y)
}

/// Unified-model design: all apps in one matrix with the app index as an
/// extra feature (the alternative the paper rejects).
fn unified_xy(data: &DseDataset) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::new(31);
    let mut y = Vec::new();
    for r in &data.rows {
        let mut row = r.features.to_vec();
        row.push(r.app.index() as f64);
        x.push_row(&row);
        y.push(r.cycles as f64);
    }
    (x, y)
}

fn bench_surrogate_families(c: &mut Criterion) {
    let data = bench_dataset(32);
    let (x, y) = app_xy(&data, App::Stream);
    let mut g = c.benchmark_group("surrogate_fit");
    g.bench_function("decision_tree", |b| {
        b.iter(|| black_box(DecisionTreeRegressor::fit(&x, &y)))
    });
    g.bench_function("linear_baseline", |b| {
        b.iter(|| black_box(LinearRegression::fit(&x, &y)))
    });
    g.bench_function("random_forest_32", |b| {
        b.iter(|| black_box(RandomForest::fit(&x, &y, 1)))
    });
    g.finish();
}

fn bench_per_app_vs_unified(c: &mut Criterion) {
    let data = bench_dataset(32);
    let mut g = c.benchmark_group("model_partitioning");
    g.bench_function("four_per_app_trees", |b| {
        b.iter(|| {
            for app in App::ALL {
                let (x, y) = app_xy(&data, app);
                black_box(DecisionTreeRegressor::fit(&x, &y));
            }
        })
    });
    let (ux, uy) = unified_xy(&data);
    g.bench_function("one_unified_tree", |b| {
        b.iter(|| black_box(DecisionTreeRegressor::fit(&ux, &uy)))
    });
    g.finish();
}

fn bench_prefetcher(c: &mut Criterion) {
    let mut cfg = baseline();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    let mut g = c.benchmark_group("prefetcher");
    for depth in [0u32, 2] {
        cfg.mem.prefetch_depth = depth;
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| black_box(armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem)))
        });
    }
    g.finish();
}

fn bench_banking(c: &mut Criterion) {
    let cfg = baseline();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    let mut g = c.benchmark_group("banking");
    g.bench_function("infinite_banks", |b| {
        b.iter(|| black_box(armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem)))
    });
    g.bench_function("finite_banks_proxy", |b| {
        b.iter(|| {
            black_box(armdse_simcore::simulate_hardware_proxy(
                &w.program, &cfg.core, &cfg.mem,
            ))
        })
    });
    g.finish();
}

fn bench_loop_buffer(c: &mut Criterion) {
    let mut cfg = baseline();
    cfg.core.fetch_block_bytes = 16; // make fetch the bottleneck
    let w = build_workload(App::MiniBude, WorkloadScale::Small, cfg.core.vector_length);
    let mut g = c.benchmark_group("loop_buffer");
    for (label, size) in [("off", 1u32), ("on_128", 128)] {
        cfg.core.loop_buffer_size = size;
        g.bench_function(label, |b| {
            b.iter(|| black_box(armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_surrogate_families, bench_per_app_vs_unified,
              bench_prefetcher, bench_banking, bench_loop_buffer
}
criterion_main!(benches);
