//! Ablation benches for the design choices DESIGN.md calls out
//! (std-only harness; bench IDs unchanged from the Criterion era).
//!
//! * Surrogate family: the paper's single decision tree vs the linear
//!   baseline of prior work vs a random-forest extension (time; the
//!   accuracy comparison lives in `tests/ablation_accuracy.rs`).
//! * Per-app models vs one unified model (the paper argues a unified
//!   tree "would likely branch based on a given application … leading to
//!   a larger and less interpretable model").
//! * Memory-model choices: prefetcher on/off, infinite vs finite banking.
//! * Frontend choices: loop buffer on/off.

use armdse_bench::harness::Harness;
use armdse_bench::{baseline, bench_dataset};
use armdse_core::DseDataset;
use armdse_kernels::{build_workload, App, WorkloadScale};
use armdse_mltree::{DecisionTreeRegressor, LinearRegression, Matrix, RandomForest};
use armdse_simcore::{BankedProxy, Idealized, SimBackend};
use std::hint::black_box;

fn app_xy(data: &DseDataset, app: App) -> (Matrix, Vec<f64>) {
    let ml = data.ml_dataset(app);
    (ml.x, ml.y)
}

/// Unified-model design: all apps in one matrix with the app index as an
/// extra feature (the alternative the paper rejects).
fn unified_xy(data: &DseDataset) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::new(31);
    let mut y = Vec::new();
    for r in &data.rows {
        let mut row = r.features.to_vec();
        row.push(r.app.index() as f64);
        x.push_row(&row);
        y.push(r.cycles as f64);
    }
    (x, y)
}

fn main() {
    let mut h = Harness::from_args("ablations");
    let data = bench_dataset(32);

    // Surrogate families.
    let (x, y) = app_xy(&data, App::Stream);
    h.bench("surrogate_fit/decision_tree", || {
        black_box(DecisionTreeRegressor::fit(&x, &y))
    });
    h.bench("surrogate_fit/linear_baseline", || {
        black_box(LinearRegression::fit(&x, &y))
    });
    h.bench("surrogate_fit/random_forest_32", || {
        black_box(RandomForest::fit(&x, &y, 1))
    });

    // Per-app vs unified model.
    h.bench("model_partitioning/four_per_app_trees", || {
        for app in App::ALL {
            let (x, y) = app_xy(&data, app);
            black_box(DecisionTreeRegressor::fit(&x, &y));
        }
    });
    let (ux, uy) = unified_xy(&data);
    h.bench("model_partitioning/one_unified_tree", || {
        black_box(DecisionTreeRegressor::fit(&ux, &uy))
    });

    // Prefetcher depth.
    let mut cfg = baseline();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    for depth in [0u32, 2] {
        cfg.mem.prefetch_depth = depth;
        let mem = cfg.mem;
        let core = cfg.core;
        h.bench(&format!("prefetcher/depth_{depth}"), || {
            black_box(Idealized.run(&w.program, &core, &mem))
        });
    }

    // Infinite vs finite banking.
    let cfg = baseline();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    h.bench("banking/infinite_banks", || {
        black_box(Idealized.run(&w.program, &cfg.core, &cfg.mem))
    });
    h.bench("banking/finite_banks_proxy", || {
        black_box(BankedProxy.run(&w.program, &cfg.core, &cfg.mem))
    });

    // Loop buffer on/off.
    let mut cfg = baseline();
    cfg.core.fetch_block_bytes = 16; // make fetch the bottleneck
    let w = build_workload(App::MiniBude, WorkloadScale::Small, cfg.core.vector_length);
    for (label, size) in [("off", 1u32), ("on_128", 128)] {
        cfg.core.loop_buffer_size = size;
        let core = cfg.core;
        h.bench(&format!("loop_buffer/{label}"), || {
            black_box(Idealized.run(&w.program, &core, &cfg.mem))
        });
    }

    h.finish();
}
