//! Perf-trajectory comparator for `BENCH_<suite>.json` snapshots.
//!
//! ## Snapshot schema (`armdse-bench-v1`)
//!
//! ```json
//! {
//!   "schema": "armdse-bench-v1",
//!   "suite": "components",
//!   "results": [
//!     {"id": "simulate/STREAM", "median_ns": 1234.5, "min_ns": 1200.0,
//!      "spread_ns": 80.0, "samples": 10, "iters": 48,
//!      "elements": 4096, "elems_per_sec": 3318348.0}
//!   ]
//! }
//! ```
//!
//! `elements`/`elems_per_sec` appear only on throughput benches. The
//! snapshot is emitted by [`crate::harness`] when `ARMDSE_BENCH_JSON`
//! is set, and this module loads two snapshots and reports per-id
//! deltas (the `bench-trend` binary wraps [`compare`] for ci.sh).
//!
//! Everything here is hand-rolled on std only — the parser is a small
//! recursive-descent RFC 8259 reader, mirroring the repo's no-new-deps
//! stance for CSV/JSON codecs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::harness::BenchResult;

/// A parsed `BENCH_<suite>.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub suite: String,
    pub results: Vec<BenchResult>,
}

impl Snapshot {
    /// Load and parse a snapshot file.
    pub fn load(path: &str) -> Result<Snapshot, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Snapshot::parse(&body).map_err(|e| format!("{path}: {e}"))
    }

    /// Parse snapshot JSON (schema `armdse-bench-v1`).
    pub fn parse(body: &str) -> Result<Snapshot, String> {
        let v = parse_json(body)?;
        let obj = v.as_object().ok_or("top level is not an object")?;
        let schema = obj
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != "armdse-bench-v1" {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let suite = obj
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing \"suite\"")?
            .to_string();
        let raw = obj
            .get("results")
            .and_then(Json::as_array)
            .ok_or("missing \"results\" array")?;
        let mut results = Vec::with_capacity(raw.len());
        for (i, r) in raw.iter().enumerate() {
            let r = r
                .as_object()
                .ok_or_else(|| format!("results[{i}] is not an object"))?;
            let num = |key: &str| -> Result<f64, String> {
                r.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("results[{i}] missing numeric \"{key}\""))
            };
            results.push(BenchResult {
                id: r
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("results[{i}] missing \"id\""))?
                    .to_string(),
                median_ns: num("median_ns")?,
                min_ns: num("min_ns")?,
                spread_ns: num("spread_ns")?,
                samples: num("samples")? as u64,
                iters: num("iters")? as u64,
                elements: r.get("elements").and_then(Json::as_f64).map(|e| e as u64),
            });
        }
        Ok(Snapshot { suite, results })
    }
}

/// One benchmark's base→new movement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub id: String,
    pub base_median_ns: f64,
    pub new_median_ns: f64,
    /// base / new: > 1.0 means the new snapshot is faster.
    pub speedup: f64,
}

/// Comparison of two snapshots by benchmark id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    pub deltas: Vec<Delta>,
    /// Ids present only in the base snapshot.
    pub missing: Vec<String>,
    /// Ids present only in the new snapshot.
    pub new_ids: Vec<String>,
}

impl Comparison {
    /// Geometric-mean speedup over the common ids (1.0 when empty).
    pub fn geomean_speedup(&self) -> f64 {
        if self.deltas.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.deltas.iter().map(|d| d.speedup.ln()).sum();
        (log_sum / self.deltas.len() as f64).exp()
    }

    /// Human-readable report, one line per common id plus coverage notes.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let dir = if d.speedup >= 1.0 { "faster" } else { "slower" };
            let _ = writeln!(
                out,
                "{:<40} {:>14.0} -> {:>14.0} ns/iter  {:>6.2}x {dir}",
                d.id, d.base_median_ns, d.new_median_ns, d.speedup
            );
        }
        for id in &self.missing {
            let _ = writeln!(out, "{id:<40} only in base snapshot");
        }
        for id in &self.new_ids {
            let _ = writeln!(out, "{id:<40} only in new snapshot");
        }
        if !self.deltas.is_empty() {
            let _ = writeln!(
                out,
                "geomean over {} common ids: {:.2}x",
                self.deltas.len(),
                self.geomean_speedup()
            );
        }
        out
    }
}

/// Compare two snapshots per benchmark id (order follows the base
/// snapshot; ids that appear in only one side are reported, not an
/// error, so suites can gain/lose benches without breaking the lane).
pub fn compare(base: &Snapshot, new: &Snapshot) -> Comparison {
    let new_by_id: BTreeMap<&str, &BenchResult> =
        new.results.iter().map(|r| (r.id.as_str(), r)).collect();
    let base_ids: BTreeMap<&str, ()> = base.results.iter().map(|r| (r.id.as_str(), ())).collect();
    let mut cmp = Comparison::default();
    for b in &base.results {
        match new_by_id.get(b.id.as_str()) {
            Some(n) => cmp.deltas.push(Delta {
                id: b.id.clone(),
                base_median_ns: b.median_ns,
                new_median_ns: n.median_ns,
                speedup: b.median_ns / n.median_ns.max(f64::MIN_POSITIVE),
            }),
            None => cmp.missing.push(b.id.clone()),
        }
    }
    for n in &new.results {
        if !base_ids.contains_key(n.id.as_str()) {
            cmp.new_ids.push(n.id.clone());
        }
    }
    cmp
}

// The RFC 8259 parser lives in `armdse_core::json` (shared with the
// serving layer's wire protocol); re-exported here so historical
// `armdse_bench::trend::{Json, parse_json}` paths keep working.
pub use armdse_core::json::{parse_json, Json};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::snapshot_json;

    fn result(id: &str, median: f64, elements: Option<u64>) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            median_ns: median,
            min_ns: median * 0.9,
            spread_ns: median * 0.2,
            samples: 10,
            iters: 42,
            elements,
        }
    }

    #[test]
    fn snapshot_round_trips_through_emitter_and_parser() {
        let results = vec![
            result("simulate/STREAM", 1_234_567.5, Some(4096)),
            result("cursor/stream_small", 890.25, None),
        ];
        let body = snapshot_json("components", &results);
        let snap = Snapshot::parse(&body).expect("round-trip parse");
        assert_eq!(snap.suite, "components");
        assert_eq!(snap.results, results);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(
            Snapshot::parse("{\"schema\": \"v9\", \"suite\": \"x\", \"results\": []}")
                .unwrap_err()
                .contains("unsupported schema")
        );
        assert!(Snapshot::parse("{]").is_err());
        assert!(Snapshot::parse("{\"schema\": \"armdse-bench-v1\"}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null, "x\n\"yA"]}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("x\n\"yA"));
    }

    #[test]
    fn compare_reports_speedups_and_coverage() {
        let base = Snapshot {
            suite: "components".into(),
            results: vec![
                result("a", 3000.0, None),
                result("b", 1000.0, None),
                result("gone", 5.0, None),
            ],
        };
        let new = Snapshot {
            suite: "components".into(),
            results: vec![
                result("a", 1000.0, None),
                result("b", 2000.0, None),
                result("fresh", 7.0, None),
            ],
        };
        let cmp = compare(&base, &new);
        assert_eq!(cmp.deltas.len(), 2);
        assert!((cmp.deltas[0].speedup - 3.0).abs() < 1e-9);
        assert!((cmp.deltas[1].speedup - 0.5).abs() < 1e-9);
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert_eq!(cmp.new_ids, vec!["fresh".to_string()]);
        // geomean of 3.0 and 0.5 = sqrt(1.5)
        assert!((cmp.geomean_speedup() - 1.5f64.sqrt()).abs() < 1e-9);
        let report = cmp.report();
        assert!(report.contains("3.00x faster"));
        assert!(report.contains("0.50x slower"));
        assert!(report.contains("only in base"));
        assert!(report.contains("geomean over 2 common ids"));
    }
}
