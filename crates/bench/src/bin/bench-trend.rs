//! `bench-trend` — compare two `BENCH_<suite>.json` snapshots, or
//! validate that one parses.
//!
//! ```text
//! bench-trend --check SNAPSHOT.json       # parse-validate, exit 1 on error
//! bench-trend BASE.json NEW.json          # per-id delta report (always exit 0)
//! ```
//!
//! The two-file report mode is deliberately non-gating: ci.sh runs it
//! against the checked-in baseline for visibility, and a regression
//! shows up in the log without failing the lane (bench timings on
//! shared CI hardware are too noisy to gate on).

use armdse_bench::trend::{compare, Snapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [check, path] if check == "--check" => match Snapshot::load(path) {
            Ok(snap) => {
                println!(
                    "ok: {path}: suite {:?}, {} results",
                    snap.suite,
                    snap.results.len()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        [base_path, new_path] => {
            let base = Snapshot::load(base_path).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let new = Snapshot::load(new_path).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            if base.suite != new.suite {
                eprintln!(
                    "note: comparing different suites ({:?} vs {:?})",
                    base.suite, new.suite
                );
            }
            print!("{}", compare(&base, &new).report());
        }
        _ => {
            eprintln!("usage: bench-trend --check SNAPSHOT.json");
            eprintln!("       bench-trend BASE.json NEW.json");
            std::process::exit(2);
        }
    }
}
