//! Std-only benchmark harness (`Instant`-based), replacing Criterion so
//! `cargo bench` needs no external crates.
//!
//! Kept deliberately Criterion-shaped: benches register IDs like
//! `"simulate/stream"` and the harness warms up, auto-calibrates an
//! iteration count, takes a fixed number of samples, and reports the
//! median time per iteration with spread and optional throughput. IDs
//! are stable across the Criterion-era benches so historical results
//! remain comparable, and `--filter`-style substring selection works
//! the same way (`cargo bench -- sampler`).
//!
//! ## Machine-readable emission (`ARMDSE_BENCH_JSON`)
//!
//! When the `ARMDSE_BENCH_JSON` environment variable is set, every
//! result is recorded and [`Harness::finish`] writes one
//! `BENCH_<suite>.json` snapshot (schema documented on
//! [`crate::trend`]). The variable names either a directory (the file
//! is created inside it) or, when it ends in `.json`, the exact file
//! path. The snapshot is the perf-trajectory artifact compared across
//! commits by the [`crate::trend`] comparator.

use armdse_core::json::{json_num, write_json_string};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples taken per benchmark (matches the Criterion config the repo
/// used: `sample_size(10)`).
pub const SAMPLES: usize = 10;

/// Target wall-clock time per sample; iteration counts are calibrated
/// so one sample lands near this long.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(60);

/// Wall-clock budget spent warming a benchmark up before calibration.
/// Calibrating from the cold first call would fold one-time warm-up
/// cost (allocator growth, cache/TLB fill, lazy statics) into the
/// per-iteration estimate and systematically overshoot the iteration
/// count; instead the harness keeps calling `f` until this budget is
/// spent and calibrates from the *fastest* observed call.
pub const WARMUP_BUDGET: Duration = Duration::from_millis(20);

/// One benchmark's measured result, as recorded for the
/// `BENCH_<suite>.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable benchmark ID (`"simulate/STREAM"`).
    pub id: String,
    /// Median time per iteration over the samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's time per iteration, in nanoseconds.
    pub min_ns: f64,
    /// Max − min sample time per iteration, in nanoseconds.
    pub spread_ns: f64,
    /// Samples taken.
    pub samples: u64,
    /// Calibrated iterations per sample.
    pub iters: u64,
    /// Elements processed per iteration (throughput benches only).
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements per second at the median time (`None` for non-throughput
    /// benches or degenerate timings).
    pub fn elems_per_sec(&self) -> Option<f64> {
        let e = self.elements?;
        let rate = e as f64 * 1e9 / self.median_ns;
        rate.is_finite().then_some(rate)
    }
}

/// A registered benchmark runner. Construct once per bench binary via
/// [`Harness::from_args`], call [`Harness::bench`] (or
/// [`Harness::bench_throughput`]) per benchmark, then
/// [`Harness::finish`].
pub struct Harness {
    suite: String,
    filter: Option<String>,
    list_only: bool,
    results: Vec<BenchResult>,
    ran: usize,
}

impl Harness {
    /// Parse the argument conventions cargo uses with `harness = false`
    /// benches: `--bench` is passed through and ignored; the first free
    /// argument is a substring filter; `--list` prints IDs and exits.
    pub fn from_args(suite: &str) -> Harness {
        let mut filter = None;
        let mut list_only = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--bench" | "--benches" => {}
                "--list" => list_only = true,
                // Swallow flags Criterion accepted so old invocations
                // don't error out.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        eprintln!("# suite {suite}: {SAMPLES} samples/bench, std::time::Instant harness");
        Harness {
            suite: suite.to_string(),
            filter,
            list_only,
            results: Vec::new(),
            ran: 0,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Time `f`, reporting median ns/iter.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) {
        self.run(id, None, f);
    }

    /// Time `f`, additionally reporting `elements / s` throughput.
    pub fn bench_throughput<T>(&mut self, id: &str, elements: u64, f: impl FnMut() -> T) {
        self.run(id, Some(elements), f);
    }

    fn run<T>(&mut self, id: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
        if !self.selected(id) {
            return;
        }
        if self.list_only {
            println!("{id}: bench");
            return;
        }
        self.ran += 1;

        // Warm-up, then calibration from a warmed timing: the first call
        // always runs (and is never trusted alone — it carries warm-up
        // cost); further calls run until WARMUP_BUDGET is spent, and the
        // fastest call observed calibrates the iteration count so one
        // sample lands near TARGET_SAMPLE. A benchmark slower than
        // TARGET_SAMPLE per call calibrates to 1 iteration either way,
        // so the budget is skipped for it.
        let warm_start = Instant::now();
        let t0 = Instant::now();
        black_box(f());
        let mut once = t0.elapsed().max(Duration::from_nanos(1));
        if once < TARGET_SAMPLE {
            while warm_start.elapsed() < WARMUP_BUDGET {
                let t = Instant::now();
                black_box(f());
                once = once.min(t.elapsed().max(Duration::from_nanos(1)));
            }
        }
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let spread = samples[samples.len() - 1] - samples[0];

        let result = BenchResult {
            id: id.to_string(),
            median_ns: median,
            min_ns: min,
            spread_ns: spread,
            samples: SAMPLES as u64,
            iters,
            elements,
        };
        let thr = result.elems_per_sec().map_or(String::new(), |per_sec| {
            format!("  {} elem/s", human(per_sec))
        });
        println!(
            "{id:<40} {:>14} ns/iter (min {}, +/- {}){thr}",
            group_digits(median.round() as u64),
            group_digits(min.round() as u64),
            group_digits(spread.round() as u64),
        );
        self.results.push(result);
    }

    /// Results measured so far (in registration order).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the suite summary and, when `ARMDSE_BENCH_JSON` is set,
    /// write the `BENCH_<suite>.json` snapshot. Exits non-zero if a
    /// filter was given and matched nothing, so typos fail loudly in CI.
    pub fn finish(self) {
        if self.list_only {
            return;
        }
        if self.ran == 0 {
            if let Some(f) = &self.filter {
                eprintln!("error: filter '{f}' matched no benchmarks");
                std::process::exit(1);
            }
        }
        if let Ok(target) = std::env::var("ARMDSE_BENCH_JSON") {
            if !target.is_empty() {
                let path = snapshot_path(&target, &self.suite);
                let body = snapshot_json(&self.suite, &self.results);
                match std::fs::write(&path, body) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        eprintln!("# {} benchmarks run", self.ran);
    }
}

/// Resolve the `ARMDSE_BENCH_JSON` value to the snapshot file path: a
/// value ending in `.json` is the file itself, anything else is the
/// directory that receives `BENCH_<suite>.json`.
fn snapshot_path(target: &str, suite: &str) -> String {
    if target.ends_with(".json") {
        target.to_string()
    } else {
        let sep = if target.ends_with('/') { "" } else { "/" };
        format!("{target}{sep}BENCH_{suite}.json")
    }
}

/// Serialize a suite snapshot with the hand-rolled JSON codec (RFC 8259
/// output; parsed back by [`crate::trend::Snapshot::parse`]).
pub fn snapshot_json(suite: &str, results: &[BenchResult]) -> String {
    let mut out = String::with_capacity(256 + results.len() * 160);
    out.push_str("{\n  \"schema\": \"armdse-bench-v1\",\n  \"suite\": ");
    write_json_string(suite, &mut out);
    out.push_str(",\n  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"id\": ");
        write_json_string(&r.id, &mut out);
        out.push_str(&format!(
            ", \"median_ns\": {}, \"min_ns\": {}, \"spread_ns\": {}, \"samples\": {}, \"iters\": {}",
            json_num(r.median_ns),
            json_num(r.min_ns),
            json_num(r.spread_ns),
            r.samples,
            r.iters
        ));
        if let Some(e) = r.elements {
            out.push_str(&format!(", \"elements\": {e}"));
            if let Some(rate) = r.elems_per_sec() {
                out.push_str(&format!(", \"elems_per_sec\": {}", json_num(rate)));
            }
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// `12345678` → `12,345,678`.
fn group_digits(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        let rem = v % 1000;
        v /= 1000;
        if v == 0 {
            parts.push(rem.to_string());
            break;
        }
        parts.push(format!("{rem:03}"));
    }
    parts.reverse();
    parts.join(",")
}

/// Human-readable rate with K/M/G suffix.
fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(12_345_678), "12,345,678");
    }

    #[test]
    fn human_rates() {
        assert_eq!(human(500.0), "500");
        assert_eq!(human(2_500.0), "2.50K");
        assert_eq!(human(3_000_000.0), "3.00M");
        assert_eq!(human(4_200_000_000.0), "4.20G");
    }

    #[test]
    fn snapshot_path_accepts_dir_or_file() {
        assert_eq!(snapshot_path(".", "components"), "./BENCH_components.json");
        assert_eq!(
            snapshot_path("out/", "ablations"),
            "out/BENCH_ablations.json"
        );
        assert_eq!(
            snapshot_path("x/custom.json", "components"),
            "x/custom.json"
        );
    }

    #[test]
    fn elems_per_sec_requires_elements() {
        let mut r = BenchResult {
            id: "x".into(),
            median_ns: 100.0,
            min_ns: 90.0,
            spread_ns: 20.0,
            samples: 10,
            iters: 5,
            elements: None,
        };
        assert!(r.elems_per_sec().is_none());
        r.elements = Some(1000);
        assert!((r.elems_per_sec().unwrap() - 1e10).abs() < 1e-3);
    }
}
