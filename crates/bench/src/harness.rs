//! Std-only benchmark harness (`Instant`-based), replacing Criterion so
//! `cargo bench` needs no external crates.
//!
//! Kept deliberately Criterion-shaped: benches register IDs like
//! `"simulate/stream"` and the harness warms up, auto-calibrates an
//! iteration count, takes a fixed number of samples, and reports the
//! median time per iteration with spread and optional throughput. IDs
//! are stable across the Criterion-era benches so historical results
//! remain comparable, and `--filter`-style substring selection works
//! the same way (`cargo bench -- sampler`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples taken per benchmark (matches the Criterion config the repo
/// used: `sample_size(10)`).
pub const SAMPLES: usize = 10;

/// Target wall-clock time per sample; iteration counts are calibrated
/// so one sample takes roughly this long.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(60);

/// A registered benchmark runner. Construct once per bench binary via
/// [`Harness::from_args`], call [`Harness::bench`] (or
/// [`Harness::bench_throughput`]) per benchmark, then
/// [`Harness::finish`].
pub struct Harness {
    filter: Option<String>,
    list_only: bool,
    ran: usize,
}

impl Harness {
    /// Parse the argument conventions cargo uses with `harness = false`
    /// benches: `--bench` is passed through and ignored; the first free
    /// argument is a substring filter; `--list` prints IDs and exits.
    pub fn from_args(suite: &str) -> Harness {
        let mut filter = None;
        let mut list_only = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--bench" | "--benches" => {}
                "--list" => list_only = true,
                // Swallow flags Criterion accepted so old invocations
                // don't error out.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        eprintln!("# suite {suite}: {SAMPLES} samples/bench, std::time::Instant harness");
        Harness {
            filter,
            list_only,
            ran: 0,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Time `f`, reporting median ns/iter.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) {
        self.run(id, None, f);
    }

    /// Time `f`, additionally reporting `elements / s` throughput.
    pub fn bench_throughput<T>(&mut self, id: &str, elements: u64, f: impl FnMut() -> T) {
        self.run(id, Some(elements), f);
    }

    fn run<T>(&mut self, id: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
        if !self.selected(id) {
            return;
        }
        if self.list_only {
            println!("{id}: bench");
            return;
        }
        self.ran += 1;

        // Warm-up + calibration: run once, then scale the iteration
        // count so a sample lands near TARGET_SAMPLE.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let spread = samples[samples.len() - 1] - samples[0];

        let thr = elements.map_or(String::new(), |e| {
            let per_sec = e as f64 * 1e9 / median;
            format!("  {} elem/s", human(per_sec))
        });
        println!(
            "{id:<40} {:>14} ns/iter (+/- {}){thr}",
            group_digits(median.round() as u64),
            group_digits(spread.round() as u64),
        );
    }

    /// Print the suite summary. Exits non-zero if a filter was given
    /// and matched nothing, so typos fail loudly in CI.
    pub fn finish(self) {
        if self.list_only {
            return;
        }
        if self.ran == 0 {
            if let Some(f) = &self.filter {
                eprintln!("error: filter '{f}' matched no benchmarks");
                std::process::exit(1);
            }
        }
        eprintln!("# {} benchmarks run", self.ran);
    }
}

/// `12345678` → `12,345,678`.
fn group_digits(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        let rem = v % 1000;
        v /= 1000;
        if v == 0 {
            parts.push(rem.to_string());
            break;
        }
        parts.push(format!("{rem:03}"));
    }
    parts.reverse();
    parts.join(",")
}

/// Human-readable rate with K/M/G suffix.
fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(12_345_678), "12,345,678");
    }

    #[test]
    fn human_rates() {
        assert_eq!(human(500.0), "500");
        assert_eq!(human(2_500.0), "2.50K");
        assert_eq!(human(3_000_000.0), "3.00M");
        assert_eq!(human(4_200_000_000.0), "4.20G");
    }
}
