//! # armdse-bench — benchmark support
//!
//! The benches live in `benches/` and run on the std-only [`harness`]
//! (no external benchmarking crates, so `cargo bench` works offline):
//!
//! * `tables_figures` — one benchmark per paper table/figure, each
//!   regenerating a reduced-size version of the experiment end-to-end
//!   (workload generation → simulation → model → analysis).
//! * `components` — microbenchmarks of the substrates: core simulation
//!   throughput per app, cache hierarchy access rates, trace-cursor
//!   throughput, sampler throughput, tree fit/predict, permutation
//!   importance.
//! * `ablations` — the design choices DESIGN.md calls out: decision tree
//!   vs linear baseline vs random forest; per-app models vs one unified
//!   model; prefetcher on/off; loop buffer on/off; infinite vs finite
//!   banking.
//!
//! This library crate hosts the harness plus shared fixtures.

pub mod harness;
pub mod trend;

use armdse_core::engine::{Engine, RunPlan};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::ParamSpace;
use armdse_core::DesignConfig;
use armdse_core::DseDataset;
use armdse_kernels::{App, WorkloadScale};

/// A small deterministic dataset for model benches (kept tiny so
/// `cargo bench` completes quickly even single-core).
pub fn bench_dataset(configs: usize) -> DseDataset {
    let opts = GenOptions {
        configs,
        scale: WorkloadScale::Tiny,
        seed: 0xBE7C,
        threads: 1,
        apps: App::ALL.to_vec(),
    };
    let plan = RunPlan::new(&ParamSpace::paper(), &opts).expect("valid bench plan");
    let mut data = DseDataset::default();
    Engine::idealized()
        .run(&plan, &mut data)
        .expect("in-memory sink cannot fail");
    data
}

/// The baseline configuration used by simulation benches.
pub fn baseline() -> DesignConfig {
    DesignConfig::thunderx2()
}
