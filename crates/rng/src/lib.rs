//! # armdse-rng — zero-dependency deterministic PRNG
//!
//! The workspace's replacement for the `rand` crate, so the whole
//! reproduction builds and tests offline with no external dependencies.
//! It provides exactly what the samplers and surrogate models need:
//!
//! * [`SplitMix64`] — the seeding generator (Steele, Lea & Flood 2014),
//!   used to expand a single `u64` seed into full generator state.
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0 (Blackman & Vigna 2019), the
//!   workhorse generator: 256-bit state, period 2²⁵⁶−1, passes BigCrush.
//! * [`Rng::gen_range`] — unbiased uniform integers over `a..b` and
//!   `a..=b` ranges (Lemire's multiply-shift rejection method).
//! * [`SliceRandom::shuffle`] — Fisher–Yates shuffle.
//! * A `SeedableRng`-shaped API ([`SeedableRng::seed_from_u64`] /
//!   [`SeedableRng::from_seed`]) so call sites read like `rand` code.
//!
//! Determinism contract: a generator seeded with `seed_from_u64(s)`
//! produces one fixed stream for `s`, forever. The orchestrator derives
//! config `i` from `seed + i`, so datasets are byte-identical across
//! thread counts, machines, and Rust versions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64: the recommended seeder for xoshiro-family generators.
///
/// Every call advances a Weyl sequence and mixes it; distinct `u64`
/// seeds give well-separated, decorrelated output streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed directly from a `u64`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The uniform-deviate interface implemented by all generators here.
///
/// Mirrors the shape of `rand::Rng` for the operations this workspace
/// uses: raw bits, unbiased integer ranges, unit-interval floats.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Unbiased uniform integer in `0..n` (n > 0), via Lemire's
    /// multiply-shift method with rejection.
    fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded_u64 needs a non-empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            // Threshold = 2^64 mod n; reject draws landing in the
            // truncated final stripe so every residue is equally likely.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value from an integer range, e.g. `rng.gen_range(0..len)`
    /// or `rng.gen_range(4..=64)`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// `rand::SeedableRng`-shaped construction, so ported call sites keep
/// their `seed_from_u64` spelling.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes for xoshiro256++).
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` through SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ 1.0: the general-purpose generator used everywhere in
/// this workspace (sampling, bagging, shuffling, permutation
/// importance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// The raw 256-bit generator state, for persistence (e.g. the
    /// engine's exploration checkpoints). Restoring the returned words
    /// with [`Xoshiro256pp::from_state`] continues the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Xoshiro256pp::state`] snapshot. The
    /// all-zero state (xoshiro's one fixed point, never produced by a
    /// seeded generator) is remapped exactly as [`SeedableRng::from_seed`]
    /// does, so a round-trip through persistence can never wedge the
    /// stream.
    pub fn from_state(s: [u64; 4]) -> Xoshiro256pp {
        if s == [0; 4] {
            return Xoshiro256pp::seed_from_u64(0);
        }
        Xoshiro256pp { s }
    }

    /// Advance one step and return the next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Xoshiro256pp {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        let mut s = [word(0), word(1), word(2), word(3)];
        if s == [0; 4] {
            // The all-zero state is the one fixed point of xoshiro;
            // remap it to a valid SplitMix64-derived state.
            let mut sm = SplitMix64::new(0);
            s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        }
        Xoshiro256pp { s }
    }

    fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

/// A range that can be sampled uniformly — implemented for `Range` and
/// `RangeInclusive` over the integer types the workspace samples.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Fisher–Yates shuffling for slices, mirroring
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (uniform over all permutations).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded_u64(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ C source (first outputs
    /// for the state {1, 2, 3, 4}).
    #[test]
    fn matches_reference_implementation() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = Xoshiro256pp::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn state_roundtrip_continues_the_exact_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(0xFEED);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Xoshiro256pp::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero snapshot is remapped, never a stuck stream.
        let mut z = Xoshiro256pp::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_produces_nonzero_stream() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert!((0..8).any(|_| rng.next_u64() != 0));
        let mut z = Xoshiro256pp::from_seed([0u8; 32]);
        assert!((0..8).any(|_| z.next_u64() != 0));
    }

    #[test]
    fn gen_range_respects_bounds_exclusive_and_inclusive() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..17);
            assert!(a < 17);
            let b: u32 = rng.gen_range(4..=64);
            assert!((4..=64).contains(&b));
            let c: u64 = rng.gen_range(1_000_000..1_000_003);
            assert!((1_000_000..1_000_003).contains(&c));
        }
    }

    #[test]
    fn gen_range_covers_all_values_of_a_small_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..8");
    }

    #[test]
    fn gen_range_is_unbiased_within_tolerance() {
        // Chi-squared-style sanity check: 10 buckets, 100k draws; each
        // bucket expects 10k. A fair generator stays well within ±5%.
        let mut rng = Xoshiro256pp::seed_from_u64(123);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_500..=10_500).contains(&c),
                "bucket {i} has {c} draws (expected ~10000)"
            );
        }
    }

    #[test]
    fn single_element_range_is_constant() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(5..=5u32), 5);
            assert_eq!(rng.gen_range(3..4usize), 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And it actually permutes (astronomically unlikely to be id).
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_visits_every_position() {
        // Element 0 should land in many distinct slots across seeds.
        let mut slots = std::collections::HashSet::new();
        for seed in 0..200 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..10).collect();
            v.shuffle(&mut rng);
            slots.insert(v.iter().position(|&x| x == 0).unwrap());
        }
        assert_eq!(slots.len(), 10, "0 must reach every slot in 200 shuffles");
    }

    #[test]
    fn distinct_seeds_give_distinct_shuffles() {
        let base: Vec<u32> = (0..32).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut Xoshiro256pp::seed_from_u64(1));
        b.shuffle(&mut Xoshiro256pp::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn gen_f64_in_unit_interval_with_spread() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen_f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn choose_returns_member_and_none_on_empty() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let v = [10u32, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs of SplitMix64 with seed 1234567, from the
        // public-domain reference implementation.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Deterministic across constructions.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }
}
