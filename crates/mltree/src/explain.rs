//! Tree introspection: decision paths and structure export.
//!
//! A core reason the paper picks decision trees is interpretability:
//! "they are highly interpretable as the decision tree describes how the
//! prediction is made which can easily be followed". This module makes
//! that concrete: [`DecisionTreeRegressor::decision_path`] returns the
//! exact sequence of comparisons that produced a prediction, and
//! [`DecisionTreeRegressor::to_text`] renders the whole tree.

use crate::tree::DecisionTreeRegressor;

/// One step of a decision path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Feature index compared at this node.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// The row's value for the feature.
    pub value: f64,
    /// Whether the row went left (`value <= threshold`).
    pub went_left: bool,
}

impl DecisionTreeRegressor {
    /// The sequence of comparisons evaluated when predicting `row`,
    /// ending at a leaf whose mean is the prediction.
    pub fn decision_path(&self, row: &[f64]) -> (Vec<PathStep>, f64) {
        let mut steps = Vec::new();
        let mut i = 0u32;
        loop {
            match self.node(i) {
                ExplainNode::Leaf { value } => return (steps, value),
                ExplainNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = row[feature];
                    let went_left = value <= threshold;
                    steps.push(PathStep {
                        feature,
                        threshold,
                        value,
                        went_left,
                    });
                    i = if went_left { left } else { right };
                }
            }
        }
    }

    /// Human-readable decision path with feature names.
    pub fn explain(&self, row: &[f64], names: &[String]) -> String {
        let (steps, value) = self.decision_path(row);
        let mut out = String::new();
        for s in &steps {
            let name = names.get(s.feature).map_or("?", |n| n.as_str());
            out.push_str(&format!(
                "{name} = {} {} {}\n",
                trim(s.value),
                if s.went_left { "<=" } else { ">" },
                trim(s.threshold),
            ));
        }
        out.push_str(&format!("=> predict {} cycles\n", trim(value)));
        out
    }

    /// Render the whole tree as indented text (capped at `max_depth`
    /// levels to keep deep trees readable).
    pub fn to_text(&self, names: &[String], max_depth: u32) -> String {
        let mut out = String::new();
        self.render(0, 0, max_depth, names, &mut out);
        out
    }

    fn render(&self, i: u32, depth: u32, max_depth: u32, names: &[String], out: &mut String) {
        let pad = "  ".repeat(depth as usize);
        match self.node(i) {
            ExplainNode::Leaf { value } => {
                out.push_str(&format!("{pad}leaf: {}\n", trim(value)));
            }
            ExplainNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if depth >= max_depth {
                    out.push_str(&format!("{pad}...\n"));
                    return;
                }
                let name = names.get(feature).map_or("?", |n| n.as_str());
                out.push_str(&format!("{pad}{name} <= {}\n", trim(threshold)));
                self.render(left, depth + 1, max_depth, names, out);
                out.push_str(&format!("{pad}{name} > {}\n", trim(threshold)));
                self.render(right, depth + 1, max_depth, names, out);
            }
        }
    }
}

/// Trim trailing zeros from a float rendering.
fn trim(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Internal view of a node for explanation purposes.
pub(crate) enum ExplainNode {
    /// Terminal prediction.
    Leaf {
        /// Leaf mean.
        value: f64,
    },
    /// Internal comparison.
    Split {
        /// Feature index.
        feature: usize,
        /// Threshold.
        threshold: f64,
        /// Left child.
        left: u32,
        /// Right child.
        right: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::Regressor;

    fn step_tree() -> DecisionTreeRegressor {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 9.0 }).collect();
        DecisionTreeRegressor::fit(&Matrix::from_rows(&rows), &y)
    }

    #[test]
    fn decision_path_matches_prediction() {
        let t = step_tree();
        let (steps, v) = t.decision_path(&[3.0]);
        assert_eq!(v, t.predict_one(&[3.0]));
        assert_eq!(steps.len(), 1);
        assert!(steps[0].went_left);
        let (steps_r, v_r) = t.decision_path(&[15.0]);
        assert!(!steps_r[0].went_left);
        assert_eq!(v_r, 9.0);
    }

    #[test]
    fn explain_names_features() {
        let t = step_tree();
        let e = t.explain(&[3.0], &["ROB-Size".to_string()]);
        assert!(e.contains("ROB-Size"), "{e}");
        assert!(e.contains("predict 1 cycles"), "{e}");
    }

    #[test]
    fn to_text_renders_both_branches() {
        let t = step_tree();
        let s = t.to_text(&["x".to_string()], 5);
        assert!(s.contains("x <= 9.5") || s.contains("x <= 9.500"), "{s}");
        assert!(s.contains("leaf: 1"));
        assert!(s.contains("leaf: 9"));
    }

    #[test]
    fn depth_cap_elides() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        let t = DecisionTreeRegressor::fit(&Matrix::from_rows(&rows), &y);
        let s = t.to_text(&["x".to_string()], 2);
        assert!(s.contains("..."));
    }
}
