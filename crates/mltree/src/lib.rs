//! # armdse-mltree — from-scratch machine learning for surrogate modelling
//!
//! Implements the paper's modelling stack without external ML
//! dependencies:
//!
//! * [`tree`] — CART decision-tree regression with the exact
//!   configuration the paper uses (§V-C): mean-squared-error split
//!   criterion, best-split (not random) at every node, no maximum depth,
//!   no maximum leaf count, and single-sample leaves permitted.
//! * [`forest`] — a bagged random-forest regressor (the paper's
//!   "more complex surrogate model" future-work direction; used here for
//!   ablation benches).
//! * [`linear`] — ordinary least squares via normal equations (the
//!   baseline of the related work the paper modernises, P.J. Joseph et
//!   al.'s linear processor-performance models).
//! * [`importance`] — permutation feature importance exactly as §VI-B:
//!   shuffle one feature column, score with mean absolute error, repeat
//!   10 times, average, and normalise to a percentage of the summed error
//!   increase across features.
//! * [`explain`] — decision-path tracing and tree rendering (the
//!   interpretability that motivates the paper's model choice).
//! * [`partial`] — partial-dependence curves: the surrogate's cheap
//!   answer to the simulated parameter sweeps of Figs. 6–8.
//! * [`metrics`] — MAE/MSE/R², tolerance curves (Fig. 2's
//!   "% of predictions within X% of the true value"), and the mean
//!   relative accuracy headline (the paper's 93.38%).
//! * [`split`] — seeded randomised train/test splitting (the paper's
//!   80/20 split).

#![warn(missing_docs)]

pub mod explain;
pub mod forest;
pub mod importance;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod partial;
pub mod split;
pub mod tree;

pub use explain::PathStep;
pub use forest::{ForestParams, RandomForest};
pub use importance::{permutation_importance, ImportanceReport};
pub use linear::LinearRegression;
pub use matrix::{Dataset, Matrix};
pub use metrics::{mae, mean_relative_accuracy, mse, r2, within_tolerance};
pub use partial::{partial_dependence, partial_dependence_speedup};
pub use split::train_test_split;
pub use tree::DecisionTreeRegressor;

/// A fitted regression model that predicts a scalar target from a feature
/// row.
pub trait Regressor {
    /// Predict one row.
    fn predict_one(&self, row: &[f64]) -> f64;

    /// Predict every row of a matrix.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_one(x.row(r))).collect()
    }
}
