//! Regression metrics, including the paper's evaluation metrics.

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean squared error.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p) * (t - p)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fraction of predictions within `tol` (relative) of the true value —
/// the paper's Fig. 2 metric ("percentage of cycle predictions within the
/// specified confidence interval of the true simulated value").
pub fn within_tolerance(pred: &[f64], truth: &[f64], tol: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let hits = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| {
            let denom = t.abs().max(f64::MIN_POSITIVE);
            ((*p - *t) / denom).abs() <= tol
        })
        .count();
    hits as f64 / pred.len() as f64
}

/// Mean relative accuracy in percent — the paper's headline "the mean
/// accuracy of all results is 93.38%, meaning the average prediction is
/// 6.62% away from the simulated true result". Clamped below at 0.
pub fn mean_relative_accuracy(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean_rel_err = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| ((p - t) / t.abs().max(f64::MIN_POSITIVE)).abs())
        .sum::<f64>()
        / pred.len() as f64;
    (100.0 * (1.0 - mean_rel_err)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
        assert_eq!(within_tolerance(&t, &t, 0.0), 1.0);
        assert_eq!(mean_relative_accuracy(&t, &t), 100.0);
    }

    #[test]
    fn mae_and_mse_values() {
        let p = [2.0, 4.0];
        let t = [1.0, 2.0];
        assert_eq!(mae(&p, &t), 1.5);
        assert_eq!(mse(&p, &t), 2.5);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5, 2.5, 2.5, 2.5];
        assert!((r2(&mean, &truth)).abs() < 1e-12);
    }

    #[test]
    fn tolerance_counts_boundary_inclusive() {
        let p = [102.0, 110.0];
        let t = [100.0, 100.0];
        assert_eq!(within_tolerance(&p, &t, 0.02), 0.5);
        assert_eq!(within_tolerance(&p, &t, 0.10), 1.0);
        assert_eq!(within_tolerance(&p, &t, 0.01), 0.0);
    }

    #[test]
    fn accuracy_headline() {
        let p = [93.38, 106.62];
        let t = [100.0, 100.0];
        assert!((mean_relative_accuracy(&p, &t) - 93.38).abs() < 1e-9);
    }

    #[test]
    fn accuracy_clamped_at_zero() {
        let p = [500.0];
        let t = [100.0];
        assert_eq!(mean_relative_accuracy(&p, &t), 0.0);
    }

    #[test]
    fn constant_truth_r2() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 6.0], &[5.0, 5.0]), f64::NEG_INFINITY);
    }
}
