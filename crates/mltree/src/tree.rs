//! CART regression tree with MSE splitting.
//!
//! Matches the paper's scikit-learn configuration (§V-C): "minimal
//! constraints on the creation of new leaves — there are no maximum
//! numbers of leaves, a single sample can be considered as a new leaf, and
//! there is no maximum depth to the tree. The criterion to measure the
//! quality of each split is based on the mean squared error, with the
//! split at each node chosen to be the best found."

use crate::matrix::Matrix;
use crate::Regressor;

/// Hyper-parameters. The defaults reproduce the paper's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum depth (`None` = unbounded, the paper's choice).
    pub max_depth: Option<u32>,
    /// Minimum samples to attempt a split (paper: 2).
    pub min_samples_split: usize,
    /// Minimum samples in a leaf (paper: 1).
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Terminal node predicting the mean of its training targets.
    Leaf { value: f64, n: u32 },
    /// Internal split: rows with `x[feature] <= threshold` go left.
    Split {
        feature: u16,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeRegressor {
    nodes: Vec<Node>,
    n_features: usize,
    params: TreeParams,
}

impl DecisionTreeRegressor {
    /// Fit with the paper's default configuration.
    pub fn fit(x: &Matrix, y: &[f64]) -> DecisionTreeRegressor {
        DecisionTreeRegressor::fit_with(x, y, TreeParams::default(), None)
    }

    /// Fit with explicit hyper-parameters. `feature_mask`, when given,
    /// restricts the features considered at every split (used by the
    /// random forest).
    pub fn fit_with(
        x: &Matrix,
        y: &[f64],
        params: TreeParams,
        feature_mask: Option<&[usize]>,
    ) -> DecisionTreeRegressor {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let all_features: Vec<usize> = (0..x.cols()).collect();
        let features = feature_mask.unwrap_or(&all_features);

        let mut builder = Builder {
            x,
            y,
            params,
            features,
            nodes: Vec::new(),
            scratch: Vec::new(),
        };
        let mut indices: Vec<u32> = (0..x.rows() as u32).collect();
        let root = builder.alloc_node();
        builder.build(root, &mut indices, 0);
        DecisionTreeRegressor {
            nodes: builder.nodes,
            n_features: x.cols(),
            params,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> u32 {
        fn d(nodes: &[Node], i: u32) -> u32 {
            match nodes[i as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, left).max(d(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            d(&self.nodes, 0)
        }
    }

    /// Hyper-parameters the tree was fitted with.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Node accessor for the explanation module.
    pub(crate) fn node(&self, i: u32) -> crate::explain::ExplainNode {
        match &self.nodes[i as usize] {
            Node::Leaf { value, .. } => crate::explain::ExplainNode::Leaf { value: *value },
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => crate::explain::ExplainNode::Split {
                feature: *feature as usize,
                threshold: *threshold,
                left: *left,
                right: *right,
            },
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn predict_one(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut i = 0u32;
        loop {
            match self.nodes[i as usize] {
                Node::Leaf { value, .. } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature as usize] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Internal fitting state.
struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    params: TreeParams,
    features: &'a [usize],
    nodes: Vec<Node>,
    /// Reused (value, target) buffer for per-feature sorting.
    scratch: Vec<(f64, f64)>,
}

/// Result of the best-split search at one node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    /// Sum of squared errors after the split (left + right).
    sse: f64,
}

impl<'a> Builder<'a> {
    fn alloc_node(&mut self) -> u32 {
        self.nodes.push(Node::Leaf { value: 0.0, n: 0 });
        (self.nodes.len() - 1) as u32
    }

    fn build(&mut self, slot: u32, idx: &mut [u32], depth: u32) {
        let n = idx.len();
        let (sum, sumsq) = idx.iter().fold((0.0, 0.0), |(s, q), &i| {
            let v = self.y[i as usize];
            (s + v, q + v * v)
        });
        let mean = sum / n as f64;
        let node_sse = sumsq - sum * sum / n as f64;

        let depth_ok = self.params.max_depth.is_none_or(|d| depth < d);
        let splittable = n >= self.params.min_samples_split && depth_ok && node_sse > 1e-12;

        let best = if splittable {
            self.best_split(idx, sum)
        } else {
            None
        };
        match best {
            None => {
                self.nodes[slot as usize] = Node::Leaf {
                    value: mean,
                    n: n as u32,
                };
            }
            Some(b) => {
                // Partition in place: left = x[feature] <= threshold.
                let mut l = 0;
                let mut r = n;
                while l < r {
                    if self.x.get(idx[l] as usize, b.feature) <= b.threshold {
                        l += 1;
                    } else {
                        r -= 1;
                        idx.swap(l, r);
                    }
                }
                debug_assert!(l > 0 && l < n, "degenerate partition");
                let left = self.alloc_node();
                let right = self.alloc_node();
                self.nodes[slot as usize] = Node::Split {
                    feature: b.feature as u16,
                    threshold: b.threshold,
                    left,
                    right,
                };
                let (li, ri) = idx.split_at_mut(l);
                self.build(left, li, depth + 1);
                self.build(right, ri, depth + 1);
            }
        }
    }

    /// Exhaustive best split by MSE (equivalently, minimal post-split SSE).
    fn best_split(&mut self, idx: &[u32], total_sum: f64) -> Option<BestSplit> {
        let n = idx.len();
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<BestSplit> = None;

        for &f in self.features {
            self.scratch.clear();
            self.scratch.extend(
                idx.iter()
                    .map(|&i| (self.x.get(i as usize, f), self.y[i as usize])),
            );
            // total_cmp: feature values are finite by construction.
            self.scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sq: f64 = self.scratch.iter().map(|&(_, y)| y * y).sum();
            for k in 0..n - 1 {
                let (v, yv) = self.scratch[k];
                left_sum += yv;
                left_sq += yv * yv;
                let next_v = self.scratch[k + 1].0;
                if v == next_v {
                    continue; // cannot split between equal values
                }
                let nl = k + 1;
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / nl as f64)
                    + (right_sq - right_sum * right_sum / nr as f64);
                if best.as_ref().is_none_or(|b| sse < b.sse) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (v + next_v),
                        sse,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn xy(points: &[(f64, f64)]) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&points.iter().map(|&(a, _)| vec![a]).collect::<Vec<_>>());
        let y = points.iter().map(|&(_, b)| b).collect();
        (x, y)
    }

    #[test]
    fn perfectly_memorises_training_data_with_unit_leaves() {
        let (x, y) = xy(&[(1.0, 10.0), (2.0, 20.0), (3.0, 15.0), (4.0, 40.0)]);
        let t = DecisionTreeRegressor::fit(&x, &y);
        for (i, &target) in y.iter().enumerate() {
            assert_eq!(t.predict_one(x.row(i)), target);
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let (x, y) = xy(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        let t = DecisionTreeRegressor::fit(&x, &y);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[99.0]), 5.0);
    }

    #[test]
    fn step_function_learned_exactly() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, if i < 10 { 1.0 } else { 9.0 }))
            .collect();
        let (x, y) = xy(&pts);
        let t = DecisionTreeRegressor::fit(&x, &y);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.predict_one(&[3.0]), 1.0);
        assert_eq!(t.predict_one(&[15.0]), 9.0);
        // Threshold placed between the two plateaus.
        assert_eq!(t.predict_one(&[9.4]), 1.0);
        assert_eq!(t.predict_one(&[9.6]), 9.0);
    }

    #[test]
    fn duplicate_feature_values_never_split_apart() {
        // Two samples with identical x but different y cannot be separated.
        let (x, y) = xy(&[(1.0, 0.0), (1.0, 10.0)]);
        let t = DecisionTreeRegressor::fit(&x, &y);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[1.0]), 5.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let pts: Vec<(f64, f64)> = (0..32).map(|i| (i as f64, i as f64)).collect();
        let (x, y) = xy(&pts);
        let t = DecisionTreeRegressor::fit_with(
            &x,
            &y,
            TreeParams {
                max_depth: Some(2),
                ..Default::default()
            },
            None,
        );
        assert!(t.depth() <= 2);
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let pts: Vec<(f64, f64)> = (0..16).map(|i| (i as f64, (i * i) as f64)).collect();
        let (x, y) = xy(&pts);
        let t = DecisionTreeRegressor::fit_with(
            &x,
            &y,
            TreeParams {
                min_samples_leaf: 4,
                ..Default::default()
            },
            None,
        );
        fn check(nodes_n: &DecisionTreeRegressor) -> bool {
            // All leaves carry n >= 4; with 16 points that bounds the
            // leaf count at 4.
            nodes_n.leaf_count() <= 4
        }
        assert!(check(&t));
    }

    #[test]
    fn predictions_within_training_target_hull() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| ((i % 7) as f64, ((i * 13) % 41) as f64))
            .collect();
        let (x, y) = xy(&pts);
        let t = DecisionTreeRegressor::fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in 0..100 {
            let p = t.predict_one(&[q as f64 / 10.0]);
            assert!(
                (lo..=hi).contains(&p),
                "prediction {p} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn multifeature_split_picks_informative_feature() {
        // Feature 0 is noise; feature 1 determines y.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 3) as f64, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect();
        let x = Matrix::from_rows(&rows);
        let t = DecisionTreeRegressor::fit(&x, &y);
        assert_eq!(t.predict_one(&[0.0, 0.0]), 0.0);
        assert_eq!(t.predict_one(&[2.0, 1.0]), 100.0);
        // A perfect split on feature 1 needs exactly 3 nodes.
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn feature_mask_restricts_splits() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 2) as f64]).collect();
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let x = Matrix::from_rows(&rows);
        // Restricted to the uninformative-but-splittable feature 0, the
        // tree must work much harder (more nodes) than with feature 1.
        let t0 = DecisionTreeRegressor::fit_with(&x, &y, TreeParams::default(), Some(&[1]));
        assert_eq!(t0.node_count(), 3);
    }
}
