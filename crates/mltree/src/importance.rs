//! Permutation feature importance (paper §VI-B).
//!
//! "This method randomly shuffles the values of each feature before
//! predicting our output variable and scoring the model with the mean
//! absolute error criterion. This method is repeated 10 times, taking the
//! mean error as the permutation feature importance. Finally, we
//! contextualise this data by expressing the importance as the percentage
//! of the summed error increase across all features."

use crate::matrix::Matrix;
use crate::metrics::mae;
use crate::Regressor;
use armdse_rng::{SeedableRng, SliceRandom, Xoshiro256pp};

/// Number of shuffle repeats the paper uses.
pub const DEFAULT_REPEATS: usize = 10;

/// Importance result for one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Feature name.
    pub name: String,
    /// Mean MAE increase over the repeats (raw importance).
    pub mean_error_increase: f64,
    /// Importance as a percentage of the summed error increase across all
    /// features (the paper's reported metric; may be slightly negative
    /// for genuinely irrelevant features due to shuffle noise).
    pub percent: f64,
}

/// Importance report for a model over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceReport {
    /// Per-feature importances, in feature order.
    pub features: Vec<FeatureImportance>,
    /// Baseline (unshuffled) MAE.
    pub baseline_mae: f64,
}

impl ImportanceReport {
    /// Features sorted by descending percentage.
    pub fn ranked(&self) -> Vec<&FeatureImportance> {
        let mut v: Vec<&FeatureImportance> = self.features.iter().collect();
        v.sort_by(|a, b| b.percent.total_cmp(&a.percent));
        v
    }

    /// Importance percentage of a named feature.
    pub fn percent_of(&self, name: &str) -> Option<f64> {
        self.features
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.percent)
    }

    /// The top-`k` features by percentage.
    pub fn top(&self, k: usize) -> Vec<&FeatureImportance> {
        self.ranked().into_iter().take(k).collect()
    }
}

/// Compute permutation feature importance of `model` on (`x`, `y`).
pub fn permutation_importance(
    model: &dyn Regressor,
    x: &Matrix,
    y: &[f64],
    feature_names: &[String],
    repeats: usize,
    seed: u64,
) -> ImportanceReport {
    assert_eq!(x.rows(), y.len());
    assert_eq!(x.cols(), feature_names.len());
    assert!(repeats >= 1);
    let baseline = mae(&model.predict(x), y);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    let mut raw = vec![0.0f64; x.cols()];
    let mut shuffled = x.clone();
    for (f, slot) in raw.iter_mut().enumerate() {
        let original = x.col(f);
        let mut acc = 0.0;
        for _ in 0..repeats {
            let mut perm = original.clone();
            perm.shuffle(&mut rng);
            for (r, v) in perm.iter().enumerate() {
                shuffled.set(r, f, *v);
            }
            acc += mae(&model.predict(&shuffled), y);
        }
        // Restore the column before moving on.
        for (r, v) in original.iter().enumerate() {
            shuffled.set(r, f, *v);
        }
        *slot = acc / repeats as f64 - baseline;
    }

    let total: f64 = raw.iter().map(|v| v.max(0.0)).sum();
    let features = raw
        .iter()
        .zip(feature_names)
        .map(|(&inc, name)| FeatureImportance {
            name: name.clone(),
            mean_error_increase: inc,
            percent: if total > 0.0 {
                100.0 * inc / total
            } else {
                0.0
            },
        })
        .collect();
    ImportanceReport {
        features,
        baseline_mae: baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeRegressor;

    /// y depends strongly on feature 0, weakly on feature 1, not at all
    /// on feature 2.
    fn synthetic() -> (Matrix, Vec<f64>, Vec<String>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300u64 {
            // Deterministic pseudo-random features.
            let a = ((i * 2654435761) % 97) as f64;
            let b = ((i * 40503) % 89) as f64;
            let c = ((i * 9176) % 83) as f64;
            rows.push(vec![a, b, c]);
            y.push(10.0 * a + 1.0 * b);
        }
        (
            Matrix::from_rows(&rows),
            y,
            vec!["strong".into(), "weak".into(), "noise".into()],
        )
    }

    #[test]
    fn ranks_features_by_true_influence() {
        let (x, y, names) = synthetic();
        let t = DecisionTreeRegressor::fit(&x, &y);
        let rep = permutation_importance(&t, &x, &y, &names, 10, 42);
        let ranked = rep.ranked();
        assert_eq!(ranked[0].name, "strong");
        assert_eq!(ranked[1].name, "weak");
        assert!(rep.percent_of("strong").unwrap() > 60.0);
        assert!(rep.percent_of("noise").unwrap() < 10.0);
    }

    #[test]
    fn percentages_sum_to_about_100() {
        let (x, y, names) = synthetic();
        let t = DecisionTreeRegressor::fit(&x, &y);
        let rep = permutation_importance(&t, &x, &y, &names, 5, 0);
        let sum: f64 = rep.features.iter().map(|f| f.percent.max(0.0)).sum();
        assert!((sum - 100.0).abs() < 1.0, "sum {sum}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y, names) = synthetic();
        let t = DecisionTreeRegressor::fit(&x, &y);
        let a = permutation_importance(&t, &x, &y, &names, 3, 9);
        let b = permutation_importance(&t, &x, &y, &names, 3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_mae_zero_for_memorising_tree() {
        let (x, y, names) = synthetic();
        let t = DecisionTreeRegressor::fit(&x, &y);
        let rep = permutation_importance(&t, &x, &y, &names, 2, 1);
        assert!(rep.baseline_mae < 1e-9);
    }

    #[test]
    fn top_k_truncates() {
        let (x, y, names) = synthetic();
        let t = DecisionTreeRegressor::fit(&x, &y);
        let rep = permutation_importance(&t, &x, &y, &names, 2, 1);
        assert_eq!(rep.top(2).len(), 2);
        assert_eq!(rep.top(10).len(), 3);
    }
}
