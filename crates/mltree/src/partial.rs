//! Partial dependence: the surrogate-side view of a parameter sweep.
//!
//! The paper's purpose for the surrogate is to "accurately reason about
//! the full parameter space without the constraint of having to simulate
//! it all". Partial dependence operationalises that: for a grid of values
//! of one feature, every dataset row is re-predicted with that feature
//! overridden, and the predictions are averaged. The result is the
//! model's estimate of the feature's marginal effect — comparable
//! directly against a fresh simulated sweep (Figs. 6–8), at microseconds
//! instead of minutes.

use crate::matrix::Matrix;
use crate::Regressor;

/// Mean model prediction with `feature` forced to each grid value.
///
/// Returns `(value, mean_prediction)` pairs in grid order.
pub fn partial_dependence(
    model: &dyn Regressor,
    x: &Matrix,
    feature: usize,
    grid: &[f64],
) -> Vec<(f64, f64)> {
    assert!(feature < x.cols(), "feature index out of range");
    assert!(x.rows() > 0, "empty background dataset");
    let mut work = x.clone();
    grid.iter()
        .map(|&v| {
            for r in 0..work.rows() {
                work.set(r, feature, v);
            }
            let mean = model.predict(&work).iter().sum::<f64>() / work.rows() as f64;
            (v, mean)
        })
        .collect()
}

/// Speedup form of a partial-dependence curve: each point's mean
/// prediction relative to the first grid value (matching the paper's
/// "mean speedup relative to the minimum" presentation).
pub fn partial_dependence_speedup(
    model: &dyn Regressor,
    x: &Matrix,
    feature: usize,
    grid: &[f64],
) -> Vec<(f64, f64)> {
    let pd = partial_dependence(model, x, feature, grid);
    let reference = pd.first().map(|&(_, y)| y).unwrap_or(1.0);
    pd.into_iter().map(|(v, y)| (v, reference / y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeRegressor;

    /// y = 100 / max(x0, 1) + x1 (a saturating-speedup shape).
    fn model_and_data() -> (DecisionTreeRegressor, Matrix) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..400u64 {
            let a = (1 + (i * 7) % 16) as f64;
            let b = ((i * 13) % 5) as f64;
            rows.push(vec![a, b]);
            y.push(100.0 / a + b);
        }
        let x = Matrix::from_rows(&rows);
        (DecisionTreeRegressor::fit(&x, &y), x)
    }

    #[test]
    fn recovers_marginal_effect_direction() {
        let (m, x) = model_and_data();
        let pd = partial_dependence(&m, &x, 0, &[1.0, 4.0, 16.0]);
        assert!(pd[0].1 > pd[1].1, "{pd:?}");
        assert!(pd[1].1 > pd[2].1, "{pd:?}");
    }

    #[test]
    fn speedup_form_normalises_to_first() {
        let (m, x) = model_and_data();
        let sp = partial_dependence_speedup(&m, &x, 0, &[1.0, 4.0, 16.0]);
        assert_eq!(sp[0].1, 1.0);
        assert!(sp[2].1 > sp[1].1 && sp[1].1 > 1.0, "{sp:?}");
    }

    #[test]
    fn irrelevant_feature_is_flat() {
        // Feature 1 contributes only +-2; PD over it moves little
        // relative to feature 0's 100x span.
        let (m, x) = model_and_data();
        let pd = partial_dependence(&m, &x, 1, &[0.0, 4.0]);
        let delta = (pd[0].1 - pd[1].1).abs();
        assert!(delta < 10.0, "{pd:?}");
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn rejects_bad_feature() {
        let (m, x) = model_and_data();
        partial_dependence(&m, &x, 9, &[1.0]);
    }
}
