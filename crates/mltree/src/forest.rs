//! Bagged random-forest regression.
//!
//! The paper's conclusion names "a more complex surrogate model" as future
//! work; the forest is that extension, and the ablation benches compare
//! it against the paper's single decision tree (variance reduction versus
//! interpretability — the single tree remains the paper's choice because
//! its structure and importances are directly inspectable).

use crate::matrix::Matrix;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::Regressor;
use armdse_rng::{Rng, SeedableRng, SliceRandom, Xoshiro256pp};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Features considered per tree (`None` = all features, matching
    /// scikit-learn's regression-forest default; variance reduction then
    /// comes from bagging alone).
    pub max_features: Option<usize>,
    /// Per-tree parameters.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 32,
            max_features: None,
            tree: TreeParams::default(),
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForest {
    /// Fit with defaults and a seed.
    pub fn fit(x: &Matrix, y: &[f64], seed: u64) -> RandomForest {
        RandomForest::fit_with(x, y, ForestParams::default(), seed)
    }

    /// Fit with explicit hyper-parameters.
    pub fn fit_with(x: &Matrix, y: &[f64], params: ForestParams, seed: u64) -> RandomForest {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0 && params.n_trees > 0);
        let n = x.rows();
        let n_feat = x.cols();
        let m_feat = params.max_features.unwrap_or(n_feat).min(n_feat);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);

        let mut trees = Vec::with_capacity(params.n_trees);
        let mut boot_x_rows: Vec<usize> = Vec::with_capacity(n);
        for _ in 0..params.n_trees {
            // Bootstrap sample (with replacement).
            boot_x_rows.clear();
            boot_x_rows.extend((0..n).map(|_| rng.gen_range(0..n)));
            let bx = x.select_rows(&boot_x_rows);
            let by: Vec<f64> = boot_x_rows.iter().map(|&i| y[i]).collect();
            // Feature subsample per tree.
            let mut feats: Vec<usize> = (0..n_feat).collect();
            feats.shuffle(&mut rng);
            feats.truncate(m_feat);
            feats.sort_unstable();
            trees.push(DecisionTreeRegressor::fit_with(
                &bx,
                &by,
                params.tree,
                Some(&feats),
            ));
        }
        RandomForest { trees }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted member trees; the forest's prediction is their mean.
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        &self.trees
    }
}

impl Regressor for RandomForest {
    fn predict_one(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    fn noisy_quadratic() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 40) as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * r[0] + ((i * 31) % 11) as f64)
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_signal() {
        let (x, y) = noisy_quadratic();
        let f = RandomForest::fit(&x, &y, 42);
        let preds = f.predict(&x);
        // Noise amplitude is ~11; forest should be within it on average.
        assert!(mae(&preds, &y) < 11.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_quadratic();
        let a = RandomForest::fit(&x, &y, 7);
        let b = RandomForest::fit(&x, &y, 7);
        assert_eq!(a.predict_one(&[13.0]), b.predict_one(&[13.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_quadratic();
        let a = RandomForest::fit(&x, &y, 1);
        let b = RandomForest::fit(&x, &y, 2);
        assert_ne!(a.predict_one(&[13.5]), b.predict_one(&[13.5]));
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = noisy_quadratic();
        let p = ForestParams {
            n_trees: 5,
            ..Default::default()
        };
        assert_eq!(RandomForest::fit_with(&x, &y, p, 0).n_trees(), 5);
    }

    #[test]
    fn prediction_is_ensemble_mean_within_hull() {
        let (x, y) = noisy_quadratic();
        let f = RandomForest::fit(&x, &y, 3);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in 0..40 {
            let p = f.predict_one(&[q as f64]);
            assert!((lo..=hi).contains(&p));
        }
    }
}
