//! Bagged random-forest regression.
//!
//! The paper's conclusion names "a more complex surrogate model" as future
//! work; the forest is that extension, and the ablation benches compare
//! it against the paper's single decision tree (variance reduction versus
//! interpretability — the single tree remains the paper's choice because
//! its structure and importances are directly inspectable).
//!
//! ## Incremental refits and ensemble variance
//!
//! The adaptive explorer retrains its surrogate after every simulated
//! batch, so the forest supports a warm-start protocol:
//! [`RandomForest::warm_start`] builds an empty ensemble and
//! [`RandomForest::partial_refit`] refits a rotating half of the trees
//! on a bootstrap of the rows accumulated so far. Each (round, tree)
//! pair derives its own RNG stream from the forest seed, so the fitted
//! ensemble after any sequence of refits is a pure function of
//! `(seed, params, per-round datasets)` — which is what lets a resumed
//! exploration replay its model history byte-identically. Acquisition
//! uses [`RandomForest::predict_variance`], the population variance of
//! the member trees' predictions (the bagging disagreement signal).

use crate::matrix::Matrix;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::Regressor;
use armdse_rng::{Rng, SeedableRng, SliceRandom, Xoshiro256pp};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Features considered per tree (`None` = all features, matching
    /// scikit-learn's regression-forest default; variance reduction then
    /// comes from bagging alone).
    pub max_features: Option<usize>,
    /// Per-tree parameters.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 32,
            max_features: None,
            tree: TreeParams::default(),
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTreeRegressor>,
    params: ForestParams,
    seed: u64,
}

impl RandomForest {
    /// Fit with defaults and a seed.
    pub fn fit(x: &Matrix, y: &[f64], seed: u64) -> RandomForest {
        RandomForest::fit_with(x, y, ForestParams::default(), seed)
    }

    /// Fit with explicit hyper-parameters.
    pub fn fit_with(x: &Matrix, y: &[f64], params: ForestParams, seed: u64) -> RandomForest {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0 && params.n_trees > 0);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let trees = (0..params.n_trees)
            .map(|_| fit_tree(x, y, params, &mut rng))
            .collect();
        RandomForest {
            trees,
            params,
            seed,
        }
    }

    /// An empty warm-start ensemble: no trees yet (so no predictions),
    /// ready to grow through [`RandomForest::partial_refit`].
    pub fn warm_start(params: ForestParams, seed: u64) -> RandomForest {
        assert!(params.n_trees > 0);
        RandomForest {
            trees: Vec::new(),
            params,
            seed,
        }
    }

    /// Incrementally refit on the rows accumulated so far.
    ///
    /// The first call fits every tree; later calls refit a rotating
    /// window of `⌈n_trees / 2⌉` trees on fresh bootstraps of `(x, y)`
    /// and keep the rest warm (they stay fitted to the earlier, smaller
    /// dataset until their window comes round). Two consecutive calls on
    /// the same data therefore refresh the whole ensemble, which is what
    /// bounds the divergence from a from-scratch fit (pinned by
    /// `tests/incremental.rs`).
    ///
    /// Determinism: tree `t` refit at round `r` always draws from the
    /// RNG stream seeded by `(forest seed, r, t)` — never from shared
    /// mutable RNG state — so the ensemble after any refit history is a
    /// pure function of the per-round datasets. Callers replaying a
    /// checkpointed exploration rely on this.
    pub fn partial_refit(&mut self, x: &Matrix, y: &[f64], round: u64) {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0, "cannot refit on an empty dataset");
        let n_trees = self.params.n_trees;
        let refit_one = |t: usize| {
            // Decorrelate the (round, tree) streams with distinct odd
            // multipliers (SplitMix64-style Weyl constants).
            let stream = self
                .seed
                .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((t as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            let mut rng = Xoshiro256pp::seed_from_u64(stream);
            fit_tree(x, y, self.params, &mut rng)
        };
        if self.trees.is_empty() {
            self.trees = (0..n_trees).map(refit_one).collect();
            return;
        }
        let refresh = n_trees.div_ceil(2);
        for k in 0..refresh {
            let t = (round as usize * refresh + k) % n_trees;
            self.trees[t] = refit_one(t);
        }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted member trees; the forest's prediction is their mean.
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        &self.trees
    }

    /// Population variance of the member trees' predictions at `row` —
    /// the ensemble-disagreement signal acquisition functions use as
    /// epistemic uncertainty. Computed with the two-pass (mean, then
    /// squared-deviation) formula: the one-pass `E[x²] − E[x]²` form
    /// loses to catastrophic cancellation at cycle-count magnitudes
    /// (~1e7² summed across trees) and can return small negative values.
    /// Guaranteed non-negative and finite for finite predictions.
    pub fn predict_variance(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "variance of an unfitted forest");
        let n = self.trees.len() as f64;
        let mean = self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / n;
        let var = self
            .trees
            .iter()
            .map(|t| {
                let d = t.predict_one(row) - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        // The two-pass sum of squares is non-negative by construction;
        // max(0) documents the invariant against future refactors.
        var.max(0.0)
    }
}

/// Fit one bootstrap tree, drawing the bootstrap rows and the feature
/// subsample from `rng` (shared by [`RandomForest::fit_with`]'s
/// sequential stream and [`RandomForest::partial_refit`]'s per-(round,
/// tree) streams).
fn fit_tree(
    x: &Matrix,
    y: &[f64],
    params: ForestParams,
    rng: &mut Xoshiro256pp,
) -> DecisionTreeRegressor {
    let n = x.rows();
    let n_feat = x.cols();
    let m_feat = params.max_features.unwrap_or(n_feat).min(n_feat);
    // Bootstrap sample (with replacement).
    let boot_x_rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    let bx = x.select_rows(&boot_x_rows);
    let by: Vec<f64> = boot_x_rows.iter().map(|&i| y[i]).collect();
    // Feature subsample per tree.
    let mut feats: Vec<usize> = (0..n_feat).collect();
    feats.shuffle(rng);
    feats.truncate(m_feat);
    feats.sort_unstable();
    DecisionTreeRegressor::fit_with(&bx, &by, params.tree, Some(&feats))
}

impl Regressor for RandomForest {
    fn predict_one(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    fn noisy_quadratic() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 40) as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * r[0] + ((i * 31) % 11) as f64)
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_signal() {
        let (x, y) = noisy_quadratic();
        let f = RandomForest::fit(&x, &y, 42);
        let preds = f.predict(&x);
        // Noise amplitude is ~11; forest should be within it on average.
        assert!(mae(&preds, &y) < 11.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_quadratic();
        let a = RandomForest::fit(&x, &y, 7);
        let b = RandomForest::fit(&x, &y, 7);
        assert_eq!(a.predict_one(&[13.0]), b.predict_one(&[13.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_quadratic();
        let a = RandomForest::fit(&x, &y, 1);
        let b = RandomForest::fit(&x, &y, 2);
        assert_ne!(a.predict_one(&[13.5]), b.predict_one(&[13.5]));
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = noisy_quadratic();
        let p = ForestParams {
            n_trees: 5,
            ..Default::default()
        };
        assert_eq!(RandomForest::fit_with(&x, &y, p, 0).n_trees(), 5);
    }

    #[test]
    fn warm_start_first_refit_fits_every_tree() {
        let (x, y) = noisy_quadratic();
        let mut f = RandomForest::warm_start(ForestParams::default(), 9);
        assert_eq!(f.n_trees(), 0);
        f.partial_refit(&x, &y, 0);
        assert_eq!(f.n_trees(), ForestParams::default().n_trees);
        let preds = f.predict(&x);
        assert!(crate::metrics::mae(&preds, &y) < 11.0);
    }

    #[test]
    fn partial_refit_is_deterministic_and_round_sensitive() {
        let (x, y) = noisy_quadratic();
        let mut a = RandomForest::warm_start(ForestParams::default(), 3);
        let mut b = RandomForest::warm_start(ForestParams::default(), 3);
        a.partial_refit(&x, &y, 0);
        b.partial_refit(&x, &y, 0);
        assert_eq!(a, b);
        a.partial_refit(&x, &y, 1);
        assert_ne!(a, b, "round 1 must refresh a window of trees");
        b.partial_refit(&x, &y, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn partial_refit_refreshes_a_rotating_half() {
        let p = ForestParams {
            n_trees: 8,
            ..Default::default()
        };
        let (x, y) = noisy_quadratic();
        let mut f = RandomForest::warm_start(p, 5);
        f.partial_refit(&x, &y, 0);
        let before = f.clone();
        f.partial_refit(&x, &y, 1);
        let changed = before
            .trees()
            .iter()
            .zip(f.trees())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 4, "round 1 refreshes trees 4..8");
    }

    #[test]
    fn variance_is_zero_on_constant_targets() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![7.5; 30];
        let f = RandomForest::fit(&Matrix::from_rows(&rows), &y, 11);
        // Every bootstrap sees only 7.5: all trees agree everywhere.
        assert_eq!(f.predict_variance(&[4.2]), 0.0);
    }

    #[test]
    fn prediction_is_ensemble_mean_within_hull() {
        let (x, y) = noisy_quadratic();
        let f = RandomForest::fit(&x, &y, 3);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in 0..40 {
            let p = f.predict_one(&[q as f64]);
            assert!((lo..=hi).contains(&p));
        }
    }
}
