//! Dense row-major matrix and labelled dataset containers.

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An empty matrix with `cols` columns.
    pub fn new(cols: usize) -> Matrix {
        assert!(cols > 0, "matrix needs at least one column");
        Matrix {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::new(cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append a row.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set element at (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// New matrix containing the given rows, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut m = Matrix::new(self.cols);
        for &r in idx {
            m.push_row(self.row(r));
        }
        m
    }
}

/// A labelled dataset: features, target, and feature names.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix (one row per sample).
    pub x: Matrix,
    /// Target vector (the paper's: simulated execution cycles).
    pub y: Vec<f64>,
    /// Column names, used in importance reports.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, checking shape consistency.
    pub fn new(x: Matrix, y: Vec<f64>, feature_names: Vec<String>) -> Dataset {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        assert_eq!(x.cols(), feature_names.len(), "x/name width mismatch");
        Dataset {
            x,
            y,
            feature_names,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Sub-dataset with the given row indices.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Rows satisfying a predicate on (features, target).
    pub fn filter(&self, mut pred: impl FnMut(&[f64], f64) -> bool) -> Dataset {
        let idx: Vec<usize> = (0..self.len())
            .filter(|&i| pred(self.x.row(i), self.y[i]))
            .collect();
        self.select(&idx)
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn shape_and_access() {
        let m = m();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn set_mutates() {
        let mut m = m();
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn select_rows_reorders() {
        let s = m().select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut m = Matrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn dataset_filter_and_select() {
        let d = Dataset::new(m(), vec![10.0, 20.0, 30.0], vec!["a".into(), "b".into()]);
        let f = d.filter(|row, _| row[0] > 2.0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.y, vec![20.0, 30.0]);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("z"), None);
    }

    #[test]
    #[should_panic(expected = "x/y length mismatch")]
    fn dataset_checks_shape() {
        Dataset::new(m(), vec![1.0], vec!["a".into(), "b".into()]);
    }
}
