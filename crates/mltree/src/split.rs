//! Seeded randomised train/test splitting (the paper's 80/20 split).

use crate::matrix::Dataset;
use armdse_rng::{SeedableRng, SliceRandom, Xoshiro256pp};

/// Split `data` into (train, test) with `test_frac` of rows in the test
/// set, shuffled deterministically by `seed`.
pub fn train_test_split(data: &Dataset, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_frac),
        "test_frac must be in [0, 1)"
    );
    let n = data.len();
    assert!(n >= 2, "need at least two samples to split");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * test_frac).round() as usize;
    let n_test = n_test.clamp(1, n - 1);
    let (test_idx, train_idx) = idx.split_at(n_test);
    (data.select(train_idx), data.select(test_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        Dataset::new(
            Matrix::from_rows(&rows),
            (0..n).map(|i| i as f64).collect(),
            vec!["f".into()],
        )
    }

    #[test]
    fn sizes_add_up() {
        let d = data(100);
        let (train, test) = train_test_split(&d, 0.2, 42);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let d = data(50);
        let (train, test) = train_test_split(&d, 0.2, 7);
        let mut seen: Vec<f64> = train.y.iter().chain(test.y.iter()).copied().collect();
        seen.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let d = data(64);
        let (a1, _) = train_test_split(&d, 0.25, 1);
        let (a2, _) = train_test_split(&d, 0.25, 1);
        let (b, _) = train_test_split(&d, 0.25, 2);
        assert_eq!(a1.y, a2.y);
        assert_ne!(a1.y, b.y);
    }

    #[test]
    fn never_produces_empty_side() {
        let d = data(3);
        let (train, test) = train_test_split(&d, 0.01, 0);
        assert!(!train.is_empty() && !test.is_empty());
        let (train, test) = train_test_split(&d, 0.99, 0);
        assert!(!train.is_empty() && !test.is_empty());
    }
}
