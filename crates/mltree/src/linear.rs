//! Ordinary least squares by normal equations.
//!
//! The baseline model family of the related work the paper modernises
//! (P.J. Joseph et al., "Construction and use of linear regression models
//! for processor performance analysis", HPCA 2006). Used here as the
//! comparison baseline in the ablation benches: the paper argues decision
//! trees capture the non-linear parameter interactions linear models miss.

use crate::matrix::Matrix;
use crate::Regressor;

/// A fitted linear model `y = w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fit by solving the (ridge-stabilised) normal equations
    /// `(XᵀX + εI) w = Xᵀy` with Gaussian elimination; `ε = 1e-8` guards
    /// against rank deficiency without meaningfully biasing the fit.
    pub fn fit(x: &Matrix, y: &[f64]) -> LinearRegression {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0);
        let n = x.rows();
        let d = x.cols() + 1; // + intercept column

        // Gram matrix and right-hand side over the augmented design.
        let mut a = vec![0.0f64; d * d];
        let mut b = vec![0.0f64; d];
        let aug = |row: &[f64], j: usize| if j < row.len() { row[j] } else { 1.0 };
        for (r, &yr) in y.iter().enumerate().take(n) {
            let row = x.row(r);
            for i in 0..d {
                let xi = aug(row, i);
                b[i] += xi * yr;
                for j in 0..d {
                    a[i * d + j] += xi * aug(row, j);
                }
            }
        }
        for i in 0..d {
            a[i * d + i] += 1e-8;
        }

        let w = solve(&mut a, &mut b, d);
        LinearRegression {
            weights: w[..d - 1].to_vec(),
            intercept: w[d - 1],
        }
    }

    /// Fitted weight per feature.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for LinearRegression {
    fn predict_one(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.weights.len());
        self.intercept
            + row
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }
}

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
fn solve(a: &mut [f64], b: &mut [f64], d: usize) -> Vec<f64> {
    for col in 0..d {
        // Pivot.
        let (pivot, _) = (col..d)
            .map(|r| (r, a[r * d + col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty");
        if pivot != col {
            for j in 0..d {
                a.swap(col * d + j, pivot * d + j);
            }
            b.swap(col, pivot);
        }
        let p = a[col * d + col];
        assert!(p.abs() > 0.0, "singular system despite ridge");
        for r in col + 1..d {
            let f = a[r * d + col] / p;
            if f == 0.0 {
                continue;
            }
            for j in col..d {
                a[r * d + j] -= f * a[col * d + j];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; d];
    for col in (0..d).rev() {
        let mut v = b[col];
        for j in col + 1..d {
            v -= a[col * d + j] * x[j];
        }
        x[col] = v / a[col * d + col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3a - 2b + 5
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let x = Matrix::from_rows(&rows);
        let m = LinearRegression::fit(&x, &y);
        assert!((m.weights()[0] - 3.0).abs() < 1e-6);
        assert!((m.weights()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
        assert!((m.predict_one(&[2.0, 1.0]) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn handles_constant_feature() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows);
        let m = LinearRegression::fit(&x, &y);
        assert!((m.predict_one(&[10.0, 1.0]) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn underfits_step_function() {
        // The motivation for the paper's tree choice: a step cannot be
        // captured linearly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 100.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let m = LinearRegression::fit(&x, &y);
        let preds = m.predict(&x);
        let e = crate::metrics::mae(&preds, &y);
        assert!(e > 10.0, "linear model should not fit a step (mae {e})");
    }

    #[test]
    fn single_sample_fits() {
        let x = Matrix::from_rows(&[vec![2.0]]);
        let m = LinearRegression::fit(&x, &[4.0]);
        assert!((m.predict_one(&[2.0]) - 4.0).abs() < 1e-6);
    }
}
