//! Incremental-forest contract: the warm-start/partial-refit protocol
//! the adaptive explorer trains through must (a) never report a
//! negative prediction variance — the acquisition function takes a
//! square root of it — and (b) converge to a from-scratch fit once the
//! rotating refresh window has covered every tree on the full dataset.
//!
//! (b) is a tolerance check, not equality: a from-scratch fit draws its
//! bootstraps from one sequential RNG stream while partial refits draw
//! per-(round, tree) streams, so the two ensembles are different members
//! of the same bootstrap distribution. What must agree is what they
//! learned.

use armdse_mltree::{mae, r2, ForestParams, Matrix, RandomForest, Regressor};

/// A deterministic nonlinear target at cycle-count magnitudes (~1e7),
/// where a one-pass variance formula would lose to cancellation.
fn dataset(n: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let a = (i % 17) as f64;
            let b = ((i * 7) % 13) as f64;
            let c = ((i * 31) % 5) as f64;
            vec![a, b, c]
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| 1.0e7 + 4.0e5 * r[0] * r[0] + 3.0e5 * r[0] * r[1] + ((i * 97) % 1000) as f64)
        .collect();
    (Matrix::from_rows(&rows), y)
}

#[test]
fn prediction_variance_is_nonnegative_and_finite_everywhere() {
    let (x, y) = dataset(300);
    for seed in 0..5u64 {
        let f = RandomForest::fit(&x, &y, seed);
        for r in 0..x.rows() {
            let v = f.predict_variance(x.row(r));
            assert!(v.is_finite(), "seed {seed} row {r}: variance {v}");
            assert!(v >= 0.0, "seed {seed} row {r}: negative variance {v}");
        }
        // Off-grid probes too (the explorer scores unseen candidates).
        for q in 0..50 {
            let row = [q as f64 * 0.37, q as f64 * 0.11, (q % 7) as f64];
            let v = f.predict_variance(&row);
            assert!(v >= 0.0 && v.is_finite(), "probe {q}: variance {v}");
        }
    }
}

#[test]
fn variance_is_zero_when_all_trees_agree() {
    // A constant target forces every bootstrap tree to the same single
    // leaf; ensemble disagreement must be exactly zero, not epsilon.
    let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 9) as f64]).collect();
    let y = vec![2.5e7; 64];
    let f = RandomForest::fit(&Matrix::from_rows(&rows), &y, 42);
    for q in 0..40 {
        assert_eq!(f.predict_variance(&[q as f64, (q % 5) as f64]), 0.0);
    }
}

#[test]
fn partial_refit_on_full_data_converges_to_a_from_scratch_fit() {
    let (x, y) = dataset(400);
    let params = ForestParams::default();

    // Incremental path: grow through prefixes the way the explorer
    // streams rows in, then refresh twice on the full dataset (the
    // rotating half-window covers every tree in two rounds).
    let mut warm = RandomForest::warm_start(params, 77);
    let mut round = 0u64;
    for frac in [100, 200, 300, 400] {
        let xs = Matrix::from_rows(&(0..frac).map(|r| x.row(r).to_vec()).collect::<Vec<_>>());
        warm.partial_refit(&xs, &y[..frac], round);
        round += 1;
    }
    warm.partial_refit(&x, &y, round);
    warm.partial_refit(&x, &y, round + 1);

    let scratch = RandomForest::fit_with(&x, &y, params, 77);
    let pw = warm.predict(&x);
    let ps = scratch.predict(&x);

    // Both ensembles must have learned the signal...
    assert!(r2(&pw, &y) > 0.95, "warm R² {}", r2(&pw, &y));
    assert!(r2(&ps, &y) > 0.95, "scratch R² {}", r2(&ps, &y));
    // ...and must agree with each other to within bootstrap noise:
    // their mutual MAE must be a small fraction of the target's spread.
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let disagreement = mae(&pw, &ps) / (hi - lo);
    assert!(
        disagreement < 0.02,
        "converged partial refit diverges from a from-scratch fit by {:.3}% of the target range",
        100.0 * disagreement
    );
}

#[test]
fn stale_trees_are_valid_until_their_window_comes_round() {
    // After one refit on a prefix and one rotating refresh on the full
    // data, half the ensemble is stale — predictions must still be
    // finite and inside the training hull (stale trees saw a subset of
    // the same rows, never garbage).
    let (x, y) = dataset(200);
    let mut f = RandomForest::warm_start(ForestParams::default(), 5);
    let xs = Matrix::from_rows(&(0..100).map(|r| x.row(r).to_vec()).collect::<Vec<_>>());
    f.partial_refit(&xs, &y[..100], 0);
    f.partial_refit(&x, &y, 1);
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for r in 0..x.rows() {
        let p = f.predict_one(x.row(r));
        assert!((lo..=hi).contains(&p), "row {r}: {p} outside [{lo}, {hi}]");
    }
}
