//! Property-style seeded sweeps over the surrogate-model stack.
//!
//! Rather than pinning exact outputs, these tests assert structural
//! properties that must hold for *every* dataset: CART predictions are
//! means over training targets and so can never leave the target hull;
//! permutation importances are finite (and non-negative on training data,
//! where the baseline error of a memorising tree is zero); and a random
//! forest's prediction is exactly the mean of its member trees'.

use armdse_mltree::{
    permutation_importance, DecisionTreeRegressor, Matrix, RandomForest, Regressor,
};
use armdse_rng::{Rng, SeedableRng, Xoshiro256pp};

/// A random regression dataset: 40–120 rows, 3–6 features, targets built
/// from a random linear mix plus interactions, so trees have real
/// structure to find.
fn random_dataset(rng: &mut Xoshiro256pp) -> (Matrix, Vec<f64>) {
    let rows = rng.gen_range(40..=120usize);
    let cols = rng.gen_range(3..=6usize);
    let coeffs: Vec<f64> = (0..cols).map(|_| rng.gen_f64() * 20.0 - 10.0).collect();
    let mut x = Matrix::new(cols);
    let mut y = Vec::with_capacity(rows);
    for _ in 0..rows {
        let row: Vec<f64> = (0..cols).map(|_| rng.gen_f64() * 200.0 - 100.0).collect();
        let mut t: f64 = row.iter().zip(&coeffs).map(|(v, c)| v * c).sum();
        t += row[0] * row[1] / 10.0; // nonlinearity
        x.push_row(&row);
        y.push(t);
    }
    (x, y)
}

fn target_hull(y: &[f64]) -> (f64, f64) {
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[test]
fn tree_predictions_never_leave_the_training_target_range() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB0B0);
    for ds in 0..12 {
        let (x, y) = random_dataset(&mut rng);
        let (lo, hi) = target_hull(&y);
        let t = DecisionTreeRegressor::fit(&x, &y);
        // Query far outside the training distribution too: leaf means
        // still bound the output.
        for _ in 0..50 {
            let q: Vec<f64> = (0..x.cols())
                .map(|_| rng.gen_f64() * 2000.0 - 1000.0)
                .collect();
            let p = t.predict_one(&q);
            assert!(
                (lo..=hi).contains(&p),
                "dataset {ds}: tree prediction {p} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn forest_predictions_never_leave_the_training_target_range() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xF0F0);
    for ds in 0..8 {
        let (x, y) = random_dataset(&mut rng);
        let (lo, hi) = target_hull(&y);
        let f = RandomForest::fit(&x, &y, ds);
        for _ in 0..30 {
            let q: Vec<f64> = (0..x.cols())
                .map(|_| rng.gen_f64() * 2000.0 - 1000.0)
                .collect();
            let p = f.predict_one(&q);
            assert!(
                (lo..=hi).contains(&p),
                "dataset {ds}: forest prediction {p} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn forest_prediction_is_exactly_the_mean_of_member_trees() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC0DE);
    for ds in 0..8 {
        let (x, y) = random_dataset(&mut rng);
        let f = RandomForest::fit(&x, &y, 1000 + ds);
        assert!(f.n_trees() > 0);
        assert_eq!(f.trees().len(), f.n_trees());
        for _ in 0..20 {
            let q: Vec<f64> = (0..x.cols())
                .map(|_| rng.gen_f64() * 200.0 - 100.0)
                .collect();
            let mean: f64 =
                f.trees().iter().map(|t| t.predict_one(&q)).sum::<f64>() / f.n_trees() as f64;
            let p = f.predict_one(&q);
            assert!(
                (p - mean).abs() <= 1e-9 * mean.abs().max(1.0),
                "dataset {ds}: forest {p} != tree mean {mean}"
            );
        }
    }
}

#[test]
fn permutation_importances_are_finite_and_nonnegative_on_training_data() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xFEED);
    for ds in 0..6 {
        let (x, y) = random_dataset(&mut rng);
        let names: Vec<String> = (0..x.cols()).map(|c| format!("f{c}")).collect();
        // A fully grown CART memorises the training set (baseline MAE 0),
        // so shuffling a column can only increase the error: every raw
        // importance must be >= 0, and every figure finite.
        let t = DecisionTreeRegressor::fit(&x, &y);
        let rep = permutation_importance(&t, &x, &y, &names, 5, 77 + ds);
        assert!(
            rep.baseline_mae.abs() < 1e-9,
            "dataset {ds}: tree did not memorise"
        );
        let mut positive_sum = 0.0;
        for fi in &rep.features {
            assert!(
                fi.mean_error_increase.is_finite() && fi.percent.is_finite(),
                "dataset {ds}: non-finite importance {fi:?}"
            );
            assert!(
                fi.mean_error_increase >= 0.0,
                "dataset {ds}: negative raw importance {fi:?}"
            );
            assert!(fi.percent >= 0.0, "dataset {ds}: negative percent {fi:?}");
            positive_sum += fi.percent;
        }
        // Percentages are defined as shares of the summed increase: they
        // total ~100 whenever any feature matters (always, here).
        assert!(
            (positive_sum - 100.0).abs() < 1e-6,
            "dataset {ds}: percents sum to {positive_sum}"
        );
    }
}

#[test]
fn importance_sweep_is_deterministic_per_seed() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xD00D);
    let (x, y) = random_dataset(&mut rng);
    let names: Vec<String> = (0..x.cols()).map(|c| format!("f{c}")).collect();
    let f = RandomForest::fit(&x, &y, 5);
    let a = permutation_importance(&f, &x, &y, &names, 4, 123);
    let b = permutation_importance(&f, &x, &y, &names, 4, 123);
    assert_eq!(a, b);
    for fi in &a.features {
        assert!(fi.mean_error_increase.is_finite() && fi.percent.is_finite());
    }
}
