//! # armdse-isa — Arm-like ISA model
//!
//! This crate defines the vocabulary shared between the workload generators
//! (`armdse-kernels`) and the out-of-order core model (`armdse-simcore`):
//!
//! * [`reg`] — architectural register classes (general-purpose, FP/SVE,
//!   SVE predicate, condition flags) mirroring the four physical register
//!   files the paper varies (Table II).
//! * [`op`] — instruction operation classes with their fixed execution
//!   latencies and port bindings. The paper fixes the execution-unit design
//!   ("the design of the execution units, ports, reservation stations, and
//!   instruction execution latency are fixed"), so latencies live here as
//!   constants rather than design-space parameters.
//! * [`instr`] — static instruction templates and dynamic (per-retirement)
//!   instruction instances.
//! * [`kir`] — a tiny kernel IR: affine loop nests over instruction
//!   templates, the form in which the four HPC workloads are expressed.
//! * [`program`] — the lowered, flat representation executed by the core
//!   model, with explicit loop-end branches and static program counters.
//! * [`cursor`] — a lazy trace cursor producing the dynamic instruction
//!   stream (the stand-in for the statically compiled Arm binary's
//!   instruction stream).
//! * [`summary`] — static operation-count summaries used for workload
//!   validation (the stand-in for each app's built-in output validation).
//!
//! ## Vector-length agnosticism
//!
//! The paper compiles every binary with `-msve-vector-bits=scalable` so one
//! binary serves every vector length. We mirror that: kernel generators take
//! the vector length as a parameter and emit loop trip counts of
//! `ceil(elements / lanes)`, exactly what a VLA binary's `whilelo`-governed
//! loop retires at runtime. An SVE instruction is a single macro-op whatever
//! the vector length; only its memory footprint (`VL/8` bytes for a
//! contiguous load) scales.

#![warn(missing_docs)]

pub mod cursor;
pub mod instr;
pub mod kir;
pub mod op;
pub mod program;
pub mod reg;
pub mod summary;

pub use cursor::{CursorPos, TraceCursor};
pub use instr::{DynInstr, InstrTemplate, MemKind, MemRef, MemTemplate};
pub use kir::{AddrExpr, Kernel, Stmt};
pub use op::{OpClass, PortClass};
pub use program::{Program, StaticInstr};
pub use reg::{Reg, RegClass};
pub use summary::OpSummary;

/// Number of bytes occupied by one (fixed-width) Arm instruction.
///
/// Fetch-block sizes in the design space are expressed in bytes; dividing by
/// this constant yields the number of instructions a fetch block delivers.
pub const INSTR_BYTES: u64 = 4;

/// Lanes of `elem_bits`-wide elements in a vector of `vl_bits` bits.
///
/// This is the VLA trip-count divisor: a loop over `n` double-precision
/// elements retires `ceil(n / lanes(vl, 64))` governed vector iterations.
#[inline]
pub fn lanes(vl_bits: u32, elem_bits: u32) -> u64 {
    debug_assert!(vl_bits >= elem_bits, "vector shorter than element");
    u64::from(vl_bits / elem_bits)
}

/// Ceiling division helper used throughout trip-count computation.
#[inline]
pub fn div_ceil(n: u64, d: u64) -> u64 {
    debug_assert!(d > 0);
    n.div_ceil(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_of_common_widths() {
        assert_eq!(lanes(128, 64), 2);
        assert_eq!(lanes(512, 64), 8);
        assert_eq!(lanes(2048, 64), 32);
        assert_eq!(lanes(128, 32), 4);
        assert_eq!(lanes(2048, 32), 64);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(10, 2), 5);
        assert_eq!(div_ceil(11, 2), 6);
        assert_eq!(div_ceil(1, 32), 1);
        assert_eq!(div_ceil(0, 32), 0);
    }
}
