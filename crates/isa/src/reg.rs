//! Architectural register classes.
//!
//! The paper's design space varies four physical register files (Table II):
//! general-purpose, floating-point/SVE, SVE predicate, and condition
//! registers. Register renaming in the core model allocates physical
//! registers per class, so instructions carry architectural register
//! operands tagged with their class.

/// The four architectural register classes renamed by the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit general-purpose registers `x0..x30` (31 renameable; `sp`/`xzr`
    /// are not renamed).
    Gp,
    /// Scalable vector registers `z0..z31`; the low 128 bits alias the NEON
    /// `v` registers and the scalar FP `d`/`s` registers, so scalar FP and
    /// vector code share this file — exactly why the paper's
    /// "Floating-Point (FP)/SVE Registers" is a single parameter.
    Fp,
    /// SVE predicate registers `p0..p15`.
    Pred,
    /// Condition flags (NZCV), modelled as a renameable single-register
    /// class as SimEng does.
    Cond,
}

impl RegClass {
    /// All classes, in a fixed order usable for per-class arrays.
    pub const ALL: [RegClass; 4] = [RegClass::Gp, RegClass::Fp, RegClass::Pred, RegClass::Cond];

    /// Number of architectural registers in this class.
    ///
    /// These are the floors below which a physical register file cannot
    /// function: the paper's ranges start at 38 for GP/FP (32 architectural
    /// + headroom), 24 for predicate, and 8 for condition registers.
    #[inline]
    pub fn arch_count(self) -> u16 {
        match self {
            RegClass::Gp => 32,
            RegClass::Fp => 32,
            RegClass::Pred => 17, // p0..p15 + FFR
            RegClass::Cond => 1,
        }
    }

    /// Index of this class into a 4-element per-class array.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Gp => 0,
            RegClass::Fp => 1,
            RegClass::Pred => 2,
            RegClass::Cond => 3,
        }
    }

    /// Short human-readable tag used in statistics output.
    pub fn tag(self) -> &'static str {
        match self {
            RegClass::Gp => "gp",
            RegClass::Fp => "fp",
            RegClass::Pred => "pred",
            RegClass::Cond => "cond",
        }
    }
}

/// An architectural register operand: a class plus an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// Register class.
    pub class: RegClass,
    /// Architectural index within the class (`< class.arch_count()`).
    pub index: u8,
}

impl Reg {
    /// General-purpose register `x{i}`.
    #[inline]
    pub const fn gp(i: u8) -> Reg {
        Reg {
            class: RegClass::Gp,
            index: i,
        }
    }

    /// FP/SVE register `z{i}` (aliasing `d{i}`/`v{i}`).
    #[inline]
    pub const fn fp(i: u8) -> Reg {
        Reg {
            class: RegClass::Fp,
            index: i,
        }
    }

    /// Predicate register `p{i}`.
    #[inline]
    pub const fn pred(i: u8) -> Reg {
        Reg {
            class: RegClass::Pred,
            index: i,
        }
    }

    /// The NZCV condition flags register.
    #[inline]
    pub const fn nzcv() -> Reg {
        Reg {
            class: RegClass::Cond,
            index: 0,
        }
    }

    /// Whether the index is valid for the class.
    #[inline]
    pub fn is_valid(self) -> bool {
        u16::from(self.index) < self.class.arch_count()
    }
}

/// A fixed-capacity operand list (avoids heap allocation on the hot path).
///
/// Arm instructions have at most two destinations (e.g. load-pair) and in
/// practice at most four sources (FMA with governing predicate reads three
/// registers plus the predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegList {
    regs: [Reg; 4],
    len: u8,
}

impl RegList {
    /// Empty list.
    #[inline]
    pub const fn empty() -> RegList {
        RegList {
            regs: [Reg::gp(0); 4],
            len: 0,
        }
    }

    /// Build from a slice (panics if longer than 4).
    pub fn from_slice(s: &[Reg]) -> RegList {
        assert!(s.len() <= 4, "operand list longer than 4");
        let mut l = RegList::empty();
        for &r in s {
            l.push(r);
        }
        l
    }

    /// Append a register (panics when full).
    #[inline]
    pub fn push(&mut self, r: Reg) {
        assert!((self.len as usize) < 4, "operand list overflow");
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    /// Registers as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Number of operands.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the operands.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.as_slice().iter().copied()
    }
}

impl Default for RegList {
    fn default() -> Self {
        RegList::empty()
    }
}

impl<'a> IntoIterator for &'a RegList {
    type Item = Reg;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Reg>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_counts_cover_isa() {
        assert_eq!(RegClass::Gp.arch_count(), 32);
        assert_eq!(RegClass::Fp.arch_count(), 32);
        assert_eq!(RegClass::Pred.arch_count(), 17);
        assert_eq!(RegClass::Cond.arch_count(), 1);
    }

    #[test]
    fn class_indices_are_distinct_and_dense() {
        let mut seen = [false; 4];
        for c in RegClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reg_constructors() {
        assert_eq!(
            Reg::gp(5),
            Reg {
                class: RegClass::Gp,
                index: 5
            }
        );
        assert_eq!(
            Reg::fp(31),
            Reg {
                class: RegClass::Fp,
                index: 31
            }
        );
        assert_eq!(
            Reg::pred(0),
            Reg {
                class: RegClass::Pred,
                index: 0
            }
        );
        assert_eq!(Reg::nzcv().class, RegClass::Cond);
        assert!(Reg::gp(31).is_valid());
        assert!(!Reg::fp(32).is_valid());
        assert!(Reg::pred(16).is_valid()); // FFR
        assert!(!Reg::pred(17).is_valid());
    }

    #[test]
    fn reglist_push_and_iterate() {
        let mut l = RegList::empty();
        assert!(l.is_empty());
        l.push(Reg::gp(1));
        l.push(Reg::fp(2));
        l.push(Reg::pred(3));
        assert_eq!(l.len(), 3);
        let v: Vec<Reg> = l.iter().collect();
        assert_eq!(v, vec![Reg::gp(1), Reg::fp(2), Reg::pred(3)]);
    }

    #[test]
    fn reglist_from_slice_roundtrip() {
        let regs = [Reg::gp(0), Reg::gp(1), Reg::fp(0), Reg::nzcv()];
        let l = RegList::from_slice(&regs);
        assert_eq!(l.as_slice(), &regs);
    }

    #[test]
    #[should_panic(expected = "operand list overflow")]
    fn reglist_overflow_panics() {
        let mut l = RegList::from_slice(&[Reg::gp(0); 4]);
        l.push(Reg::gp(1));
    }
}
