//! Instruction operation classes, fixed latencies, and port bindings.
//!
//! The paper fixes the execution-unit design: "seven execution units with a
//! single unified reservation station shared between them with a width of 60
//! and a dispatch rate of four instructions per cycle. [...] Three of them
//! are exclusive to load and store instructions, two support NEON and SVE
//! instructions with one additional predicate-only port, and three support a
//! mixture of integer, floating point, and branch instructions."
//!
//! We realise this as four *port classes* — load/store, vector, predicate,
//! and scalar (int/FP/branch) — and give the core model the corresponding
//! default port layout (3 LS + 2 VEC + 1 PRED + 3 SCALAR). The prose's unit
//! arithmetic is ambiguous (the clauses enumerate more ports than "seven");
//! we keep the per-class counts it states and note the discrepancy in
//! DESIGN.md. Latencies approximate a modern Arm core (Neoverse-class) and
//! are fixed across the entire design space, as in the paper.

/// Functional classes of macro-operations retired by the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Scalar integer ALU op (add/sub/logic/shift, address arithmetic).
    IntAlu,
    /// Scalar integer multiply.
    IntMul,
    /// Scalar integer divide (long latency, unpipelined in spirit).
    IntDiv,
    /// Scalar FP add/sub/convert/compare.
    FpAdd,
    /// Scalar FP multiply.
    FpMul,
    /// Scalar fused multiply-add.
    FpFma,
    /// Scalar FP divide / square root.
    FpDiv,
    /// SVE/NEON integer or logical vector op (including index/dup).
    VecAlu,
    /// SVE/NEON FP add/mul vector op.
    VecFp,
    /// SVE/NEON fused multiply-add vector op.
    VecFma,
    /// SVE/NEON FP divide / sqrt / reciprocal-refinement vector op.
    VecDiv,
    /// SVE predicate-generating or predicate-logic op (`whilelo`, `ptest`,
    /// predicate AND/OR) — bound to the predicate port.
    PredOp,
    /// Scalar load (consumes load-queue entry and memory bandwidth).
    Load,
    /// Scalar store (consumes store-queue entry and memory bandwidth).
    Store,
    /// SVE/NEON contiguous vector load of `VL/8` bytes.
    VecLoad,
    /// SVE/NEON contiguous vector store of `VL/8` bytes.
    VecStore,
    /// SVE gather load (per-element requests; see `MemPattern::Strided`).
    VecGather,
    /// SVE scatter store (per-element requests).
    VecScatter,
    /// Conditional or unconditional branch.
    Branch,
}

/// Execution-port classes of the fixed EU layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortClass {
    /// Load/store address-generation and data ports (3 in the layout).
    LoadStore,
    /// NEON/SVE arithmetic ports (2 in the layout).
    Vector,
    /// Predicate-only port (1 in the layout).
    Predicate,
    /// Mixed integer / scalar-FP / branch ports (3 in the layout).
    Scalar,
}

impl PortClass {
    /// All port classes in fixed order.
    pub const ALL: [PortClass; 4] = [
        PortClass::LoadStore,
        PortClass::Vector,
        PortClass::Predicate,
        PortClass::Scalar,
    ];

    /// Index into per-port-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PortClass::LoadStore => 0,
            PortClass::Vector => 1,
            PortClass::Predicate => 2,
            PortClass::Scalar => 3,
        }
    }

    /// Default number of ports of this class in the paper's fixed layout.
    #[inline]
    pub fn default_count(self) -> usize {
        match self {
            PortClass::LoadStore => 3,
            PortClass::Vector => 2,
            PortClass::Predicate => 1,
            PortClass::Scalar => 3,
        }
    }
}

impl OpClass {
    /// All op classes, for statistics tables.
    pub const ALL: [OpClass; 19] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpFma,
        OpClass::FpDiv,
        OpClass::VecAlu,
        OpClass::VecFp,
        OpClass::VecFma,
        OpClass::VecDiv,
        OpClass::PredOp,
        OpClass::Load,
        OpClass::Store,
        OpClass::VecLoad,
        OpClass::VecStore,
        OpClass::VecGather,
        OpClass::VecScatter,
        OpClass::Branch,
    ];

    /// The port class this op issues to.
    #[inline]
    pub fn port(self) -> PortClass {
        match self {
            OpClass::Load
            | OpClass::Store
            | OpClass::VecLoad
            | OpClass::VecStore
            | OpClass::VecGather
            | OpClass::VecScatter => PortClass::LoadStore,
            OpClass::VecAlu | OpClass::VecFp | OpClass::VecFma | OpClass::VecDiv => {
                PortClass::Vector
            }
            OpClass::PredOp => PortClass::Predicate,
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::FpAdd
            | OpClass::FpMul
            | OpClass::FpFma
            | OpClass::FpDiv
            | OpClass::Branch => PortClass::Scalar,
        }
    }

    /// Fixed execution latency in core cycles (excluding memory time for
    /// loads/stores, which is supplied by the memory model).
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 3,
            OpClass::FpFma => 4,
            OpClass::FpDiv => 12,
            OpClass::VecAlu => 2,
            OpClass::VecFp => 3,
            OpClass::VecFma => 4,
            OpClass::VecDiv => 16,
            OpClass::PredOp => 1,
            // Address generation; memory latency is added by the LSQ.
            OpClass::Load | OpClass::VecLoad => 1,
            OpClass::Store | OpClass::VecStore => 1,
            // Gathers/scatters pay extra address-generation work.
            OpClass::VecGather | OpClass::VecScatter => 2,
            OpClass::Branch => 1,
        }
    }

    /// Whether the op is fully pipelined on its port (can accept a new op
    /// every cycle). Divides occupy their port for their whole latency.
    #[inline]
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv | OpClass::VecDiv)
    }

    /// Whether the op reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load | OpClass::VecLoad | OpClass::VecGather)
    }

    /// Whether the op writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(
            self,
            OpClass::Store | OpClass::VecStore | OpClass::VecScatter
        )
    }

    /// Whether the op accesses memory at all.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether the op is an SVE/NEON vector instruction. Predicate ops
    /// count as SVE for the paper's vectorisation metric ("at least one Z
    /// register as a source or destination") only when they touch Z
    /// registers, which ours do not, so `PredOp` is excluded here and
    /// the vectorisation measurement instead inspects operand classes.
    #[inline]
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            OpClass::VecAlu
                | OpClass::VecFp
                | OpClass::VecFma
                | OpClass::VecDiv
                | OpClass::VecLoad
                | OpClass::VecStore
                | OpClass::VecGather
                | OpClass::VecScatter
        )
    }

    /// Whether the op is a branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// Index into `ALL`-ordered statistics arrays.
    pub fn index(self) -> usize {
        OpClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("op class in ALL")
    }

    /// Short tag for statistics output.
    pub fn tag(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FpAdd => "fp_add",
            OpClass::FpMul => "fp_mul",
            OpClass::FpFma => "fp_fma",
            OpClass::FpDiv => "fp_div",
            OpClass::VecAlu => "vec_alu",
            OpClass::VecFp => "vec_fp",
            OpClass::VecFma => "vec_fma",
            OpClass::VecDiv => "vec_div",
            OpClass::PredOp => "pred_op",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::VecLoad => "vec_load",
            OpClass::VecStore => "vec_store",
            OpClass::VecGather => "vec_gather",
            OpClass::VecScatter => "vec_scatter",
            OpClass::Branch => "branch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_port_and_latency() {
        for c in OpClass::ALL {
            let _ = c.port();
            assert!(c.exec_latency() >= 1, "{c:?} latency must be >= 1");
        }
    }

    #[test]
    fn memory_predicates_consistent() {
        for c in OpClass::ALL {
            assert_eq!(c.is_mem(), c.is_load() || c.is_store());
            assert!(!(c.is_load() && c.is_store()));
            if c.is_mem() {
                assert_eq!(c.port(), PortClass::LoadStore);
            }
        }
    }

    #[test]
    fn vector_ops_issue_to_vector_or_ls_ports() {
        for c in OpClass::ALL.iter().filter(|c| c.is_vector()) {
            assert!(
                matches!(c.port(), PortClass::Vector | PortClass::LoadStore),
                "{c:?} on unexpected port"
            );
        }
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(!OpClass::VecDiv.pipelined());
        assert!(OpClass::FpFma.pipelined());
        assert!(OpClass::VecFma.pipelined());
    }

    #[test]
    fn default_port_layout_matches_paper_counts() {
        assert_eq!(PortClass::LoadStore.default_count(), 3);
        assert_eq!(PortClass::Vector.default_count(), 2);
        assert_eq!(PortClass::Predicate.default_count(), 1);
        assert_eq!(PortClass::Scalar.default_count(), 3);
    }

    #[test]
    fn op_index_is_dense_permutation() {
        let mut seen = vec![false; OpClass::ALL.len()];
        for c in OpClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<&str> = OpClass::ALL.iter().map(|c| c.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), OpClass::ALL.len());
    }
}
