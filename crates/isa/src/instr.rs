//! Static instruction templates and dynamic instruction instances.

use crate::kir::AddrExpr;
use crate::op::OpClass;
use crate::reg::{Reg, RegList};

/// Load or store direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Read from memory.
    Load,
    /// Write to memory.
    Store,
}

/// Spatial pattern of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPattern {
    /// One contiguous byte range (scalar and unit-stride vector accesses).
    Contiguous,
    /// SVE gather/scatter approximated as a strided element walk: `count`
    /// elements of `elem_bytes`, `stride` bytes apart. Each element is a
    /// separate memory request — the defining cost of gathers.
    Strided {
        /// Bytes per element.
        elem_bytes: u32,
        /// Byte distance between consecutive element addresses.
        stride: i64,
        /// Number of elements (the vector's lane count).
        count: u32,
    },
}

/// Memory behaviour of an instruction template: where it touches memory (an
/// affine function of loop indices) and how many bytes per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTemplate {
    /// Address expression over enclosing loop indices.
    pub expr: AddrExpr,
    /// Total access size in bytes (for vector accesses, `VL/8`).
    pub bytes: u32,
    /// Load or store.
    pub kind: MemKind,
    /// Spatial pattern.
    pub pattern: MemPattern,
}

/// A resolved memory reference carried by a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Concrete byte address (base element for strided patterns).
    pub addr: u64,
    /// Total access size in bytes.
    pub bytes: u32,
    /// Load or store.
    pub kind: MemKind,
    /// Spatial pattern.
    pub pattern: MemPattern,
}

/// A static instruction template, the unit the kernel IR is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrTemplate {
    /// Operation class (determines port, latency, memory behaviour).
    pub op: OpClass,
    /// Destination registers (renamed; at most 2 used in practice).
    pub dests: RegList,
    /// Source registers (at most 4).
    pub srcs: RegList,
    /// Memory behaviour, for load/store classes.
    pub mem: Option<MemTemplate>,
}

impl InstrTemplate {
    /// A compute (non-memory, non-branch) instruction.
    pub fn compute(op: OpClass, dests: &[Reg], srcs: &[Reg]) -> InstrTemplate {
        debug_assert!(!op.is_mem() && !op.is_branch());
        InstrTemplate {
            op,
            dests: RegList::from_slice(dests),
            srcs: RegList::from_slice(srcs),
            mem: None,
        }
    }

    /// A load instruction writing `dest`, addressed by `expr`, reading
    /// `bytes` bytes. `addr_srcs` are the address-generation source
    /// registers (typically a GP base register).
    pub fn load(
        op: OpClass,
        dest: Reg,
        addr_srcs: &[Reg],
        expr: AddrExpr,
        bytes: u32,
    ) -> InstrTemplate {
        debug_assert!(op.is_load());
        InstrTemplate {
            op,
            dests: RegList::from_slice(&[dest]),
            srcs: RegList::from_slice(addr_srcs),
            mem: Some(MemTemplate {
                expr,
                bytes,
                kind: MemKind::Load,
                pattern: MemPattern::Contiguous,
            }),
        }
    }

    /// A gather load: `count` elements of `elem_bytes`, `stride` bytes
    /// apart, starting at `expr` (SVE `ld1d {z}, [z.d]`-style, approximated
    /// as a strided walk).
    pub fn gather(
        dest: Reg,
        addr_srcs: &[Reg],
        expr: AddrExpr,
        elem_bytes: u32,
        stride: i64,
        count: u32,
    ) -> InstrTemplate {
        InstrTemplate {
            op: OpClass::VecGather,
            dests: RegList::from_slice(&[dest]),
            srcs: RegList::from_slice(addr_srcs),
            mem: Some(MemTemplate {
                expr,
                bytes: elem_bytes * count,
                kind: MemKind::Load,
                pattern: MemPattern::Strided {
                    elem_bytes,
                    stride,
                    count,
                },
            }),
        }
    }

    /// A scatter store, the mirror of [`InstrTemplate::gather`].
    pub fn scatter(
        data_srcs: &[Reg],
        expr: AddrExpr,
        elem_bytes: u32,
        stride: i64,
        count: u32,
    ) -> InstrTemplate {
        InstrTemplate {
            op: OpClass::VecScatter,
            dests: RegList::empty(),
            srcs: RegList::from_slice(data_srcs),
            mem: Some(MemTemplate {
                expr,
                bytes: elem_bytes * count,
                kind: MemKind::Store,
                pattern: MemPattern::Strided {
                    elem_bytes,
                    stride,
                    count,
                },
            }),
        }
    }

    /// A store instruction reading `data_srcs` (data + address registers),
    /// addressed by `expr`, writing `bytes` bytes.
    pub fn store(op: OpClass, data_srcs: &[Reg], expr: AddrExpr, bytes: u32) -> InstrTemplate {
        debug_assert!(op.is_store());
        InstrTemplate {
            op,
            dests: RegList::empty(),
            srcs: RegList::from_slice(data_srcs),
            mem: Some(MemTemplate {
                expr,
                bytes,
                kind: MemKind::Store,
                pattern: MemPattern::Contiguous,
            }),
        }
    }

    /// A branch instruction (loop-control branches are added by lowering,
    /// but kernels may also include explicit branches).
    pub fn branch(srcs: &[Reg]) -> InstrTemplate {
        InstrTemplate {
            op: OpClass::Branch,
            dests: RegList::empty(),
            srcs: RegList::from_slice(srcs),
            mem: None,
        }
    }

    /// Whether any operand (source or destination) is an SVE Z register —
    /// the paper's vectorisation criterion ("at least one Z (SVE vector)
    /// register as a source or destination register").
    pub fn touches_z_reg(&self) -> bool {
        // All our Fp-class operands on vector op classes model Z registers;
        // scalar FP also lives in the Fp class but on scalar op classes.
        self.op.is_vector()
    }
}

/// A dynamic instruction: one element of the retired instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInstr {
    /// Static program counter (byte address of the instruction).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination registers.
    pub dests: RegList,
    /// Source registers.
    pub srcs: RegList,
    /// Resolved memory reference, if any.
    pub mem: Option<MemRef>,
    /// For branches: whether this dynamic instance is taken, and its
    /// target PC. `None` for non-branches.
    pub branch: Option<BranchInfo>,
}

/// Dynamic branch outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Target PC when taken (fall-through otherwise).
    pub target: u64,
}

impl DynInstr {
    /// Whether this retired instruction counts as an SVE instruction for
    /// the paper's Fig. 1 vectorisation metric.
    #[inline]
    pub fn is_sve(&self) -> bool {
        self.op.is_vector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn compute_template_has_no_mem() {
        let t = InstrTemplate::compute(OpClass::FpFma, &[Reg::fp(0)], &[Reg::fp(1), Reg::fp(2)]);
        assert!(t.mem.is_none());
        assert_eq!(t.dests.len(), 1);
        assert_eq!(t.srcs.len(), 2);
    }

    #[test]
    fn load_template_records_footprint() {
        let t = InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1)],
            AddrExpr::linear(0x1000, 0, 64),
            64,
        );
        let m = t.mem.unwrap();
        assert_eq!(m.kind, MemKind::Load);
        assert_eq!(m.bytes, 64);
        assert_eq!(m.expr.eval(&[2]), 0x1080);
    }

    #[test]
    fn store_template_has_no_dest() {
        let t = InstrTemplate::store(
            OpClass::Store,
            &[Reg::gp(2), Reg::gp(1)],
            AddrExpr::fixed(0x2000),
            8,
        );
        assert!(t.dests.is_empty());
        assert_eq!(t.mem.unwrap().kind, MemKind::Store);
    }

    #[test]
    fn z_register_criterion_matches_vector_classes() {
        let v = InstrTemplate::compute(OpClass::VecFma, &[Reg::fp(0)], &[Reg::fp(1)]);
        let s = InstrTemplate::compute(OpClass::FpFma, &[Reg::fp(0)], &[Reg::fp(1)]);
        assert!(v.touches_z_reg());
        assert!(!s.touches_z_reg());
    }

    #[test]
    #[should_panic]
    fn load_constructor_rejects_non_load_class() {
        // debug_assert fires in test builds
        let _ = InstrTemplate::load(OpClass::IntAlu, Reg::gp(0), &[], AddrExpr::fixed(0), 8);
    }
}
