//! Analytic operation summaries, the workloads' built-in validation.
//!
//! The paper only keeps runs whose applications pass their built-in output
//! validation. Our synthetic instruction streams have no numeric output, so
//! the equivalent check is *operation-count conservation*: the retired
//! per-class instruction counts and load/store byte totals observed by the
//! core model must equal the counts computed analytically from the program.
//! A simulation whose statistics disagree with the static summary is
//! rejected exactly as a failed validation run would be.

use crate::instr::MemKind;
use crate::op::OpClass;
use crate::program::Program;

/// Analytic summary of a program's dynamic execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpSummary {
    /// Retired instruction count per [`OpClass`] (indexed by `OpClass::index`).
    pub per_class: [u64; OpClass::ALL.len()],
    /// Total bytes loaded.
    pub load_bytes: u64,
    /// Total bytes stored.
    pub store_bytes: u64,
}

impl OpSummary {
    /// Compute the summary analytically from a lowered program.
    pub fn of(program: &Program) -> OpSummary {
        // Retire multiplicity of each static op = product of enclosing trips.
        let mut mult = vec![1u64; program.ops.len()];
        for lm in &program.loops {
            for m in &mut mult[lm.header as usize..=lm.branch as usize] {
                *m *= lm.trip;
            }
        }
        let mut s = OpSummary::default();
        for (op, &m) in program.ops.iter().zip(&mult) {
            s.per_class[op.template.op.index()] += m;
            if let Some(mem) = op.template.mem {
                match mem.kind {
                    MemKind::Load => s.load_bytes += u64::from(mem.bytes) * m,
                    MemKind::Store => s.store_bytes += u64::from(mem.bytes) * m,
                }
            }
        }
        s
    }

    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.per_class.iter().sum()
    }

    /// Retired count for one class.
    #[inline]
    pub fn count(&self, c: OpClass) -> u64 {
        self.per_class[c.index()]
    }

    /// Record one retired instruction (used by the core model to build the
    /// observed-side summary).
    #[inline]
    pub fn record(&mut self, c: OpClass, mem_bytes: u64, kind: Option<MemKind>) {
        self.per_class[c.index()] += 1;
        match kind {
            Some(MemKind::Load) => self.load_bytes += mem_bytes,
            Some(MemKind::Store) => self.store_bytes += mem_bytes,
            None => {}
        }
    }

    /// Fraction of retired instructions that are SVE vector instructions —
    /// the paper's Fig. 1 vectorisation percentage.
    pub fn sve_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sve: u64 = OpClass::ALL
            .iter()
            .filter(|c| c.is_vector())
            .map(|c| self.count(*c))
            .sum();
        sve as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrTemplate;
    use crate::kir::{AddrExpr, Kernel, Stmt};
    use crate::reg::Reg;
    use crate::TraceCursor;

    fn vec_triad(trip: u64) -> Program {
        let body = vec![
            Stmt::Instr(InstrTemplate::load(
                OpClass::VecLoad,
                Reg::fp(0),
                &[Reg::gp(1)],
                AddrExpr::linear(0x1000, 0, 64),
                64,
            )),
            Stmt::Instr(InstrTemplate::compute(
                OpClass::VecFma,
                &[Reg::fp(2)],
                &[Reg::fp(0), Reg::fp(1)],
            )),
            Stmt::Instr(InstrTemplate::store(
                OpClass::VecStore,
                &[Reg::fp(2), Reg::gp(2)],
                AddrExpr::linear(0x9000, 0, 64),
                64,
            )),
        ];
        Program::lower(&Kernel::new("triad", vec![Stmt::repeat(trip, body)]))
    }

    #[test]
    fn summary_counts_match_trace() {
        let p = vec_triad(11);
        let s = OpSummary::of(&p);
        // Cross-check against the actual trace.
        let mut observed = OpSummary::default();
        for d in TraceCursor::new(&p) {
            observed.record(
                d.op,
                d.mem.map_or(0, |m| u64::from(m.bytes)),
                d.mem.map(|m| m.kind),
            );
        }
        assert_eq!(s, observed);
        assert_eq!(s.total(), 11 * 5);
        assert_eq!(s.load_bytes, 11 * 64);
        assert_eq!(s.store_bytes, 11 * 64);
    }

    #[test]
    fn sve_fraction_of_vector_loop() {
        let p = vec_triad(10);
        let s = OpSummary::of(&p);
        // 3 of 5 retired per iteration are vector ops.
        let f = s.sve_fraction();
        assert!((f - 0.6).abs() < 1e-12, "fraction {f}");
    }

    #[test]
    fn empty_program_summary() {
        let p = Program::lower(&Kernel::new("e", vec![]));
        let s = OpSummary::of(&p);
        assert_eq!(s.total(), 0);
        assert_eq!(s.sve_fraction(), 0.0);
    }

    #[test]
    fn record_accumulates_bytes() {
        let mut s = OpSummary::default();
        s.record(OpClass::Load, 8, Some(MemKind::Load));
        s.record(OpClass::VecStore, 256, Some(MemKind::Store));
        s.record(OpClass::IntAlu, 0, None);
        assert_eq!(s.total(), 3);
        assert_eq!(s.load_bytes, 8);
        assert_eq!(s.store_bytes, 256);
    }
}
