//! Lowered program representation.
//!
//! [`Program::lower`] flattens a [`Kernel`]'s loop nest into a linear array
//! of static operations with byte program counters, inserting the
//! loop-control overhead a real counted/VLA loop retires each iteration:
//! one induction-increment ALU op and one compare-and-branch. Because the
//! kernel IR is structured (properly nested counted loops), dynamic control
//! flow needs no interpreter stack: a per-depth iteration-index array fully
//! determines every branch outcome and every affine address.

use crate::instr::InstrTemplate;
use crate::kir::{Kernel, Stmt, MAX_LOOP_DEPTH};
use crate::op::OpClass;
use crate::reg::Reg;
use crate::INSTR_BYTES;

/// Base byte address of the code segment (arbitrary; PCs are
/// `CODE_BASE + 4*index`).
pub const CODE_BASE: u64 = 0x0010_0000;

/// GP register reserved for the depth-`d` induction variable.
///
/// Kernels must not use `x24..x29` so lowering-inserted loop control never
/// aliases kernel registers.
#[inline]
pub fn induction_reg(depth: usize) -> Reg {
    debug_assert!(depth < MAX_LOOP_DEPTH);
    Reg::gp(24 + depth as u8)
}

/// Role of a flattened static operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRole {
    /// An instruction template from the kernel body.
    Body,
    /// Lowering-inserted induction increment for the loop with this id.
    LoopAdd(u32),
    /// Lowering-inserted backward compare-and-branch for the loop with
    /// this id.
    LoopBranch(u32),
}

/// A flattened static instruction: template plus its role and PC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticInstr {
    /// Instruction template (operands, op class, memory behaviour).
    pub template: InstrTemplate,
    /// Body instruction or lowering-inserted loop control.
    pub role: OpRole,
}

/// Metadata for one lowered loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopMeta {
    /// Index (into [`Program::ops`]) of the first instruction of the body.
    pub header: u32,
    /// Index of the loop's backward branch.
    pub branch: u32,
    /// Trip count (≥ 1).
    pub trip: u64,
    /// Nesting depth (0 = outermost).
    pub depth: u8,
}

/// A lowered, executable program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Kernel name this program was lowered from.
    pub name: String,
    /// Flattened static instructions.
    pub ops: Vec<StaticInstr>,
    /// Loop table indexed by the ids in [`OpRole`].
    pub loops: Vec<LoopMeta>,
}

impl Program {
    /// Lower a kernel into a flat program.
    ///
    /// Zero-trip loops are dropped (they retire nothing). Panics if the
    /// nest exceeds [`MAX_LOOP_DEPTH`].
    pub fn lower(kernel: &Kernel) -> Program {
        assert!(
            kernel.max_depth() <= MAX_LOOP_DEPTH,
            "kernel '{}' exceeds MAX_LOOP_DEPTH",
            kernel.name
        );
        let mut p = Program {
            name: kernel.name.clone(),
            ops: Vec::new(),
            loops: Vec::new(),
        };
        lower_stmts(&kernel.body, 0, &mut p);
        p
    }

    /// Byte PC of the op at `index`.
    #[inline]
    pub fn pc_of(&self, index: usize) -> u64 {
        CODE_BASE + index as u64 * INSTR_BYTES
    }

    /// Number of static ops (including inserted loop control).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total dynamic (retired) instruction count, computed analytically.
    pub fn dynamic_len(&self) -> u64 {
        // Each op retires once per full execution of its enclosing loops.
        let mut mult = vec![1u64; self.ops.len()];
        for lm in &self.loops {
            for m in &mut mult[lm.header as usize..=lm.branch as usize] {
                *m *= lm.trip;
            }
        }
        mult.iter().sum()
    }

    /// Static length (in instructions) of the body of loop `id`, inclusive
    /// of the inserted control ops — the quantity compared against the
    /// loop-buffer-size parameter.
    pub fn loop_body_len(&self, id: usize) -> u32 {
        let lm = &self.loops[id];
        lm.branch - lm.header + 1
    }
}

fn lower_stmts(stmts: &[Stmt], depth: usize, p: &mut Program) {
    for s in stmts {
        match s {
            Stmt::Instr(t) => {
                p.ops.push(StaticInstr {
                    template: *t,
                    role: OpRole::Body,
                });
            }
            Stmt::Loop { trip, body } => {
                if *trip == 0 {
                    continue;
                }
                assert!(depth < MAX_LOOP_DEPTH, "loop nest too deep");
                let header = p.ops.len() as u32;
                lower_stmts(body, depth + 1, p);
                let id = p.loops.len() as u32;
                let ind = induction_reg(depth);
                // Flag-setting induction increment (`adds`/`subs`): reads
                // and writes the induction GP reg and writes NZCV, so the
                // condition-register file sees real rename pressure.
                p.ops.push(StaticInstr {
                    template: InstrTemplate::compute(OpClass::IntAlu, &[ind, Reg::nzcv()], &[ind]),
                    role: OpRole::LoopAdd(id),
                });
                // Conditional branch on the flags.
                p.ops.push(StaticInstr {
                    template: InstrTemplate::branch(&[Reg::nzcv()]),
                    role: OpRole::LoopBranch(id),
                });
                let branch = (p.ops.len() - 1) as u32;
                p.loops.push(LoopMeta {
                    header,
                    branch,
                    trip: *trip,
                    depth: depth as u8,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kir::AddrExpr;

    fn alu() -> Stmt {
        Stmt::Instr(InstrTemplate::compute(
            OpClass::IntAlu,
            &[Reg::gp(0)],
            &[Reg::gp(1)],
        ))
    }

    fn load(depth: usize) -> Stmt {
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::gp(2),
            &[Reg::gp(3)],
            AddrExpr::linear(0x1000, depth, 8),
            8,
        ))
    }

    #[test]
    fn straight_line_lowering() {
        let k = Kernel::new("sl", vec![alu(), alu(), alu()]);
        let p = Program::lower(&k);
        assert_eq!(p.len(), 3);
        assert!(p.loops.is_empty());
        assert_eq!(p.dynamic_len(), 3);
    }

    #[test]
    fn single_loop_adds_control_ops() {
        let k = Kernel::new("l", vec![Stmt::repeat(10, vec![alu(), load(0)])]);
        let p = Program::lower(&k);
        // 2 body + add + branch
        assert_eq!(p.len(), 4);
        assert_eq!(p.loops.len(), 1);
        assert_eq!(p.loops[0].trip, 10);
        assert_eq!(p.loops[0].header, 0);
        assert_eq!(p.loops[0].branch, 3);
        assert_eq!(p.loop_body_len(0), 4);
        assert_eq!(p.dynamic_len(), 40);
    }

    #[test]
    fn nested_loops_multiply_dynamic_len() {
        let k = Kernel::new(
            "n",
            vec![
                alu(),
                Stmt::repeat(3, vec![alu(), Stmt::repeat(5, vec![load(1)])]),
            ],
        );
        let p = Program::lower(&k);
        // ops: alu | alu [load add br] add br
        assert_eq!(p.len(), 7);
        assert_eq!(p.loops.len(), 2);
        // inner loop registered first
        assert_eq!(p.loops[0].trip, 5);
        assert_eq!(p.loops[0].depth, 1);
        assert_eq!(p.loops[1].trip, 3);
        assert_eq!(p.loops[1].depth, 0);
        // dynamic: 1 + 3*(1 + 5*3 + 2) = 1 + 3*18 = 55
        assert_eq!(p.dynamic_len(), 55);
    }

    #[test]
    fn zero_trip_loop_dropped() {
        let k = Kernel::new("z", vec![Stmt::repeat(0, vec![alu()]), alu()]);
        let p = Program::lower(&k);
        assert_eq!(p.len(), 1);
        assert!(p.loops.is_empty());
    }

    #[test]
    fn pcs_are_word_aligned_and_sequential() {
        let k = Kernel::new("p", vec![alu(), alu()]);
        let p = Program::lower(&k);
        assert_eq!(p.pc_of(0), CODE_BASE);
        assert_eq!(p.pc_of(1), CODE_BASE + 4);
    }

    #[test]
    fn induction_regs_distinct_per_depth() {
        let a = induction_reg(0);
        let b = induction_reg(1);
        assert_ne!(a, b);
    }
}
