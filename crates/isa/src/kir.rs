//! Kernel IR: affine loop nests over instruction templates.
//!
//! Each HPC workload is expressed as a small loop nest whose body is a list
//! of instruction templates. Memory-accessing templates carry an
//! [`AddrExpr`] — an affine function of the enclosing loop indices — so the
//! trace cursor can materialise concrete byte addresses without storing the
//! (potentially enormous) unrolled trace.

use crate::instr::InstrTemplate;

/// Maximum loop-nest depth supported by [`AddrExpr`] and the trace cursor.
pub const MAX_LOOP_DEPTH: usize = 6;

/// An affine address expression `base + Σ stride[d] * index[d]` over the
/// enclosing loop indices (`d` = 0 for the outermost loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrExpr {
    /// Base byte address (start of the array slice this template touches).
    pub base: u64,
    /// Per-loop-depth byte strides; entries beyond the actual nest depth
    /// must be zero.
    pub strides: [i64; MAX_LOOP_DEPTH],
}

impl AddrExpr {
    /// A fixed address independent of every loop index.
    pub const fn fixed(base: u64) -> AddrExpr {
        AddrExpr { base, strides: [0; MAX_LOOP_DEPTH] }
    }

    /// Address varying along one loop depth.
    pub fn linear(base: u64, depth: usize, stride: i64) -> AddrExpr {
        let mut e = AddrExpr::fixed(base);
        e.strides[depth] = stride;
        e
    }

    /// Address varying along two loop depths.
    pub fn bilinear(base: u64, d0: usize, s0: i64, d1: usize, s1: i64) -> AddrExpr {
        let mut e = AddrExpr::fixed(base);
        e.strides[d0] = s0;
        e.strides[d1] = s1;
        e
    }

    /// Evaluate at the given loop-index vector (outermost first).
    #[inline]
    pub fn eval(&self, indices: &[u64]) -> u64 {
        let mut a = self.base as i64;
        for (d, &idx) in indices.iter().enumerate().take(MAX_LOOP_DEPTH) {
            a += self.strides[d] * idx as i64;
        }
        debug_assert!(a >= 0, "address expression went negative");
        a as u64
    }
}

/// A statement in the kernel IR: either a straight-line instruction template
/// or a counted loop around a sub-body.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// One instruction template.
    Instr(InstrTemplate),
    /// A counted loop executing `body` `trip` times. Lowering appends the
    /// loop-control overhead (induction increment, compare-and-branch) that
    /// a real VLA loop retires each iteration.
    Loop {
        /// Trip count (≥ 1; zero-trip loops are dropped during lowering).
        trip: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a counted loop.
    pub fn repeat(trip: u64, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop { trip, body }
    }
}

/// A named kernel: metadata plus the IR body.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Human-readable name (e.g. `"stream-triad"`).
    pub name: String,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Create a kernel from a body.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>) -> Kernel {
        Kernel { name: name.into(), body }
    }

    /// Maximum loop-nest depth of the kernel body.
    pub fn max_depth(&self) -> usize {
        fn depth(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Instr(_) => 0,
                    Stmt::Loop { body, .. } => 1 + depth(body),
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.body)
    }

    /// Number of static instruction templates (excluding lowering-inserted
    /// loop-control ops).
    pub fn template_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Instr(_) => 1,
                    Stmt::Loop { body, .. } => count(body),
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrTemplate;
    use crate::op::OpClass;

    fn nop() -> Stmt {
        Stmt::Instr(InstrTemplate::compute(OpClass::IntAlu, &[], &[]))
    }

    #[test]
    fn addr_expr_fixed_ignores_indices() {
        let e = AddrExpr::fixed(0x1000);
        assert_eq!(e.eval(&[]), 0x1000);
        assert_eq!(e.eval(&[5, 7]), 0x1000);
    }

    #[test]
    fn addr_expr_linear() {
        let e = AddrExpr::linear(0x1000, 0, 8);
        assert_eq!(e.eval(&[0]), 0x1000);
        assert_eq!(e.eval(&[3]), 0x1018);
    }

    #[test]
    fn addr_expr_bilinear_negative_stride() {
        let e = AddrExpr::bilinear(0x1000, 0, 256, 1, -8);
        assert_eq!(e.eval(&[2, 4]), 0x1000 + 512 - 32);
    }

    #[test]
    fn kernel_depth_and_template_count() {
        let k = Kernel::new(
            "k",
            vec![
                nop(),
                Stmt::repeat(4, vec![nop(), Stmt::repeat(2, vec![nop(), nop()])]),
            ],
        );
        assert_eq!(k.max_depth(), 2);
        assert_eq!(k.template_count(), 4);
    }

    #[test]
    fn empty_kernel_depth_zero() {
        let k = Kernel::new("empty", vec![]);
        assert_eq!(k.max_depth(), 0);
        assert_eq!(k.template_count(), 0);
    }
}
