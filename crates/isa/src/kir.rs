//! Kernel IR: affine loop nests over instruction templates.
//!
//! Each HPC workload is expressed as a small loop nest whose body is a list
//! of instruction templates. Memory-accessing templates carry an
//! [`AddrExpr`] — an affine function of the enclosing loop indices — so the
//! trace cursor can materialise concrete byte addresses without storing the
//! (potentially enormous) unrolled trace.

use crate::instr::{InstrTemplate, MemPattern};
use crate::reg::RegClass;

/// Maximum loop-nest depth supported by [`AddrExpr`] and the trace cursor.
pub const MAX_LOOP_DEPTH: usize = 6;

/// An affine address expression `base + Σ stride[d] * index[d]` over the
/// enclosing loop indices (`d` = 0 for the outermost loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrExpr {
    /// Base byte address (start of the array slice this template touches).
    pub base: u64,
    /// Per-loop-depth byte strides; entries beyond the actual nest depth
    /// must be zero.
    pub strides: [i64; MAX_LOOP_DEPTH],
}

impl AddrExpr {
    /// A fixed address independent of every loop index.
    pub const fn fixed(base: u64) -> AddrExpr {
        AddrExpr {
            base,
            strides: [0; MAX_LOOP_DEPTH],
        }
    }

    /// Address varying along one loop depth.
    pub fn linear(base: u64, depth: usize, stride: i64) -> AddrExpr {
        let mut e = AddrExpr::fixed(base);
        e.strides[depth] = stride;
        e
    }

    /// Address varying along two loop depths.
    pub fn bilinear(base: u64, d0: usize, s0: i64, d1: usize, s1: i64) -> AddrExpr {
        let mut e = AddrExpr::fixed(base);
        e.strides[d0] = s0;
        e.strides[d1] = s1;
        e
    }

    /// Evaluate at the given loop-index vector (outermost first).
    #[inline]
    pub fn eval(&self, indices: &[u64]) -> u64 {
        let mut a = self.base as i64;
        for (d, &idx) in indices.iter().enumerate().take(MAX_LOOP_DEPTH) {
            a += self.strides[d] * idx as i64;
        }
        debug_assert!(a >= 0, "address expression went negative");
        a as u64
    }
}

/// A statement in the kernel IR: either a straight-line instruction template
/// or a counted loop around a sub-body.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// One instruction template.
    Instr(InstrTemplate),
    /// A counted loop executing `body` `trip` times. Lowering appends the
    /// loop-control overhead (induction increment, compare-and-branch) that
    /// a real VLA loop retires each iteration.
    Loop {
        /// Trip count (≥ 1; zero-trip loops are dropped during lowering).
        trip: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a counted loop.
    pub fn repeat(trip: u64, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop { trip, body }
    }
}

/// A named kernel: metadata plus the IR body.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Human-readable name (e.g. `"stream-triad"`).
    pub name: String,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Create a kernel from a body.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: name.into(),
            body,
        }
    }

    /// Maximum loop-nest depth of the kernel body.
    pub fn max_depth(&self) -> usize {
        fn depth(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Instr(_) => 0,
                    Stmt::Loop { body, .. } => 1 + depth(body),
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.body)
    }

    /// Check that the kernel is well-formed and safe to lower and execute:
    ///
    /// * nest depth within [`MAX_LOOP_DEPTH`];
    /// * every operand register valid for its class, with no body use of
    ///   the lowering-reserved induction registers (`x24..x29`);
    /// * at most two destinations per instruction (the core's micro-op
    ///   limit);
    /// * memory templates internally consistent (non-zero sizes, strided
    ///   element walks covering exactly `bytes`), with stride entries only
    ///   at enclosing loop depths;
    /// * every reachable address non-negative for every iteration vector
    ///   (the trace cursor's address evaluation rejects negative
    ///   addresses).
    ///
    /// Random kernel generators call this before handing a kernel to the
    /// differential oracle, so a generator bug is reported as a malformed
    /// kernel rather than as a spurious simulator mismatch.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_depth() > MAX_LOOP_DEPTH {
            return Err(format!(
                "kernel '{}' nests {} deep (max {MAX_LOOP_DEPTH})",
                self.name,
                self.max_depth()
            ));
        }
        // `trips[d]` = trip count of the enclosing loop at depth d.
        fn walk(stmts: &[Stmt], trips: &mut Vec<u64>, name: &str) -> Result<(), String> {
            for s in stmts {
                match s {
                    Stmt::Instr(t) => check_template(t, trips, name)?,
                    Stmt::Loop { trip, body } => {
                        trips.push(*trip);
                        walk(body, trips, name)?;
                        trips.pop();
                    }
                }
            }
            Ok(())
        }
        fn check_template(t: &InstrTemplate, trips: &[u64], name: &str) -> Result<(), String> {
            if t.dests.len() > 2 {
                return Err(format!("kernel '{name}': more than two destinations"));
            }
            for r in t.dests.iter().chain(t.srcs.iter()) {
                if !r.is_valid() {
                    return Err(format!(
                        "kernel '{name}': register {}{} out of range",
                        r.class.tag(),
                        r.index
                    ));
                }
                if r.class == RegClass::Gp && (24..24 + MAX_LOOP_DEPTH as u8).contains(&r.index) {
                    return Err(format!(
                        "kernel '{name}': body uses reserved induction register x{}",
                        r.index
                    ));
                }
            }
            let Some(m) = t.mem else { return Ok(()) };
            if m.bytes == 0 {
                return Err(format!("kernel '{name}': zero-byte memory access"));
            }
            if let MemPattern::Strided {
                elem_bytes, count, ..
            } = m.pattern
            {
                if elem_bytes == 0 || count == 0 || elem_bytes * count != m.bytes {
                    return Err(format!(
                        "kernel '{name}': strided walk {elem_bytes}x{count} != {} bytes",
                        m.bytes
                    ));
                }
            }
            for (d, &s) in m.expr.strides.iter().enumerate() {
                if s != 0 && d >= trips.len() {
                    return Err(format!(
                        "kernel '{name}': stride at depth {d} outside a {}-deep nest",
                        trips.len()
                    ));
                }
            }
            // Minimum address over the whole iteration space: each depth
            // contributes its most negative term (index 0 or trip-1).
            let mut min_addr = m.expr.base as i64;
            for (d, &trip) in trips.iter().enumerate() {
                let span = m.expr.strides[d] * (trip.max(1) as i64 - 1);
                min_addr += span.min(0);
            }
            if let MemPattern::Strided { stride, count, .. } = m.pattern {
                min_addr += (stride * (i64::from(count) - 1)).min(0);
            }
            if min_addr < 0 {
                return Err(format!(
                    "kernel '{name}': address can go negative ({min_addr})"
                ));
            }
            Ok(())
        }
        walk(&self.body, &mut Vec::new(), &self.name)
    }

    /// Number of static instruction templates (excluding lowering-inserted
    /// loop-control ops).
    pub fn template_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Instr(_) => 1,
                    Stmt::Loop { body, .. } => count(body),
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrTemplate;
    use crate::op::OpClass;

    fn nop() -> Stmt {
        Stmt::Instr(InstrTemplate::compute(OpClass::IntAlu, &[], &[]))
    }

    #[test]
    fn addr_expr_fixed_ignores_indices() {
        let e = AddrExpr::fixed(0x1000);
        assert_eq!(e.eval(&[]), 0x1000);
        assert_eq!(e.eval(&[5, 7]), 0x1000);
    }

    #[test]
    fn addr_expr_linear() {
        let e = AddrExpr::linear(0x1000, 0, 8);
        assert_eq!(e.eval(&[0]), 0x1000);
        assert_eq!(e.eval(&[3]), 0x1018);
    }

    #[test]
    fn addr_expr_bilinear_negative_stride() {
        let e = AddrExpr::bilinear(0x1000, 0, 256, 1, -8);
        assert_eq!(e.eval(&[2, 4]), 0x1000 + 512 - 32);
    }

    #[test]
    fn kernel_depth_and_template_count() {
        let k = Kernel::new(
            "k",
            vec![
                nop(),
                Stmt::repeat(4, vec![nop(), Stmt::repeat(2, vec![nop(), nop()])]),
            ],
        );
        assert_eq!(k.max_depth(), 2);
        assert_eq!(k.template_count(), 4);
    }

    #[test]
    fn empty_kernel_depth_zero() {
        let k = Kernel::new("empty", vec![]);
        assert_eq!(k.max_depth(), 0);
        assert_eq!(k.template_count(), 0);
    }

    #[test]
    fn validate_accepts_well_formed_kernel() {
        use crate::reg::Reg;
        let body = vec![Stmt::repeat(
            4,
            vec![Stmt::Instr(InstrTemplate::load(
                crate::op::OpClass::Load,
                Reg::gp(2),
                &[Reg::gp(3)],
                AddrExpr::linear(0x1000, 0, -8),
                8,
            ))],
        )];
        Kernel::new("ok", body).validate().unwrap();
    }

    #[test]
    fn validate_rejects_induction_register_use() {
        use crate::reg::Reg;
        let k = Kernel::new(
            "bad",
            vec![Stmt::Instr(InstrTemplate::compute(
                crate::op::OpClass::IntAlu,
                &[Reg::gp(24)],
                &[],
            ))],
        );
        assert!(k.validate().unwrap_err().contains("induction"));
    }

    #[test]
    fn validate_rejects_negative_reachable_address() {
        use crate::reg::Reg;
        // base 0x10 with stride -8 over 4 trips reaches -8.
        let body = vec![Stmt::repeat(
            4,
            vec![Stmt::Instr(InstrTemplate::load(
                crate::op::OpClass::Load,
                Reg::gp(2),
                &[Reg::gp(3)],
                AddrExpr::linear(0x10, 0, -8),
                8,
            ))],
        )];
        assert!(Kernel::new("neg", body).validate().is_err());
    }

    #[test]
    fn validate_rejects_stride_outside_nest() {
        use crate::reg::Reg;
        let k = Kernel::new(
            "deep-stride",
            vec![Stmt::Instr(InstrTemplate::load(
                crate::op::OpClass::Load,
                Reg::gp(2),
                &[Reg::gp(3)],
                AddrExpr::linear(0x1000, 2, 8), // depth 2 stride with no loops
                8,
            ))],
        );
        assert!(k.validate().is_err());
    }
}
