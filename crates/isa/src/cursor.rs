//! Lazy trace cursor over a lowered program.
//!
//! [`TraceCursor`] walks a [`Program`] producing the dynamic (retired)
//! instruction stream one instruction at a time, without materialising the
//! unrolled trace. Control flow is resolved with a per-depth iteration
//! index array (see `program` module docs), and affine address expressions
//! are evaluated against that array.

use crate::instr::{BranchInfo, DynInstr, MemRef};
use crate::kir::MAX_LOOP_DEPTH;
use crate::program::{OpRole, Program};

/// An iterator-like cursor producing the dynamic instruction stream.
#[derive(Debug, Clone)]
pub struct TraceCursor<'p> {
    program: &'p Program,
    /// Next static op index to retire, or `ops.len()` when finished.
    next: usize,
    /// Current iteration index per loop depth.
    idx: [u64; MAX_LOOP_DEPTH],
    /// Dynamic instructions produced so far.
    produced: u64,
}

/// A program-independent snapshot of a [`TraceCursor`]'s position, used
/// to pause and resume a walk of the dynamic stream (the cursor borrows
/// its program, so state that must outlive the borrow is captured here
/// and re-attached with [`TraceCursor::at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorPos {
    next: usize,
    idx: [u64; MAX_LOOP_DEPTH],
    produced: u64,
}

impl<'p> TraceCursor<'p> {
    /// Start a cursor at the program's entry.
    pub fn new(program: &'p Program) -> TraceCursor<'p> {
        TraceCursor {
            program,
            next: 0,
            idx: [0; MAX_LOOP_DEPTH],
            produced: 0,
        }
    }

    /// Resume a cursor over `program` at a previously captured
    /// [`position`](Self::position). The position must come from a
    /// cursor over an identical program; resuming elsewhere produces an
    /// arbitrary (but memory-safe) walk.
    pub fn at(program: &'p Program, pos: CursorPos) -> TraceCursor<'p> {
        TraceCursor {
            program,
            next: pos.next,
            idx: pos.idx,
            produced: pos.produced,
        }
    }

    /// Capture the cursor's position for a later [`TraceCursor::at`].
    #[inline]
    pub fn position(&self) -> CursorPos {
        CursorPos {
            next: self.next,
            idx: self.idx,
            produced: self.produced,
        }
    }

    /// Number of dynamic instructions produced so far.
    #[inline]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Whether the stream is exhausted.
    #[inline]
    pub fn finished(&self) -> bool {
        self.next >= self.program.ops.len()
    }

    /// Produce the next dynamic instruction, or `None` at program end.
    pub fn next_instr(&mut self) -> Option<DynInstr> {
        if self.finished() {
            return None;
        }
        let i = self.next;
        let sop = &self.program.ops[i];
        let t = &sop.template;
        let pc = self.program.pc_of(i);

        let mem = t.mem.map(|m| MemRef {
            addr: m.expr.eval(&self.idx[..]),
            bytes: m.bytes,
            kind: m.kind,
            pattern: m.pattern,
        });

        let branch = match sop.role {
            OpRole::LoopBranch(id) => {
                let lm = self.program.loops[id as usize];
                let d = lm.depth as usize;
                let taken = self.idx[d] + 1 < lm.trip;
                let target = self.program.pc_of(lm.header as usize);
                if taken {
                    self.idx[d] += 1;
                    self.next = lm.header as usize;
                } else {
                    self.idx[d] = 0;
                    self.next = i + 1;
                }
                Some(BranchInfo { taken, target })
            }
            _ => {
                self.next = i + 1;
                // Explicit (non-loop) branches in kernel bodies fall through.
                if t.op.is_branch() {
                    Some(BranchInfo {
                        taken: false,
                        target: pc + 4,
                    })
                } else {
                    None
                }
            }
        };

        self.produced += 1;
        Some(DynInstr {
            pc,
            op: t.op,
            dests: t.dests,
            srcs: t.srcs,
            mem,
            branch,
        })
    }
}

impl<'p> Iterator for TraceCursor<'p> {
    type Item = DynInstr;
    fn next(&mut self) -> Option<DynInstr> {
        self.next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{InstrTemplate, MemKind};
    use crate::kir::{AddrExpr, Kernel, Stmt};
    use crate::op::OpClass;
    use crate::program::CODE_BASE;
    use crate::reg::Reg;

    fn loop_kernel(trip: u64) -> Program {
        let body = vec![Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::gp(2),
            &[Reg::gp(3)],
            AddrExpr::linear(0x1000, 0, 8),
            8,
        ))];
        Program::lower(&Kernel::new("k", vec![Stmt::repeat(trip, body)]))
    }

    #[test]
    fn trace_length_matches_dynamic_len() {
        let p = loop_kernel(7);
        let n = TraceCursor::new(&p).count() as u64;
        assert_eq!(n, p.dynamic_len());
        assert_eq!(n, 7 * 3); // load + add + branch per iteration
    }

    #[test]
    fn addresses_advance_with_iteration() {
        let p = loop_kernel(3);
        let addrs: Vec<u64> = TraceCursor::new(&p)
            .filter_map(|d| d.mem.map(|m| m.addr))
            .collect();
        assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010]);
    }

    #[test]
    fn loop_branch_taken_then_not_taken() {
        let p = loop_kernel(2);
        let branches: Vec<bool> = TraceCursor::new(&p)
            .filter_map(|d| d.branch.map(|b| b.taken))
            .collect();
        assert_eq!(branches, vec![true, false]);
    }

    #[test]
    fn branch_target_is_loop_header() {
        let p = loop_kernel(2);
        let tgt = TraceCursor::new(&p)
            .filter_map(|d| d.branch.map(|b| b.target))
            .next()
            .unwrap();
        assert_eq!(tgt, CODE_BASE);
    }

    #[test]
    fn nested_loop_addresses_2d() {
        // for j in 0..2 { for i in 0..3 { load base + 64*j + 8*i } }
        let inner = vec![Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::gp(2),
            &[Reg::gp(3)],
            AddrExpr::bilinear(0x1000, 0, 64, 1, 8),
            8,
        ))];
        let k = Kernel::new("n", vec![Stmt::repeat(2, vec![Stmt::repeat(3, inner)])]);
        let p = Program::lower(&k);
        let addrs: Vec<u64> = TraceCursor::new(&p)
            .filter_map(|d| d.mem.map(|m| m.addr))
            .collect();
        assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010, 0x1040, 0x1048, 0x1050]);
    }

    #[test]
    fn inner_loop_reruns_in_outer_iterations() {
        let inner = vec![Stmt::Instr(InstrTemplate::compute(
            OpClass::FpAdd,
            &[Reg::fp(0)],
            &[],
        ))];
        let k = Kernel::new("r", vec![Stmt::repeat(4, vec![Stmt::repeat(5, inner)])]);
        let p = Program::lower(&k);
        let fp_count = TraceCursor::new(&p)
            .filter(|d| d.op == OpClass::FpAdd)
            .count();
        assert_eq!(fp_count, 20);
        assert_eq!(TraceCursor::new(&p).count() as u64, p.dynamic_len());
    }

    #[test]
    fn store_memref_kind() {
        let body = vec![Stmt::Instr(InstrTemplate::store(
            OpClass::VecStore,
            &[Reg::fp(1), Reg::gp(3)],
            AddrExpr::linear(0x2000, 0, 32),
            32,
        ))];
        let p = Program::lower(&Kernel::new("s", vec![Stmt::repeat(2, body)]));
        let kinds: Vec<MemKind> = TraceCursor::new(&p)
            .filter_map(|d| d.mem.map(|m| m.kind))
            .collect();
        assert_eq!(kinds, vec![MemKind::Store, MemKind::Store]);
    }

    #[test]
    fn position_roundtrip_resumes_identically() {
        let inner = vec![Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::gp(2),
            &[Reg::gp(3)],
            AddrExpr::bilinear(0x1000, 0, 64, 1, 8),
            8,
        ))];
        let k = Kernel::new("n", vec![Stmt::repeat(3, vec![Stmt::repeat(4, inner)])]);
        let p = Program::lower(&k);
        // Pause at every possible offset; the resumed tail must match
        // the uninterrupted walk exactly.
        let full: Vec<DynInstr> = TraceCursor::new(&p).collect();
        for pause in 0..=full.len() {
            let mut c = TraceCursor::new(&p);
            for _ in 0..pause {
                c.next_instr();
            }
            let pos = c.position();
            assert_eq!(pos, c.position(), "position capture must be pure");
            let resumed = TraceCursor::at(&p, pos);
            assert_eq!(resumed.produced(), pause as u64);
            let tail: Vec<DynInstr> = resumed.collect();
            assert_eq!(tail, full[pause..], "pause at {pause} diverged");
        }
    }

    #[test]
    fn cursor_exhausts_cleanly() {
        let p = loop_kernel(1);
        let mut c = TraceCursor::new(&p);
        while c.next_instr().is_some() {}
        assert!(c.finished());
        assert!(c.next_instr().is_none());
        assert_eq!(c.produced(), p.dynamic_len());
    }
}
