//! # armdse-oracle — correctness oracle for the core model
//!
//! The paper validates its simulator against physical ThunderX2 hardware
//! (Table I). This reproduction has no hardware to compare against, so
//! this crate provides the software substitute: a differential-testing
//! oracle that checks the out-of-order core model against an
//! architecturally exact in-order reference, over both the four HPC
//! kernels and unbounded seeded random programs.
//!
//! * [`arch`] — a deterministic *value semantics* for the KIR ISA
//!   ([`ArchState`]): every retired instruction hashes its operands into
//!   its destinations and memory words, so two executions agree on the
//!   final register file and memory image iff they retired the same
//!   operations in the same (per-location) order with the same addresses.
//! * [`interp`] — an in-order reference interpreter walking the kernel
//!   IR tree directly, independently re-deriving the lowering layout.
//! * [`gen`] — a seeded random generator of valid kernels (mixed
//!   scalar/SVE compute, aliasing loads/stores, gathers/scatters,
//!   branches, nested loops) and of random Table II design points.
//! * [`diff`] — the differential check and fuzz campaign driver:
//!   interpreter vs trace-cursor replay vs the pipeline's commit-order
//!   retirement stream.
//!
//! Built with `--features check-invariants`, every simulated cycle in a
//! campaign additionally runs the pipeline's structural invariant
//! assertions (in-order commit, free-list conservation, LSQ capacities,
//! forwarding legality, memory bandwidth accounting), so a passing
//! campaign certifies zero violations.

#![warn(missing_docs)]

pub mod arch;
pub mod diff;
pub mod gen;
pub mod interp;

pub use arch::ArchState;
pub use diff::{check_kernel, fuzz, fuzz_with, FuzzConfig, FuzzFailure, FuzzReport};
pub use gen::{random_core_params, random_kernel, GenConfig};
pub use interp::{interpret, InterpResult};
