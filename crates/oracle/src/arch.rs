//! Value-semantics architectural state.
//!
//! The core model schedules micro-ops but computes no data values, so
//! "architectural state must match" cannot be checked by reading the
//! simulator's registers. Instead the oracle assigns every instruction a
//! *deterministic value semantics*: the value an instruction produces is a
//! strong hash of its operation, PC, source-register values, and (for
//! loads) the memory words it reads. Stores write hash-derived values to
//! the words they touch; branches fold their outcome into a control-flow
//! hash.
//!
//! Applying this semantics to two instruction streams yields identical
//! final state *iff* the streams agree instruction-by-instruction on
//! operation, operands, resolved addresses, branch outcomes, and order —
//! any divergence avalanches through the hashes. The reference
//! interpreter applies it while walking the kernel IR tree; the
//! differential check applies it to the out-of-order core's commit log
//! and to the trace cursor's stream, and compares the three states.

use armdse_isa::instr::{DynInstr, MemKind, MemPattern, MemRef};
use armdse_isa::reg::{Reg, RegClass};
use std::collections::HashMap;

/// Memory word size of the value model in bytes. Sub-word accesses are
/// modelled at word granularity: any store to a word replaces the whole
/// word value. Both sides of every comparison use the same granularity,
/// so this coarsening costs no discriminating power for whole-stream
/// equality.
pub const WORD_BYTES: u64 = 8;

/// SplitMix64 finaliser: a fast, high-quality 64-bit mixing permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `v` into running hash `h`.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix64(h ^ v)
}

/// Architectural machine state under the oracle's value semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Register values per class (indexed by `RegClass::index()`, then by
    /// architectural register index).
    regs: [Vec<u64>; 4],
    /// Sparse word-granular memory: 8-byte-aligned address → value.
    /// Unwritten words hold [`ArchState::initial_word`].
    mem: HashMap<u64, u64>,
    /// Control-flow hash folding every executed branch's (PC, taken,
    /// target) in order.
    ctrl: u64,
    /// Instructions applied so far.
    retired: u64,
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new()
    }
}

impl ArchState {
    /// Reset state: every register holds a deterministic per-register
    /// initial value, memory holds deterministic per-word initial values.
    pub fn new() -> ArchState {
        let file = |class: RegClass| {
            (0..class.arch_count())
                .map(|i| mix64(0xA11C_0000 ^ ((class.index() as u64) << 32) ^ u64::from(i)))
                .collect()
        };
        ArchState {
            regs: [
                file(RegClass::Gp),
                file(RegClass::Fp),
                file(RegClass::Pred),
                file(RegClass::Cond),
            ],
            mem: HashMap::new(),
            ctrl: 0x5EED_0000,
            retired: 0,
        }
    }

    /// Deterministic initial value of the word at `word_addr`.
    #[inline]
    fn initial_word(word_addr: u64) -> u64 {
        mix64(0x4D45_4D00 ^ word_addr)
    }

    /// Current value of a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.class.index()][r.index as usize]
    }

    /// Current value of the (aligned) word containing `addr`.
    #[inline]
    pub fn word(&self, addr: u64) -> u64 {
        let w = addr & !(WORD_BYTES - 1);
        *self.mem.get(&w).unwrap_or(&Self::initial_word(w))
    }

    /// Instructions applied so far.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Number of distinct memory words written.
    #[inline]
    pub fn words_written(&self) -> usize {
        self.mem.len()
    }

    /// Word-aligned addresses a memory reference touches, in access order.
    fn touched_words(m: &MemRef) -> Vec<u64> {
        let mut words = Vec::new();
        let mut push_span = |lo: u64, bytes: u64| {
            let mut w = lo & !(WORD_BYTES - 1);
            let end = lo + bytes;
            while w < end {
                if words.last() != Some(&w) {
                    words.push(w);
                }
                w += WORD_BYTES;
            }
        };
        match m.pattern {
            MemPattern::Contiguous => push_span(m.addr, u64::from(m.bytes)),
            MemPattern::Strided {
                elem_bytes,
                stride,
                count,
            } => {
                for k in 0..i64::from(count) {
                    let a = (m.addr as i64 + stride * k) as u64;
                    push_span(a, u64::from(elem_bytes));
                }
            }
        }
        words
    }

    /// Apply one retired instruction to the state.
    pub fn apply(&mut self, di: &DynInstr) {
        // Gather the input hash: op, PC, source values, loaded words.
        let mut h = fold(di.pc, di.op.index() as u64);
        for s in di.srcs.iter() {
            h = fold(h, self.reg(s));
        }
        if let Some(m) = di.mem {
            h = fold(h, m.addr);
            if m.kind == MemKind::Load {
                for w in Self::touched_words(&m) {
                    h = fold(h, self.word(w));
                }
            }
        }
        let result = mix64(h);

        // Effects: stores write word values, destinations take register
        // values, branches extend the control-flow hash.
        if let Some(m) = di.mem {
            if m.kind == MemKind::Store {
                for w in Self::touched_words(&m) {
                    self.mem.insert(w, fold(result, w));
                }
            }
        }
        for (i, d) in di.dests.iter().enumerate() {
            self.regs[d.class.index()][d.index as usize] = fold(result, i as u64);
        }
        if let Some(b) = di.branch {
            self.ctrl = fold(self.ctrl, fold(b.target, u64::from(b.taken)));
        }
        self.retired += 1;
    }

    /// Apply a whole instruction stream.
    pub fn apply_all<'a>(&mut self, stream: impl IntoIterator<Item = &'a DynInstr>) {
        for di in stream {
            self.apply(di);
        }
    }

    /// Order-independent digest of the full state (registers, written
    /// memory, control-flow hash, retired count) for compact reporting.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fold(0xF17E_0000, self.retired);
        for file in &self.regs {
            for &v in file {
                h = fold(h, v);
            }
        }
        // XOR-combine per-word digests so iteration order is irrelevant.
        let mut mem_digest = 0u64;
        for (&w, &v) in &self.mem {
            mem_digest ^= mix64(fold(w, v));
        }
        fold(fold(h, mem_digest), self.ctrl)
    }

    /// Human-readable description of the first difference against
    /// `other`, or `None` when the states are identical.
    pub fn diff(&self, other: &ArchState) -> Option<String> {
        if self.retired != other.retired {
            return Some(format!(
                "retired counts differ: {} vs {}",
                self.retired, other.retired
            ));
        }
        if self.ctrl != other.ctrl {
            return Some("control-flow hashes differ".into());
        }
        for class in RegClass::ALL {
            let (a, b) = (&self.regs[class.index()], &other.regs[class.index()]);
            if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
                return Some(format!(
                    "register {}{i} differs: {:#x} vs {:#x}",
                    class.tag(),
                    a[i],
                    b[i]
                ));
            }
        }
        if self.mem != other.mem {
            let mut words: Vec<u64> = self.mem.keys().chain(other.mem.keys()).copied().collect();
            words.sort_unstable();
            words.dedup();
            for w in words {
                if self.word(w) != other.word(w) {
                    return Some(format!(
                        "memory word {w:#x} differs: {:#x} vs {:#x}",
                        self.word(w),
                        other.word(w)
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::instr::BranchInfo;
    use armdse_isa::op::OpClass;
    use armdse_isa::reg::RegList;

    fn alu(pc: u64, dest: Reg, srcs: &[Reg]) -> DynInstr {
        DynInstr {
            pc,
            op: OpClass::IntAlu,
            dests: RegList::from_slice(&[dest]),
            srcs: RegList::from_slice(srcs),
            mem: None,
            branch: None,
        }
    }

    fn store(pc: u64, addr: u64, bytes: u32) -> DynInstr {
        DynInstr {
            pc,
            op: OpClass::Store,
            dests: RegList::empty(),
            srcs: RegList::from_slice(&[Reg::gp(1)]),
            mem: Some(MemRef {
                addr,
                bytes,
                kind: MemKind::Store,
                pattern: MemPattern::Contiguous,
            }),
            branch: None,
        }
    }

    fn load(pc: u64, addr: u64, bytes: u32) -> DynInstr {
        DynInstr {
            pc,
            op: OpClass::Load,
            dests: RegList::from_slice(&[Reg::gp(2)]),
            srcs: RegList::from_slice(&[Reg::gp(1)]),
            mem: Some(MemRef {
                addr,
                bytes,
                kind: MemKind::Load,
                pattern: MemPattern::Contiguous,
            }),
            branch: None,
        }
    }

    #[test]
    fn fresh_states_are_equal_and_deterministic() {
        let a = ArchState::new();
        let b = ArchState::new();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.reg(Reg::gp(0)), a.reg(Reg::gp(1)));
        assert_ne!(a.word(0x1000), a.word(0x1008));
    }

    #[test]
    fn same_stream_same_state() {
        let stream = vec![
            alu(0x100, Reg::gp(3), &[Reg::gp(1), Reg::gp(2)]),
            store(0x104, 0x2000, 8),
            load(0x108, 0x2000, 8),
        ];
        let mut a = ArchState::new();
        let mut b = ArchState::new();
        a.apply_all(&stream);
        b.apply_all(&stream);
        assert_eq!(a, b);
        assert!(a.diff(&b).is_none());
    }

    #[test]
    fn reordered_aliasing_stores_diverge() {
        let s1 = store(0x100, 0x2000, 8);
        let s2 = store(0x104, 0x2000, 8);
        let mut fwd = ArchState::new();
        fwd.apply_all([&s1, &s2]);
        let mut rev = ArchState::new();
        rev.apply_all([&s2, &s1]);
        assert_ne!(fwd, rev, "aliasing store order must be visible");
        assert!(fwd.diff(&rev).is_some());
    }

    #[test]
    fn load_sees_prior_store() {
        let mut with_store = ArchState::new();
        with_store.apply(&store(0x100, 0x2000, 8));
        with_store.apply(&load(0x104, 0x2000, 8));
        let mut without = ArchState::new();
        without.apply(&load(0x104, 0x2000, 8));
        assert_ne!(
            with_store.reg(Reg::gp(2)),
            without.reg(Reg::gp(2)),
            "loaded value must depend on memory contents"
        );
    }

    #[test]
    fn branch_outcome_feeds_control_hash() {
        let br = |taken| DynInstr {
            pc: 0x100,
            op: OpClass::Branch,
            dests: RegList::empty(),
            srcs: RegList::from_slice(&[Reg::nzcv()]),
            mem: None,
            branch: Some(BranchInfo {
                taken,
                target: 0x80,
            }),
        };
        let mut t = ArchState::new();
        t.apply(&br(true));
        let mut n = ArchState::new();
        n.apply(&br(false));
        assert_ne!(t, n);
        assert_eq!(t.diff(&n).unwrap(), "control-flow hashes differ");
    }

    #[test]
    fn strided_access_touches_each_element_word() {
        let gather = DynInstr {
            pc: 0x100,
            op: OpClass::VecGather,
            dests: RegList::from_slice(&[Reg::fp(0)]),
            srcs: RegList::from_slice(&[Reg::gp(1)]),
            mem: Some(MemRef {
                addr: 0x3000,
                bytes: 32,
                kind: MemKind::Store,
                pattern: MemPattern::Strided {
                    elem_bytes: 8,
                    stride: 64,
                    count: 4,
                },
            }),
            branch: None,
        };
        let mut s = ArchState::new();
        s.apply(&gather);
        assert_eq!(s.words_written(), 4);
        for k in 0..4u64 {
            assert_ne!(
                s.word(0x3000 + 64 * k),
                ArchState::initial_word(0x3000 + 64 * k)
            );
        }
    }

    #[test]
    fn sub_word_stores_modelled_at_word_granularity() {
        let mut s = ArchState::new();
        s.apply(&store(0x100, 0x2004, 4)); // unaligned 4-byte store
        assert_eq!(s.words_written(), 1);
        assert_ne!(s.word(0x2000), ArchState::initial_word(0x2000));
    }
}
