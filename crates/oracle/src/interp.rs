//! Architecturally exact in-order reference interpreter.
//!
//! Executes a [`Kernel`] by walking its statement tree directly — *not*
//! via [`Program::lower`](armdse_isa::Program::lower) or
//! [`TraceCursor`](armdse_isa::TraceCursor) —
//! so the static layout (instruction indices, PCs), the loop-control
//! synthesis (induction increment + compare-and-branch per iteration),
//! and the affine address evaluation are all re-derived independently of
//! the production lowering path. Agreement between this interpreter and
//! a replay of the lowered program is therefore evidence that *both*
//! implementations are correct, not that one copied the other.
//!
//! The interpreter retires instructions strictly in program order,
//! applying the [`ArchState`] value semantics to each, and accumulates
//! the per-class retired-op summary.

use crate::arch::ArchState;
use armdse_isa::instr::{BranchInfo, DynInstr, InstrTemplate, MemRef};
use armdse_isa::kir::{Kernel, Stmt, MAX_LOOP_DEPTH};
use armdse_isa::op::OpClass;
use armdse_isa::program::CODE_BASE;
use armdse_isa::reg::{Reg, RegList};
use armdse_isa::{OpSummary, INSTR_BYTES};

/// Result of interpreting a kernel to completion.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// Final architectural state under the oracle value semantics.
    pub state: ArchState,
    /// Retired-op summary (per-class counts, load/store bytes).
    pub summary: OpSummary,
    /// Total retired instructions (== `summary.total()`).
    pub retired: u64,
}

/// Number of static instructions a block lowers to, counting the two
/// loop-control ops appended to every non-zero-trip loop. Zero-trip
/// loops lower to nothing.
fn static_len(stmts: &[Stmt]) -> u64 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Instr(_) => 1,
            Stmt::Loop { trip, body } => {
                if *trip == 0 {
                    0
                } else {
                    static_len(body) + 2
                }
            }
        })
        .sum()
}

struct Interp {
    state: ArchState,
    summary: OpSummary,
    /// Current iteration index per loop depth (outermost first). Entries
    /// at depths not currently inside a loop are zero.
    indices: [u64; MAX_LOOP_DEPTH],
}

#[inline]
fn pc_of(index: u64) -> u64 {
    CODE_BASE + index * INSTR_BYTES
}

impl Interp {
    fn retire(&mut self, di: &DynInstr) {
        self.state.apply(di);
        self.summary.record(
            di.op,
            di.mem.map_or(0, |m| u64::from(m.bytes)),
            di.mem.map(|m| m.kind),
        );
    }

    /// Execute one body template instance at static index `idx`.
    fn exec_template(&mut self, t: &InstrTemplate, idx: u64) {
        let pc = pc_of(idx);
        let mem = t.mem.map(|m| MemRef {
            addr: m.expr.eval(&self.indices),
            bytes: m.bytes,
            kind: m.kind,
            pattern: m.pattern,
        });
        // Explicit kernel-body branches fall through.
        let branch = t.op.is_branch().then_some(BranchInfo {
            taken: false,
            target: pc + INSTR_BYTES,
        });
        let di = DynInstr {
            pc,
            op: t.op,
            dests: t.dests,
            srcs: t.srcs,
            mem,
            branch,
        };
        self.retire(&di);
    }

    /// Execute a statement block starting at static index `start`;
    /// returns the static index just past the block.
    fn exec_block(&mut self, stmts: &[Stmt], depth: usize, start: u64) -> u64 {
        let mut idx = start;
        for s in stmts {
            match s {
                Stmt::Instr(t) => {
                    self.exec_template(t, idx);
                    idx += 1;
                }
                Stmt::Loop { trip, body } => {
                    if *trip == 0 {
                        continue; // lowered to nothing
                    }
                    assert!(depth < MAX_LOOP_DEPTH, "loop nest too deep");
                    let header = idx;
                    let add_idx = idx + static_len(body);
                    let branch_idx = add_idx + 1;
                    let ind = Reg::gp(24 + depth as u8);
                    for it in 0..*trip {
                        self.indices[depth] = it;
                        let end = self.exec_block(body, depth + 1, header);
                        debug_assert_eq!(end, add_idx);
                        // Flag-setting induction increment.
                        self.retire(&DynInstr {
                            pc: pc_of(add_idx),
                            op: OpClass::IntAlu,
                            dests: RegList::from_slice(&[ind, Reg::nzcv()]),
                            srcs: RegList::from_slice(&[ind]),
                            mem: None,
                            branch: None,
                        });
                        // Backward compare-and-branch to the loop header;
                        // not taken on the final iteration.
                        self.retire(&DynInstr {
                            pc: pc_of(branch_idx),
                            op: OpClass::Branch,
                            dests: RegList::empty(),
                            srcs: RegList::from_slice(&[Reg::nzcv()]),
                            mem: None,
                            branch: Some(BranchInfo {
                                taken: it + 1 < *trip,
                                target: pc_of(header),
                            }),
                        });
                    }
                    self.indices[depth] = 0;
                    idx = branch_idx + 1;
                }
            }
        }
        idx
    }
}

/// Interpret `kernel` to completion in program order.
pub fn interpret(kernel: &Kernel) -> InterpResult {
    let mut interp = Interp {
        state: ArchState::new(),
        summary: OpSummary::default(),
        indices: [0; MAX_LOOP_DEPTH],
    };
    interp.exec_block(&kernel.body, 0, 0);
    let retired = interp.summary.total();
    debug_assert_eq!(retired, interp.state.retired());
    InterpResult {
        state: interp.state,
        summary: interp.summary,
        retired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::kir::AddrExpr;
    use armdse_isa::{Program, TraceCursor};

    fn triad(trip: u64) -> Kernel {
        Kernel::new(
            "triad",
            vec![Stmt::repeat(
                trip,
                vec![
                    Stmt::Instr(InstrTemplate::load(
                        OpClass::VecLoad,
                        Reg::fp(0),
                        &[Reg::gp(1)],
                        AddrExpr::linear(0x1000, 0, 64),
                        64,
                    )),
                    Stmt::Instr(InstrTemplate::compute(
                        OpClass::VecFma,
                        &[Reg::fp(2)],
                        &[Reg::fp(0), Reg::fp(1)],
                    )),
                    Stmt::Instr(InstrTemplate::store(
                        OpClass::VecStore,
                        &[Reg::fp(2), Reg::gp(2)],
                        AddrExpr::linear(0x9000, 0, 64),
                        64,
                    )),
                ],
            )],
        )
    }

    #[test]
    fn summary_matches_lowered_program_analytics() {
        let k = triad(9);
        let p = Program::lower(&k);
        let r = interpret(&k);
        assert_eq!(r.summary, OpSummary::of(&p));
        assert_eq!(r.retired, p.dynamic_len());
    }

    #[test]
    fn state_matches_cursor_replay() {
        // The interpreter walks the tree; the cursor walks the lowered
        // program. Replaying the cursor stream through a fresh ArchState
        // must land on the identical final state.
        let k = triad(7);
        let p = Program::lower(&k);
        let r = interpret(&k);
        let mut replay = ArchState::new();
        for di in TraceCursor::new(&p) {
            replay.apply(&di);
        }
        assert_eq!(r.state.diff(&replay), None);
        assert_eq!(r.state.fingerprint(), replay.fingerprint());
    }

    #[test]
    fn nested_and_sibling_loops_match_cursor() {
        let inner = |base: u64| {
            Stmt::Instr(InstrTemplate::load(
                OpClass::Load,
                Reg::gp(2),
                &[Reg::gp(3)],
                AddrExpr::bilinear(base, 0, 128, 1, 8),
                8,
            ))
        };
        let k = Kernel::new(
            "nest",
            vec![
                Stmt::repeat(3, vec![Stmt::repeat(4, vec![inner(0x1000)])]),
                Stmt::repeat(2, vec![inner(0x8000)]),
                Stmt::Instr(InstrTemplate::compute(OpClass::IntAlu, &[Reg::gp(0)], &[])),
            ],
        );
        let p = Program::lower(&k);
        let r = interpret(&k);
        let mut replay = ArchState::new();
        let mut n = 0u64;
        for di in TraceCursor::new(&p) {
            replay.apply(&di);
            n += 1;
        }
        assert_eq!(r.retired, n);
        assert_eq!(r.state.diff(&replay), None);
        assert_eq!(r.summary, OpSummary::of(&p));
    }

    #[test]
    fn zero_trip_loops_retire_nothing() {
        let k = Kernel::new(
            "z",
            vec![
                Stmt::repeat(
                    0,
                    vec![Stmt::Instr(InstrTemplate::compute(
                        OpClass::IntAlu,
                        &[Reg::gp(0)],
                        &[],
                    ))],
                ),
                Stmt::Instr(InstrTemplate::compute(OpClass::IntMul, &[Reg::gp(1)], &[])),
            ],
        );
        let r = interpret(&k);
        assert_eq!(r.retired, 1);
        // And the surviving op's PC matches the lowered layout.
        let p = Program::lower(&k);
        let mut replay = ArchState::new();
        replay.apply_all(TraceCursor::new(&p).collect::<Vec<_>>().iter());
        assert_eq!(r.state.diff(&replay), None);
    }

    #[test]
    fn empty_kernel_is_a_fixed_point() {
        let r = interpret(&Kernel::new("empty", vec![]));
        assert_eq!(r.retired, 0);
        assert_eq!(r.state, ArchState::new());
    }
}
