//! Differential checking: reference interpreter vs the out-of-order core.
//!
//! [`check_kernel`] runs one kernel through three independent executions —
//! the in-order reference interpreter ([`crate::interp`]), a trace-cursor
//! replay of the lowered program, and the OoO pipeline's commit-order
//! retirement stream (any [`SimBackend`]'s traced run) — applies the
//! same [`ArchState`] value semantics to each, and requires every final
//! architectural state and retired-op count to agree. A fourth, metrics
//! lane re-runs the simulation with cycle accounting enabled and
//! requires identical statistics (metrics transparency) plus exact
//! cycle conservation across the attribution buckets. [`fuzz`] drives
//! the seeded random generator through this check for a whole campaign.
//!
//! With the `check-invariants` feature enabled, every simulated cycle also
//! runs the pipeline's structural invariant assertions, so a clean fuzz
//! campaign certifies zero invariant violations across all its programs.

use crate::arch::ArchState;
use crate::gen::{random_core_params, random_kernel, GenConfig};
use crate::interp::interpret;
use armdse_isa::{Kernel, OpSummary, Program, TraceCursor};
use armdse_memsim::MemParams;
use armdse_rng::{SeedableRng, Xoshiro256pp};
use armdse_simcore::{BankedProxy, CoreParams, Idealized, SimBackend};

/// Run one kernel through interpreter, cursor replay, and the OoO core
/// on the given simulation backend; return `Err` describing the first
/// divergence found.
pub fn check_kernel(
    kernel: &Kernel,
    core: &CoreParams,
    mem: &MemParams,
    backend: &dyn SimBackend,
) -> Result<(), String> {
    kernel.validate()?;
    let program = Program::lower(kernel);
    let reference = interpret(kernel);

    // Lowering cross-check: the cursor walk of the lowered program must
    // reproduce the interpreter's tree walk exactly.
    let mut cursor_state = ArchState::new();
    let mut cursor_summary = OpSummary::default();
    for di in TraceCursor::new(&program) {
        cursor_state.apply(&di);
        cursor_summary.record(
            di.op,
            di.mem.map_or(0, |m| u64::from(m.bytes)),
            di.mem.map(|m| m.kind),
        );
    }
    if let Some(d) = reference.state.diff(&cursor_state) {
        return Err(format!("interpreter vs lowered-trace divergence: {d}"));
    }
    if cursor_summary != reference.summary {
        return Err(format!(
            "interpreter vs lowered-trace op summary: {:?} != {:?}",
            reference.summary, cursor_summary
        ));
    }

    // Simulated run with commit-order trace.
    let (stats, trace) = backend.run_traced(&program, core, mem);
    if stats.hit_cycle_limit {
        return Err(format!(
            "simulation wedged: hit cycle limit at {} cycles",
            stats.cycles
        ));
    }
    if !stats.validated {
        return Err(format!(
            "simulation failed op-count validation: observed {:?} != expected {:?}",
            stats.observed, reference.summary
        ));
    }
    if stats.retired != reference.retired {
        return Err(format!(
            "retired count mismatch: core {} != reference {}",
            stats.retired, reference.retired
        ));
    }
    if trace.len() as u64 != stats.retired {
        return Err(format!(
            "commit log length {} != retired count {}",
            trace.len(),
            stats.retired
        ));
    }

    // Architectural replay of the core's commit stream.
    let mut commit_state = ArchState::new();
    let mut commit_summary = OpSummary::default();
    for di in &trace {
        commit_state.apply(di);
        commit_summary.record(
            di.op,
            di.mem.map_or(0, |m| u64::from(m.bytes)),
            di.mem.map(|m| m.kind),
        );
    }
    if let Some(d) = reference.state.diff(&commit_state) {
        return Err(format!("interpreter vs core commit-stream divergence: {d}"));
    }
    if commit_summary != reference.summary {
        return Err(format!(
            "commit-stream op summary {:?} != reference {:?}",
            commit_summary, reference.summary
        ));
    }

    // Metrics-transparency lane: running the same job with cycle
    // accounting enabled must not perturb any statistic (architectural
    // or timing), and the attribution must account for every cycle.
    let (metrics_stats, counters) = backend.run_with_metrics(&program, core, mem);
    if metrics_stats != stats {
        return Err(format!(
            "metrics run perturbed the simulation: {metrics_stats:?} != {stats:?}"
        ));
    }
    if counters.cycles != stats.cycles {
        return Err(format!(
            "counter cycle total {} != simulated cycles {}",
            counters.cycles, stats.cycles
        ));
    }
    if !counters.conserves() {
        return Err(format!(
            "cycle attribution leak: {} cycles but {} attributed",
            counters.cycles,
            counters.attributed_cycles()
        ));
    }
    Ok(())
}

/// Configuration of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random programs to run.
    pub programs: usize,
    /// Campaign seed; one seed fixes every kernel, design point, and
    /// backend choice in the campaign.
    pub seed: u64,
    /// Kernel shape limits.
    pub gen: GenConfig,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            programs: 200,
            seed: 0xA5C3_2024,
            gen: GenConfig::default(),
        }
    }
}

/// One divergent program from a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the program within the campaign (re-derivable from the
    /// campaign seed).
    pub index: usize,
    /// Kernel name.
    pub kernel: String,
    /// Name of the backend the program ran on (see [`SimBackend::name`]).
    pub backend: &'static str,
    /// Divergence description from [`check_kernel`].
    pub error: String,
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Programs executed.
    pub programs: usize,
    /// Divergences found (empty on a clean campaign).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the campaign found no divergence.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run a differential fuzz campaign: every program is generated, checked
/// against the reference interpreter, and simulated on a random design
/// point. Every fourth program runs on the hardware-proxy hierarchy;
/// memory parameters are the fixed ThunderX2-like baseline.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    fuzz_campaign(cfg, None)
}

/// Like [`fuzz`], but every program runs on the one supplied backend
/// instead of the default idealized/proxy alternation. The reuse lane
/// pushes the interval-memoizing backend through the same fixed-seed
/// campaign this way: [`check_kernel`] cross-checks the backend's
/// cached entry points (`run`, `run_with_metrics`) against its uncached
/// trace (`run_traced`) and the reference interpreter, so any
/// memoization unsoundness surfaces as a divergence.
pub fn fuzz_with(cfg: &FuzzConfig, backend: &dyn SimBackend) -> FuzzReport {
    fuzz_campaign(cfg, Some(backend))
}

/// The shared campaign loop: program generation and design-point
/// sampling are identical whichever backend selection is in force, so
/// `fuzz` and `fuzz_with` exercise the same program population.
fn fuzz_campaign(cfg: &FuzzConfig, fixed: Option<&dyn SimBackend>) -> FuzzReport {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mem = MemParams::thunderx2();
    let mut failures = Vec::new();
    for i in 0..cfg.programs {
        let kernel = random_kernel(&mut rng, &cfg.gen, format!("fuzz-{:#x}-{i}", cfg.seed));
        let core = random_core_params(&mut rng);
        let backend: &dyn SimBackend = match fixed {
            Some(b) => b,
            None if i % 4 == 3 => &BankedProxy,
            None => &Idealized,
        };
        if let Err(error) = check_kernel(&kernel, &core, &mem, backend) {
            failures.push(FuzzFailure {
                index: i,
                kernel: kernel.name.clone(),
                backend: backend.name(),
                error,
            });
        }
    }
    FuzzReport {
        programs: cfg.programs,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_kernels::{minisweep, stream, tealeaf, WorkloadScale};

    fn baseline() -> (CoreParams, MemParams) {
        (CoreParams::thunderx2(), MemParams::thunderx2())
    }

    #[test]
    fn hpc_kernels_pass_on_both_backends() {
        let (core, mem) = baseline();
        let kernels = [
            stream::kernel(&stream::StreamParams::for_scale(WorkloadScale::Tiny), 128),
            tealeaf::kernel(&tealeaf::TeaLeafParams::for_scale(WorkloadScale::Tiny), 128),
            minisweep::kernel(&minisweep::SweepParams::for_scale(WorkloadScale::Tiny), 128),
        ];
        for k in &kernels {
            check_kernel(k, &core, &mem, &Idealized).unwrap();
            check_kernel(k, &core, &mem, &BankedProxy).unwrap();
        }
    }

    #[test]
    fn invalid_kernel_is_rejected_not_simulated() {
        use armdse_isa::instr::InstrTemplate;
        use armdse_isa::{OpClass, Reg, Stmt};
        let (core, mem) = baseline();
        let bad = Kernel::new(
            "bad",
            vec![Stmt::Instr(InstrTemplate::compute(
                OpClass::IntAlu,
                &[Reg::gp(24)], // reserved induction register
                &[],
            ))],
        );
        assert!(check_kernel(&bad, &core, &mem, &Idealized).is_err());
    }

    #[test]
    fn short_fuzz_campaign_is_clean_and_deterministic() {
        let cfg = FuzzConfig {
            programs: 40,
            ..FuzzConfig::default()
        };
        let a = fuzz(&cfg);
        assert!(a.ok(), "fuzz failures: {:#?}", a.failures);
        assert_eq!(a.programs, 40);
        let b = fuzz(&cfg);
        assert!(b.ok());
    }

    #[test]
    fn different_seeds_explore_different_programs() {
        // Indirect but cheap determinism check: two seeds must generate
        // different first kernels.
        let mut r1 = Xoshiro256pp::seed_from_u64(1);
        let mut r2 = Xoshiro256pp::seed_from_u64(2);
        let g = GenConfig::default();
        let k1 = random_kernel(&mut r1, &g, "a");
        let k2 = random_kernel(&mut r2, &g, "b");
        let p1 = Program::lower(&k1);
        let p2 = Program::lower(&k2);
        assert!(p1.ops != p2.ops || p1.loops != p2.loops);
    }
}
