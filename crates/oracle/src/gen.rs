//! Seeded random kernel and core-parameter generation for differential
//! fuzzing.
//!
//! [`random_kernel`] emits structurally valid [`Kernel`]s mixing scalar and
//! SVE compute, contiguous and gather/scatter memory accesses, explicit
//! branches, and counted loop nests (including the occasional zero-trip
//! loop, which lowering must drop). Memory templates draw their base
//! addresses from a small shared pool so independent templates alias the
//! same cache lines — the interesting case for store-to-load forwarding and
//! memory-ordering bugs.
//!
//! [`random_core_params`] draws a design point from the paper's Table II
//! ranges, constrained so [`CoreParams::validate`] always accepts it and so
//! every generated access (≤ 64 bytes) fits within one cycle's load/store
//! bandwidth.

use armdse_isa::instr::InstrTemplate;
use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::op::OpClass;
use armdse_isa::reg::Reg;
use armdse_rng::Rng;
use armdse_simcore::CoreParams;

/// Shape limits for generated kernels.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum loop-nest depth (≤ `MAX_LOOP_DEPTH`).
    pub max_depth: usize,
    /// Maximum statements per block (shrinks with depth).
    pub max_body: usize,
    /// Maximum loop trip count.
    pub max_trip: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 3,
            max_body: 6,
            max_trip: 5,
        }
    }
}

/// Base addresses shared by all generated memory templates. A handful of
/// nearby bases (same and adjacent cache lines) maximises aliasing between
/// independently generated loads and stores.
const ADDR_POOL: [u64; 4] = [0x4_0000, 0x4_0008, 0x4_0040, 0x4_1000];

/// Per-depth stride menu (bytes). Negative strides walk arrays backwards;
/// the pool bases sit far enough above zero that no reachable address can
/// go negative within the generator's trip/depth bounds.
const STRIDES: [i64; 8] = [-64, -16, -8, 0, 8, 16, 64, 256];

/// Contiguous access sizes (bytes). Capped at 64 so every access fits the
/// generated cores' minimum load/store bandwidth.
const SCALAR_BYTES: [u32; 2] = [4, 8];
const VECTOR_BYTES: [u32; 3] = [16, 32, 64];

fn pick<T: Copy, R: Rng>(rng: &mut R, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

/// Kernel-usable GP registers: x24..x29 are reserved for lowering-inserted
/// induction variables (see `armdse_isa::program::induction_reg`).
fn gp<R: Rng>(rng: &mut R) -> Reg {
    const POOL: [u8; 26] = [
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 30,
        31,
    ];
    Reg::gp(pick(rng, &POOL))
}

fn fp<R: Rng>(rng: &mut R) -> Reg {
    Reg::fp(rng.gen_range(0..32u32) as u8)
}

fn pred<R: Rng>(rng: &mut R) -> Reg {
    Reg::pred(rng.gen_range(0..17u32) as u8)
}

/// Random affine address over the enclosing `depth` loop indices.
fn gen_addr<R: Rng>(rng: &mut R, depth: usize) -> AddrExpr {
    let base = pick(rng, &ADDR_POOL) + 8 * rng.gen_range(0..8u64);
    let mut e = AddrExpr::fixed(base);
    for d in 0..depth {
        if rng.gen_bool(0.5) {
            e.strides[d] = pick(rng, &STRIDES);
        }
    }
    e
}

fn srcs<R: Rng>(rng: &mut R, n: usize, reg: fn(&mut R) -> Reg) -> Vec<Reg> {
    (0..n).map(|_| reg(rng)).collect()
}

/// One random instruction template valid at nest depth `depth`.
fn gen_instr<R: Rng>(rng: &mut R, depth: usize) -> InstrTemplate {
    match rng.gen_range(0..100u32) {
        // -- memory --
        0..=14 => InstrTemplate::load(
            OpClass::Load,
            gp(rng),
            &[gp(rng)],
            gen_addr(rng, depth),
            pick(rng, &SCALAR_BYTES),
        ),
        15..=29 => InstrTemplate::store(
            OpClass::Store,
            &[gp(rng), gp(rng)],
            gen_addr(rng, depth),
            pick(rng, &SCALAR_BYTES),
        ),
        30..=37 => InstrTemplate::load(
            OpClass::VecLoad,
            fp(rng),
            &[gp(rng)],
            gen_addr(rng, depth),
            pick(rng, &VECTOR_BYTES),
        ),
        38..=45 => InstrTemplate::store(
            OpClass::VecStore,
            &[fp(rng), gp(rng)],
            gen_addr(rng, depth),
            pick(rng, &VECTOR_BYTES),
        ),
        46..=49 => {
            let count = rng.gen_range(2..=8u32);
            InstrTemplate::gather(
                fp(rng),
                &[gp(rng), fp(rng)],
                gen_addr(rng, depth),
                pick(rng, &[4u32, 8]),
                pick(rng, &[-64i64, -16, 8, 16, 64]),
                count,
            )
        }
        50..=53 => {
            let count = rng.gen_range(2..=8u32);
            InstrTemplate::scatter(
                &[fp(rng), gp(rng), fp(rng)],
                gen_addr(rng, depth),
                pick(rng, &[4u32, 8]),
                pick(rng, &[-64i64, -16, 8, 16, 64]),
                count,
            )
        }
        // -- scalar integer --
        54..=63 => {
            // Sometimes flag-setting (adds/subs): second dest NZCV, the
            // pattern explicit branches later consume.
            let dests = if rng.gen_bool(0.3) {
                vec![gp(rng), Reg::nzcv()]
            } else {
                vec![gp(rng)]
            };
            let n = rng.gen_range(0..=2);
            InstrTemplate::compute(OpClass::IntAlu, &dests, &srcs(rng, n, gp))
        }
        64..=67 => InstrTemplate::compute(OpClass::IntMul, &[gp(rng)], &srcs(rng, 2, gp)),
        68..=69 => InstrTemplate::compute(OpClass::IntDiv, &[gp(rng)], &srcs(rng, 2, gp)),
        // -- scalar FP --
        70..=75 => {
            let (op, n) = (
                pick(rng, &[OpClass::FpAdd, OpClass::FpMul, OpClass::FpFma]),
                rng.gen_range(1..=3),
            );
            InstrTemplate::compute(op, &[fp(rng)], &srcs(rng, n, fp))
        }
        76..=77 => InstrTemplate::compute(OpClass::FpDiv, &[fp(rng)], &srcs(rng, 2, fp)),
        // -- SVE vector --
        78..=85 => {
            let (op, n) = (
                pick(rng, &[OpClass::VecAlu, OpClass::VecFp, OpClass::VecFma]),
                rng.gen_range(1..=3),
            );
            InstrTemplate::compute(op, &[fp(rng)], &srcs(rng, n, fp))
        }
        86..=87 => InstrTemplate::compute(OpClass::VecDiv, &[fp(rng)], &srcs(rng, 2, fp)),
        // -- predicate --
        88..=92 => {
            let n = rng.gen_range(1..=2);
            InstrTemplate::compute(OpClass::PredOp, &[pred(rng)], &srcs(rng, n, pred))
        }
        // -- explicit (fall-through) branch on the flags --
        _ => InstrTemplate::branch(&[Reg::nzcv()]),
    }
}

/// Generate a statement block at `depth`. At most two loops per block and
/// bodies that shrink with depth keep the dynamic length bounded (worst
/// case under the default config is a few thousand retired instructions).
fn gen_block<R: Rng>(rng: &mut R, cfg: &GenConfig, depth: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=cfg.max_body.saturating_sub(depth).max(1));
    let mut loops = 0;
    (0..n)
        .map(|_| {
            if depth < cfg.max_depth && loops < 2 && rng.gen_bool(0.35) {
                loops += 1;
                // Occasional zero-trip loop: lowering must drop it.
                let trip = if rng.gen_bool(0.06) {
                    0
                } else {
                    rng.gen_range(1..=cfg.max_trip)
                };
                Stmt::repeat(trip, gen_block(rng, cfg, depth + 1))
            } else {
                Stmt::Instr(gen_instr(rng, depth))
            }
        })
        .collect()
}

/// Generate one random, validated kernel.
pub fn random_kernel<R: Rng>(rng: &mut R, cfg: &GenConfig, name: impl Into<String>) -> Kernel {
    let k = Kernel::new(name, gen_block(rng, cfg, 0));
    debug_assert_eq!(k.validate(), Ok(()), "generator produced an invalid kernel");
    k
}

/// Draw a random design point from the paper's Table II ranges, guaranteed
/// to pass [`CoreParams::validate`]. Load/store bandwidths are at least
/// `max(64, VL/8)` bytes per cycle so every generated access is issueable.
pub fn random_core_params<R: Rng>(rng: &mut R) -> CoreParams {
    let vector_length = pick(rng, &[128u32, 256, 512]);
    let bw_floor = 64u32.max(vector_length / 8);
    let p = CoreParams {
        vector_length,
        fetch_block_bytes: 1 << rng.gen_range(2..=7u32),
        loop_buffer_size: rng.gen_range(1..=64u32),
        gp_regs: 40 + 8 * rng.gen_range(0..=20u32),
        fp_regs: 40 + 8 * rng.gen_range(0..=20u32),
        pred_regs: 24 + 8 * rng.gen_range(0..=10u32),
        cond_regs: 8 + 8 * rng.gen_range(0..=6u32),
        commit_width: rng.gen_range(1..=8u32),
        frontend_width: rng.gen_range(1..=8u32),
        lsq_completion_width: rng.gen_range(1..=4u32),
        rob_size: 8 + 4 * rng.gen_range(0..=60u32),
        load_queue: 4 + 4 * rng.gen_range(0..=30u32),
        store_queue: 4 + 4 * rng.gen_range(0..=30u32),
        load_bandwidth: bw_floor << rng.gen_range(0..=2u32),
        store_bandwidth: bw_floor << rng.gen_range(0..=2u32),
        mem_requests_per_cycle: rng.gen_range(1..=8u32),
        loads_per_cycle: rng.gen_range(1..=8u32),
        stores_per_cycle: rng.gen_range(1..=8u32),
    };
    debug_assert_eq!(
        p.validate(),
        Ok(()),
        "generator produced invalid core params"
    );
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::Program;
    use armdse_rng::{SeedableRng, Xoshiro256pp};

    #[test]
    fn generated_kernels_always_validate() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let cfg = GenConfig::default();
        for i in 0..300 {
            let k = random_kernel(&mut rng, &cfg, format!("fuzz-{i}"));
            k.validate().unwrap_or_else(|e| panic!("kernel {i}: {e}"));
        }
    }

    #[test]
    fn generated_core_params_always_validate() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for i in 0..300 {
            let p = random_core_params(&mut rng);
            p.validate().unwrap_or_else(|e| panic!("params {i}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let gen_all = |seed: u64| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            (0..20)
                .map(|i| {
                    let k = random_kernel(&mut rng, &cfg, format!("k{i}"));
                    Program::lower(&k)
                })
                .collect::<Vec<_>>()
        };
        let (a, b) = (gen_all(42), gen_all(42));
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.ops, pb.ops);
            assert_eq!(pa.loops, pb.loops);
        }
        // ... and a different seed actually changes the stream.
        let c = gen_all(43);
        assert!(a.iter().zip(&c).any(|(pa, pc)| pa.ops != pc.ops));
    }

    #[test]
    fn dynamic_length_stays_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let cfg = GenConfig::default();
        for i in 0..200 {
            let k = random_kernel(&mut rng, &cfg, format!("b{i}"));
            let p = Program::lower(&k);
            assert!(
                p.dynamic_len() <= 20_000,
                "kernel {i} dynamic length {} too large",
                p.dynamic_len()
            );
        }
    }

    #[test]
    fn generator_covers_the_interesting_op_classes() {
        use armdse_isa::OpSummary;
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let cfg = GenConfig::default();
        let mut total = OpSummary::default();
        for i in 0..200 {
            let p = Program::lower(&random_kernel(&mut rng, &cfg, format!("c{i}")));
            let s = OpSummary::of(&p);
            for (acc, v) in total.per_class.iter_mut().zip(&s.per_class) {
                *acc += v;
            }
        }
        for c in [
            OpClass::Load,
            OpClass::Store,
            OpClass::VecLoad,
            OpClass::VecStore,
            OpClass::VecGather,
            OpClass::VecScatter,
            OpClass::IntAlu,
            OpClass::VecFma,
            OpClass::PredOp,
            OpClass::Branch,
        ] {
            assert!(
                total.per_class[c.index()] > 0,
                "no {c:?} generated in 200 kernels"
            );
        }
    }
}
