//! Behavioural tests of individual pipeline mechanisms, driven by
//! handcrafted kernels so each structure is isolated.

use armdse_isa::kir::{AddrExpr, Kernel, Stmt};
use armdse_isa::{op::OpClass, InstrTemplate, Program, Reg};
use armdse_memsim::MemParams;
use armdse_simcore::{simulate, CoreParams, SimStats};

fn run(kernel: &Kernel, core: &CoreParams, mem: &MemParams) -> SimStats {
    let p = Program::lower(kernel);
    simulate(&p, core, mem)
}

/// A loop of `trip` iterations whose body is `n_alu` independent ALU ops.
fn alu_loop(trip: u64, n_alu: usize) -> Kernel {
    let body: Vec<Stmt> = (0..n_alu)
        .map(|i| {
            Stmt::Instr(InstrTemplate::compute(
                OpClass::IntAlu,
                &[Reg::gp((i % 8) as u8)],
                &[Reg::gp(((i + 8) % 16) as u8)],
            ))
        })
        .collect();
    Kernel::new("alu", vec![Stmt::repeat(trip, body)])
}

#[test]
fn ipc_bounded_by_scalar_ports() {
    // 3 scalar ports; a pure-ALU loop can't exceed ~3 ALU IPC even with
    // huge frontend/commit widths... plus 2 loop-control ops per iter
    // that also use scalar ports. Total scalar throughput <= 3/cycle.
    let mut c = CoreParams::thunderx2();
    c.frontend_width = 16;
    c.commit_width = 16;
    let s = run(&alu_loop(500, 8), &c, &MemParams::thunderx2());
    assert!(s.ipc() <= 3.05, "ipc {} exceeds scalar port count", s.ipc());
    assert!(
        s.ipc() > 2.0,
        "ipc {} suspiciously low for independent ALUs",
        s.ipc()
    );
}

#[test]
fn store_to_load_forwarding_beats_cold_memory() {
    // A loop that stores then immediately loads the same address: with
    // forwarding, the load never waits for DRAM.
    let addr = AddrExpr::fixed(0x4_0000);
    let body = vec![
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(0), Reg::gp(1)],
            addr,
            8,
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(1),
            &[Reg::gp(1)],
            addr,
            8,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::FpAdd,
            &[Reg::fp(0)],
            &[Reg::fp(1)],
        )),
    ];
    let k = Kernel::new("fwd", vec![Stmt::repeat(200, body)]);
    let mut mem = MemParams::thunderx2();
    mem.ram_access_ns = 200.0; // punishing DRAM
    let s = run(&k, &CoreParams::thunderx2(), &mem);
    assert!(s.validated);
    // The chain is ~store-exec + forward + FpAdd per iteration; even
    // serialised that is far under DRAM latency per iteration.
    let cpi = s.cycles as f64 / s.retired as f64;
    assert!(cpi < 10.0, "forwarding failed, cpi {cpi}");
}

#[test]
fn lsq_completion_width_throttles_load_writebacks() {
    // Many independent L1-hitting loads: completion width 1 caps load
    // writebacks at 1/cycle; width 8 should be clearly faster.
    let body: Vec<Stmt> = (0u64..8)
        .map(|i| {
            Stmt::Instr(InstrTemplate::load(
                OpClass::Load,
                Reg::fp(i as u8),
                &[Reg::gp(1)],
                AddrExpr::linear(0x1_0000 + i * 8, 0, 64),
                8,
            ))
        })
        .collect();
    let k = Kernel::new("lsqw", vec![Stmt::repeat(300, body)]);
    let mut c = CoreParams::thunderx2();
    c.loads_per_cycle = 8;
    c.mem_requests_per_cycle = 16;
    c.lsq_completion_width = 1;
    let narrow = run(&k, &c, &MemParams::thunderx2());
    c.lsq_completion_width = 8;
    let wide = run(&k, &c, &MemParams::thunderx2());
    assert!(
        wide.cycles < narrow.cycles,
        "wide {} !< narrow {}",
        wide.cycles,
        narrow.cycles
    );
    // Width 1 with 8 loads + 2 control ops per iteration: at most one
    // load completes per cycle, so >= 8 cycles per iteration.
    assert!(narrow.cycles >= 8 * 300);
}

#[test]
fn loads_per_cycle_limits_memory_issue() {
    let body: Vec<Stmt> = (0u64..6)
        .map(|i| {
            Stmt::Instr(InstrTemplate::load(
                OpClass::Load,
                Reg::fp(i as u8),
                &[Reg::gp(1)],
                AddrExpr::linear(0x1_0000 + i * 2048, 0, 8),
                8,
            ))
        })
        .collect();
    let k = Kernel::new("lpc", vec![Stmt::repeat(300, body)]);
    let mut c = CoreParams::thunderx2();
    c.lsq_completion_width = 8;
    c.mem_requests_per_cycle = 16;
    c.loads_per_cycle = 1;
    let one = run(&k, &c, &MemParams::thunderx2());
    c.loads_per_cycle = 6;
    let six = run(&k, &c, &MemParams::thunderx2());
    assert!(
        six.cycles < one.cycles,
        "six {} !< one {}",
        six.cycles,
        one.cycles
    );
}

#[test]
fn wide_vector_store_splits_into_line_requests() {
    // One 256-byte vector store per iteration over 64-byte lines: 4 line
    // requests each. stores_per_cycle=1 means a store drains over >= 4
    // cycles; the store queue should back-pressure a tight loop.
    let body = vec![Stmt::Instr(InstrTemplate::store(
        OpClass::VecStore,
        &[Reg::fp(0), Reg::gp(1)],
        AddrExpr::linear(0x10_0000, 0, 256),
        256,
    ))];
    let k = Kernel::new("wides", vec![Stmt::repeat(200, body)]);
    let mut c = CoreParams::thunderx2();
    c.vector_length = 2048;
    c.load_bandwidth = 256;
    c.store_bandwidth = 256;
    c.mem_requests_per_cycle = 8;
    c.stores_per_cycle = 1;
    let slow = run(&k, &c, &MemParams::thunderx2());
    c.stores_per_cycle = 8;
    let fast = run(&k, &c, &MemParams::thunderx2());
    assert!(slow.validated && fast.validated);
    assert!(
        fast.cycles < slow.cycles,
        "fast {} !< slow {}",
        fast.cycles,
        slow.cycles
    );
    // 4 line requests per store at 1/cycle: at least 4 cycles/iteration.
    assert!(slow.cycles >= 4 * 200);
}

#[test]
fn loop_buffer_engages_on_second_iteration() {
    let mut c = CoreParams::thunderx2();
    c.fetch_block_bytes = 4; // 1 instruction per fetch otherwise
    c.loop_buffer_size = 64;
    let s = run(&alu_loop(100, 6), &c, &MemParams::thunderx2());
    assert!(
        s.stalls.loop_buffer_cycles > 50,
        "loop buffer never engaged: {:?}",
        s.stalls
    );
}

#[test]
fn loop_buffer_too_small_never_engages() {
    let mut c = CoreParams::thunderx2();
    c.fetch_block_bytes = 4;
    c.loop_buffer_size = 4; // body is 8 instructions
    let s = run(&alu_loop(100, 6), &c, &MemParams::thunderx2());
    assert_eq!(s.stalls.loop_buffer_cycles, 0);
}

#[test]
fn rename_stalls_attributed_to_starved_class() {
    // Long FP dependency chains with minimal FP registers: the FP free
    // list empties while GP stays healthy.
    let body: Vec<Stmt> = (0..8)
        .map(|i| {
            Stmt::Instr(InstrTemplate::compute(
                OpClass::FpFma,
                &[Reg::fp(i as u8)],
                &[Reg::fp(i as u8), Reg::fp(((i + 1) % 8) as u8)],
            ))
        })
        .collect();
    let k = Kernel::new("fpchain", vec![Stmt::repeat(200, body)]);
    let mut c = CoreParams::thunderx2();
    c.fp_regs = 38;
    let s = run(&k, &c, &MemParams::thunderx2());
    assert!(s.stalls.rename_fp > 0, "expected FP rename stalls");
    assert_eq!(s.stalls.rename_pred, 0);
}

#[test]
fn unpipelined_divides_throttle_throughput() {
    let div_body = vec![Stmt::Instr(InstrTemplate::compute(
        OpClass::FpDiv,
        &[Reg::fp(0)],
        &[Reg::fp(1)],
    ))];
    let fma_body = vec![Stmt::Instr(InstrTemplate::compute(
        OpClass::FpFma,
        &[Reg::fp(0)],
        &[Reg::fp(1)],
    ))];
    let c = CoreParams::thunderx2();
    let m = MemParams::thunderx2();
    let divs = run(&Kernel::new("d", vec![Stmt::repeat(200, div_body)]), &c, &m);
    let fmas = run(&Kernel::new("f", vec![Stmt::repeat(200, fma_body)]), &c, &m);
    // Independent divides still serialise on port occupancy.
    assert!(
        divs.cycles > fmas.cycles * 2,
        "divides {} should be much slower than FMAs {}",
        divs.cycles,
        fmas.cycles
    );
}

#[test]
fn stats_report_loads_and_stores_bytes() {
    let body = vec![
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(0),
            &[Reg::gp(1)],
            AddrExpr::linear(0x1_0000, 0, 8),
            8,
        )),
        Stmt::Instr(InstrTemplate::store(
            OpClass::Store,
            &[Reg::fp(0), Reg::gp(2)],
            AddrExpr::linear(0x2_0000, 0, 8),
            8,
        )),
    ];
    let k = Kernel::new("bytes", vec![Stmt::repeat(100, body)]);
    let s = run(&k, &CoreParams::thunderx2(), &MemParams::thunderx2());
    assert_eq!(s.observed.load_bytes, 800);
    assert_eq!(s.observed.store_bytes, 800);
    assert!(s.mem.requests > 0);
}

#[test]
fn commit_is_in_order_and_complete() {
    // Mixed kernel: every instruction must retire exactly once even when
    // completion order is scrambled by latencies.
    let body = vec![
        Stmt::Instr(InstrTemplate::compute(
            OpClass::FpDiv,
            &[Reg::fp(0)],
            &[Reg::fp(1)],
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::IntAlu,
            &[Reg::gp(0)],
            &[Reg::gp(1)],
        )),
        Stmt::Instr(InstrTemplate::load(
            OpClass::Load,
            Reg::fp(2),
            &[Reg::gp(1)],
            AddrExpr::linear(0x3_0000, 0, 64),
            8,
        )),
        Stmt::Instr(InstrTemplate::compute(
            OpClass::PredOp,
            &[Reg::pred(0)],
            &[Reg::gp(0)],
        )),
    ];
    let k = Kernel::new("mix", vec![Stmt::repeat(123, body)]);
    let p = Program::lower(&k);
    let s = simulate(&p, &CoreParams::thunderx2(), &MemParams::thunderx2());
    assert!(s.validated);
    assert_eq!(s.retired, p.dynamic_len());
}

mod gather {
    use super::*;
    use armdse_isa::instr::MemPattern;

    /// A loop of gathers: `count` elements `elem_stride` bytes apart,
    /// with the base advancing `base_step` bytes per iteration.
    fn gather_loop(trip: u64, count: u32, elem_stride: i64, base_step: i64) -> Kernel {
        let body = vec![Stmt::Instr(InstrTemplate::gather(
            Reg::fp(0),
            &[Reg::gp(1)],
            AddrExpr::linear(0x20_0000, 0, base_step),
            8,
            elem_stride,
            count,
        ))];
        Kernel::new("gather", vec![Stmt::repeat(trip, body)])
    }

    /// A loop of contiguous vector loads re-reading a cached buffer.
    fn contiguous_loop(trip: u64, bytes: u32) -> Kernel {
        let body = vec![Stmt::Instr(InstrTemplate::load(
            OpClass::VecLoad,
            Reg::fp(0),
            &[Reg::gp(1)],
            AddrExpr::fixed(0x20_0000),
            bytes,
        ))];
        Kernel::new("contig", vec![Stmt::repeat(trip, body)])
    }

    #[test]
    fn gather_pattern_survives_lowering() {
        let p = Program::lower(&gather_loop(1, 8, 256, 8));
        let m = p.ops[0].template.mem.unwrap();
        assert!(matches!(
            m.pattern,
            MemPattern::Strided {
                elem_bytes: 8,
                stride: 256,
                count: 8
            }
        ));
        assert_eq!(m.bytes, 64);
    }

    #[test]
    fn gathers_cost_more_than_contiguous_loads() {
        // Same bytes per iteration (64 B), but the gather's 8 scattered
        // elements are 8 requests against loads/requests-per-cycle, while
        // the contiguous load is 1 line request.
        let mut c = CoreParams::thunderx2();
        c.vector_length = 512;
        c.load_bandwidth = 64;
        c.store_bandwidth = 64;
        c.loads_per_cycle = 2;
        c.mem_requests_per_cycle = 2;
        // Both loops hit L1 after warmup (fixed working set), so the
        // only difference is the request count: 8 element requests for
        // the gather, 1 line request for the contiguous load.
        let m = MemParams::thunderx2();
        let g = run(&gather_loop(300, 8, 4096, 0), &c, &m);
        let l = run(&contiguous_loop(300, 64), &c, &m);
        assert!(g.validated && l.validated);
        assert!(
            g.cycles > l.cycles * 2,
            "gather {} should cost much more than contiguous {}",
            g.cycles,
            l.cycles
        );
    }

    #[test]
    fn dense_gather_benefits_from_line_locality() {
        // Elements 8 B apart share cache lines; elements 4 KiB apart
        // always miss to distinct lines.
        // Dense: elements share a line and the base walks slowly.
        // Sparse: every element lands on a fresh line in fresh territory.
        let c = CoreParams::thunderx2();
        let m = MemParams::thunderx2();
        let dense = run(&gather_loop(300, 8, 8, 64), &c, &m);
        let sparse = run(&gather_loop(300, 8, 4096, 32768), &c, &m);
        assert!(
            sparse.cycles > dense.cycles,
            "sparse {} !> dense {}",
            sparse.cycles,
            dense.cycles
        );
        assert!(sparse.mem.l1_misses > dense.mem.l1_misses);
    }

    #[test]
    fn gather_counts_as_sve_instruction() {
        let p = Program::lower(&gather_loop(10, 4, 64, 8));
        let s = armdse_isa::OpSummary::of(&p);
        assert!(s.sve_fraction() > 0.3);
        assert_eq!(s.count(OpClass::VecGather), 10);
        assert_eq!(s.load_bytes, 10 * 32);
    }

    #[test]
    fn scatter_then_gather_is_ordered() {
        // A scatter followed by an overlapping gather must not produce a
        // stale read ordering deadlock: the run completes and validates.
        let body = vec![
            Stmt::Instr(InstrTemplate::scatter(
                &[Reg::fp(0), Reg::gp(1)],
                AddrExpr::fixed(0x30_0000),
                8,
                128,
                4,
            )),
            Stmt::Instr(InstrTemplate::gather(
                Reg::fp(1),
                &[Reg::gp(1)],
                AddrExpr::fixed(0x30_0000),
                8,
                128,
                4,
            )),
        ];
        let k = Kernel::new("sg", vec![Stmt::repeat(100, body)]);
        let s = run(&k, &CoreParams::thunderx2(), &MemParams::thunderx2());
        assert!(s.validated, "{s:?}");
        assert_eq!(s.observed.count(OpClass::VecScatter), 100);
        assert_eq!(s.observed.count(OpClass::VecGather), 100);
    }
}
