use armdse_kernels::{build_workload, App, WorkloadScale};
use armdse_memsim::MemParams;
use armdse_simcore::{simulate, CoreParams};
use std::time::Instant;

#[test]
fn speed() {
    let c = CoreParams::thunderx2();
    let m = MemParams::thunderx2();
    for app in App::ALL {
        let w = build_workload(app, WorkloadScale::Standard, 128);
        let t = Instant::now();
        let s = simulate(&w.program, &c, &m);
        let dt = t.elapsed();
        println!(
            "{:10} instrs={:7} cycles={:8} ipc={:.2} wall={:?} validated={}",
            app.name(),
            s.retired,
            s.cycles,
            s.ipc(),
            dt,
            s.validated
        );
    }
}
