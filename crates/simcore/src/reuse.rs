//! Segment-level computation reuse: interval-memoizing and sampled
//! fidelity tiers.
//!
//! The paper's campaigns re-simulate the *same* `(workload, config)`
//! neighbourhoods over and over: the explorer's acquisition loop
//! revisits near-identical design points, resumed campaigns replay
//! prefixes, and the differential harness runs every program at least
//! twice. This module exploits the simulator's determinism to reuse
//! work at *interval* granularity instead of whole runs:
//!
//! * [`Memoized`] — an exact tier. The dynamic instruction stream is
//!   split into fixed-size retirement intervals; each interval's timing
//!   result is keyed by a hash chain over `(program, relevant parameter
//!   slice, interval index, architectural entry state)` and cached in a
//!   bounded, shard-locked [`ShardedCache`]. A warm cache replays a run
//!   as a chain of lookups; results are **bit-identical** to the
//!   uncached backend (pinned by `tests/reuse_equivalence.rs` and the
//!   differential fuzz reuse lane).
//! * [`Sampled`] — a SimPoint-style lower-fidelity tier: simulate a
//!   warmup prefix plus one representative interval, then extrapolate
//!   the remaining retirements at the measured rate. Timing is
//!   approximate (bounded by `tests/sampled_fidelity.rs`); the
//!   *architectural* result (retired-op summary, validation) stays
//!   exact because the tail is synthesized from the trace cursor.
//!
//! ## Reuse legality
//!
//! Memoization is sound because the pipeline is a deterministic function
//! of `(program, CoreParams, memory model)` and
//! [`Pipeline::state_hash`] fingerprints every architectural *and*
//! micro-architectural input an interval's timing depends on. The key
//! chain is:
//!
//! ```text
//! base     = fnv(program | param-slice | interval_len | metrics)
//! key[i]   = fnv(base, i, entry_hash[i])
//! entry_hash[0]   = base
//! entry_hash[i+1] = exit state hash stored with interval i
//! ```
//!
//! A lookup can only hit when the whole prefix chain matched, so a hit's
//! cached exit state is exactly what simulation would have produced.
//! See `docs/DESIGN.md` §13 for the full argument (including why the
//! parameter slice may soundly *exclude* parameters a program provably
//! never exercises).

use std::sync::Arc;

use crate::backend::SimBackend;
use crate::counters::Counters;
use crate::cycle_limit;
use crate::params::CoreParams;
use crate::pipeline::{Pipeline, PipelineSnapshot};
use crate::stats::SimStats;
use armdse_isa::instr::DynInstr;
use armdse_isa::{OpSummary, Program, RegClass, TraceCursor};
use armdse_kernels::{CacheStats, ShardedCache};
use armdse_memsim::{BankedHierarchy, Hierarchy, MemParams, MemStats, MemoryModel};

/// Re-exported cache counters surfaced through
/// [`SimBackend::reuse_stats`] (hits, misses, insertions, evictions).
pub type ReuseStats = CacheStats;

/// Default retirement-interval length for the memoizing and sampled
/// tiers (instructions per interval).
pub const DEFAULT_INTERVAL_LEN: u64 = 4096;

/// Default warmup prefix for the [`Sampled`] tier (instructions). One
/// full interval of warmup: the four paper kernels reach their steady
/// state only after the first few thousand retirements (TeaLeaf's
/// stencil in particular), and measuring earlier inflates cycle
/// estimates several-fold — `tests/sampled_fidelity.rs` pins the
/// resulting error bound at the Small scale.
pub const DEFAULT_WARMUP: u64 = 4096;

/// Default interval-cache bound (entries across all shards). Interval
/// snapshots are large (tens of kilobytes: cache tag arrays dominate),
/// so this is deliberately far below the generic
/// [`ShardedCache`] default.
pub const DEFAULT_INTERVAL_CACHE_ENTRIES: usize = 1024;

/// Shard count for the interval cache (matches the workload cache's
/// lock-splitting granularity).
pub const DEFAULT_INTERVAL_CACHE_SHARDS: usize = 16;

/// Simulation fidelity tier a backend runs at, reported via
/// [`SimBackend::fidelity`] so orchestration layers (checkpoints, the
/// repro CLI, the bench harness) can record what produced a number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Exact, uncached cycle-approximate simulation (the default).
    Full,
    /// Exact simulation with interval-level memoization ([`Memoized`]).
    Memoized {
        /// Retirement-interval length in instructions.
        interval_len: u64,
    },
    /// Approximate warmup-plus-representative-interval extrapolation
    /// ([`Sampled`]).
    Sampled {
        /// Measured-interval length in instructions.
        interval_len: u64,
        /// Warmup prefix in instructions (simulated but not used as the
        /// extrapolation base rate).
        warmup: u64,
    },
}

impl Fidelity {
    /// Stable lowercase tag for checkpoints and CLI flags
    /// (`full` / `memoized` / `sampled`).
    pub fn tag(&self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::Memoized { .. } => "memoized",
            Fidelity::Sampled { .. } => "sampled",
        }
    }
}

/// A [`SimBackend`] whose memory model can be *constructed as a value*,
/// which is what the interval tiers need: they drive [`Pipeline`]
/// incrementally (snapshot, restore, resume) instead of calling the
/// backend's one-shot entry points. The memory model must be `Clone`
/// so pipeline snapshots can carry it.
pub trait IntervalBackend: SimBackend {
    /// The concrete memory model this backend simulates against.
    type Mem: MemoryModel + Clone + Send + Sync;

    /// Build a fresh (cold) memory model for one run.
    fn build_mem(&self, mem: &MemParams) -> Self::Mem;
}

impl IntervalBackend for crate::backend::Idealized {
    type Mem = Hierarchy;

    fn build_mem(&self, mem: &MemParams) -> Hierarchy {
        Hierarchy::new(*mem)
    }
}

impl IntervalBackend for crate::backend::BankedProxy {
    type Mem = BankedHierarchy;

    fn build_mem(&self, mem: &MemParams) -> BankedHierarchy {
        BankedHierarchy::new(*mem)
    }
}

impl IntervalBackend for crate::backend::Contended {
    type Mem = BankedHierarchy;

    fn build_mem(&self, mem: &MemParams) -> BankedHierarchy {
        BankedHierarchy::with_contention(
            *mem,
            armdse_memsim::banked::DEFAULT_BANKS,
            self.co_runners,
        )
    }
}

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over byte and word feeds.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_BASIS)
    }

    fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    fn u64(&mut self, v: u64) -> &mut Fnv {
        self.bytes(&v.to_le_bytes())
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Which design-space parameters a program can actually exercise.
/// Derived by a conservative static scan of the lowered program; see
/// `docs/DESIGN.md` §13 ("relevant parameter slice").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ParamRelevance {
    /// Any op allocates an FP/SVE destination register.
    fp: bool,
    /// Any op allocates a predicate destination register.
    pred: bool,
    /// Any op allocates a condition-flag destination register.
    cond: bool,
    /// Any op touches memory (load or store).
    mem: bool,
}

impl ParamRelevance {
    fn of(program: &Program) -> ParamRelevance {
        let mut r = ParamRelevance {
            fp: false,
            pred: false,
            cond: false,
            mem: false,
        };
        for op in &program.ops {
            for d in op.template.dests.iter() {
                match d.class {
                    RegClass::Gp => {}
                    RegClass::Fp => r.fp = true,
                    RegClass::Pred => r.pred = true,
                    RegClass::Cond => r.cond = true,
                }
            }
            r.mem |= op.template.mem.is_some();
        }
        r
    }
}

/// Hash the *relevant slice* of the design point: parameters the static
/// scan proves the program cannot exercise are excluded, so two design
/// points differing only in provably-irrelevant parameters share one
/// interval chain. Exclusion is sound because a physical register file
/// that is never allocated from and a memory hierarchy that is never
/// accessed cannot influence any pipeline transition.
fn param_slice_hash(relevance: ParamRelevance, core: &CoreParams, mem: &MemParams) -> u64 {
    let mut h = Fnv::new();
    // Always-relevant core parameters (fetch, rename, commit, window).
    h.u64(u64::from(core.vector_length))
        .u64(u64::from(core.fetch_block_bytes))
        .u64(u64::from(core.loop_buffer_size))
        .u64(u64::from(core.gp_regs))
        .u64(u64::from(core.commit_width))
        .u64(u64::from(core.frontend_width))
        .u64(u64::from(core.lsq_completion_width))
        .u64(u64::from(core.rob_size));
    if relevance.fp {
        h.u64(u64::from(core.fp_regs));
    }
    if relevance.pred {
        h.u64(u64::from(core.pred_regs));
    }
    if relevance.cond {
        h.u64(u64::from(core.cond_regs));
    }
    if relevance.mem {
        h.u64(u64::from(core.load_queue))
            .u64(u64::from(core.store_queue))
            .u64(u64::from(core.load_bandwidth))
            .u64(u64::from(core.store_bandwidth))
            .u64(u64::from(core.mem_requests_per_cycle))
            .u64(u64::from(core.loads_per_cycle))
            .u64(u64::from(core.stores_per_cycle));
        h.u64(u64::from(mem.line_bytes))
            .u64(u64::from(mem.l1_size_kib))
            .u64(u64::from(mem.l1_assoc))
            .u64(u64::from(mem.l1_latency))
            .u64(mem.l1_clock_ghz.to_bits())
            .u64(u64::from(mem.l2_size_kib))
            .u64(u64::from(mem.l2_assoc))
            .u64(u64::from(mem.l2_latency))
            .u64(mem.l2_clock_ghz.to_bits())
            .u64(mem.ram_access_ns.to_bits())
            .u64(mem.ram_clock_ghz.to_bits())
            .u64(u64::from(mem.prefetch_depth));
    }
    h.finish()
}

/// The run-level base key: program identity, relevant parameter slice,
/// interval length, and whether counters are enabled (a metrics machine
/// carries extra state, so metrics and plain chains never alias).
fn base_key(
    program: &Program,
    core: &CoreParams,
    mem: &MemParams,
    interval_len: u64,
    metrics: bool,
) -> u64 {
    let mut h = Fnv::new();
    // The Debug rendering covers every field of the lowered program
    // (ops, loop table, trip counts) — the full static identity.
    h.bytes(format!("{program:?}").as_bytes());
    h.u64(param_slice_hash(ParamRelevance::of(program), core, mem));
    h.u64(interval_len);
    h.u64(u64::from(metrics));
    h.finish()
}

/// Key of interval `i` given the chained architectural entry hash.
fn interval_key(base: u64, i: u64, entry_hash: u64) -> u64 {
    Fnv::new().u64(base).u64(i).u64(entry_hash).finish()
}

// ---------------------------------------------------------------------
// Memoized tier
// ---------------------------------------------------------------------

/// One cached interval result.
struct IntervalEntry<M: MemoryModel> {
    /// [`Pipeline::state_hash`] at the interval's end — the next link of
    /// the key chain.
    exit_hash: u64,
    payload: IntervalPayload<M>,
}

enum IntervalPayload<M: MemoryModel> {
    /// The run ended inside this interval (finished or hit the cycle
    /// limit): the *cumulative* run statistics, plus finalized counters
    /// when the chain is a metrics chain.
    Terminal {
        stats: Box<SimStats>,
        counters: Option<Box<Counters>>,
    },
    /// The run continues: a full machine snapshot at the interval
    /// boundary, sufficient to resume simulation on a later miss.
    Snapshot(Box<PipelineSnapshot<M>>),
}

/// Exact interval-memoizing wrapper around an [`IntervalBackend`].
///
/// `run` and `run_with_metrics` walk the interval key chain described in
/// the module docs: every interval boundary does one cache lookup; a hit
/// *adopts* the cached result (dropping any live machine — the cached
/// exit state is bit-identical to what simulation would produce); a miss
/// materializes a machine (fresh at interval 0, or restored from the
/// previous interval's snapshot) and simulates exactly one interval.
/// Because lookups happen every interval even while a machine is live,
/// a partially evicted chain heals itself: the first re-simulated
/// interval's exit hash rejoins the surviving suffix.
///
/// `run_traced` intentionally bypasses the cache (the commit log borrows
/// the program and is not snapshotable) and delegates to the inner
/// backend — traces are an oracle-only path where caching would buy
/// nothing.
pub struct Memoized<B: IntervalBackend> {
    inner: B,
    interval_len: u64,
    cache: ShardedCache<u64, IntervalEntry<B::Mem>>,
}

impl<B: IntervalBackend> Memoized<B> {
    /// Memoizing wrapper with the default interval length and cache
    /// bound.
    pub fn new(inner: B) -> Memoized<B> {
        Memoized::with_interval_len(inner, DEFAULT_INTERVAL_LEN)
    }

    /// Memoizing wrapper with an explicit interval length (instructions
    /// per interval; must be ≥ 1).
    pub fn with_interval_len(inner: B, interval_len: u64) -> Memoized<B> {
        assert!(interval_len >= 1, "interval length must be at least 1");
        Memoized {
            inner,
            interval_len,
            cache: ShardedCache::new(
                DEFAULT_INTERVAL_CACHE_SHARDS,
                DEFAULT_INTERVAL_CACHE_ENTRIES,
            ),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Configured interval length in instructions.
    pub fn interval_len(&self) -> u64 {
        self.interval_len
    }

    /// Cache hit/miss/insertion/eviction counters since construction or
    /// the last [`SimBackend::clear_reuse_cache`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The chain walk shared by `run` and `run_with_metrics`.
    fn run_cached(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
        metrics: bool,
    ) -> (SimStats, Option<Box<Counters>>) {
        core.validate().expect("core parameters must validate");
        let limit = cycle_limit(program);
        let base = base_key(program, core, mem, self.interval_len, metrics);
        let mut entry_hash = base;
        let mut prev: Option<Arc<IntervalEntry<B::Mem>>> = None;
        let mut machine: Option<Pipeline<'_, B::Mem>> = None;
        let mut i: u64 = 0;
        loop {
            let key = interval_key(base, i, entry_hash);
            let entry = match self.cache.get(&key) {
                Some(hit) => {
                    // Adopt the cached interval: the chain proves its
                    // inputs matched bit-for-bit, so any live machine is
                    // redundant.
                    machine = None;
                    hit
                }
                None => {
                    let mut m = match machine.take() {
                        Some(m) => m,
                        None => match &prev {
                            Some(p) => match &p.payload {
                                IntervalPayload::Snapshot(snap) => Pipeline::restore(program, snap),
                                IntervalPayload::Terminal { .. } => {
                                    unreachable!("terminal entries return below")
                                }
                            },
                            None => {
                                debug_assert_eq!(i, 0, "interval 0 starts from a fresh machine");
                                let mut p =
                                    Pipeline::new(program, *core, self.inner.build_mem(mem));
                                if metrics {
                                    p.enable_counters();
                                }
                                p
                            }
                        },
                    };
                    let target = (i + 1).saturating_mul(self.interval_len);
                    m.drive_until_retired(limit, target);
                    let terminal = m.is_finished() || m.stats().hit_cycle_limit;
                    let exit_hash = m.state_hash();
                    let payload = if terminal {
                        IntervalPayload::Terminal {
                            stats: Box::new(m.stats().clone()),
                            counters: m.take_counters_finalized(),
                        }
                    } else {
                        IntervalPayload::Snapshot(Box::new(m.snapshot()))
                    };
                    let entry = self.cache.insert(key, IntervalEntry { exit_hash, payload });
                    machine = Some(m);
                    entry
                }
            };
            match &entry.payload {
                IntervalPayload::Terminal { stats, counters } => {
                    let mut stats = SimStats::clone(stats);
                    finish_validation(&mut stats, program);
                    let counters = if metrics { counters.clone() } else { None };
                    return (stats, counters);
                }
                IntervalPayload::Snapshot(_) => {
                    entry_hash = entry.exit_hash;
                    prev = Some(entry);
                    i += 1;
                }
            }
        }
    }
}

impl<B: IntervalBackend> SimBackend for Memoized<B> {
    fn name(&self) -> &'static str {
        "memoized"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        self.run_cached(program, core, mem, false).0
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        self.inner.run_traced(program, core, mem)
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        let (stats, counters) = self.run_cached(program, core, mem, true);
        (stats, *counters.expect("metrics chain stores counters"))
    }

    fn reuse_stats(&self) -> Option<ReuseStats> {
        Some(self.cache.stats())
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Memoized {
            interval_len: self.interval_len,
        }
    }

    fn clear_reuse_cache(&self) {
        self.cache.clear();
    }
}

/// Recompute the validation verdict exactly as the one-shot entry points
/// do (`simulate_with` and friends): a run validates iff it finished
/// within the cycle limit and retired exactly the statically expected
/// operation mix.
fn finish_validation(stats: &mut SimStats, program: &Program) {
    stats.validated = !stats.hit_cycle_limit && stats.observed == OpSummary::of(program);
}

// ---------------------------------------------------------------------
// Sampled tier
// ---------------------------------------------------------------------

/// SimPoint-style sampled fidelity tier: simulate `warmup` retirements
/// to heat the caches and predictors, measure one representative
/// interval of `interval_len` retirements, then extrapolate the
/// remaining retirements at the measured cycles-per-instruction rate.
///
/// Timing statistics (cycles, memory counters, stall attribution) are
/// *estimates*; the architectural result is exact — the unsimulated tail
/// is synthesized by walking the trace cursor, so `observed` and
/// `validated` match a full run bit-for-bit. Programs short enough to
/// finish inside warmup + measurement return fully exact results.
pub struct Sampled<B: IntervalBackend> {
    inner: B,
    interval_len: u64,
    warmup: u64,
}

impl<B: IntervalBackend> Sampled<B> {
    /// Sampled tier with the default warmup and interval length.
    pub fn new(inner: B) -> Sampled<B> {
        Sampled::with_params(inner, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP)
    }

    /// Sampled tier with explicit measured-interval length (≥ 1) and
    /// warmup prefix (instructions).
    pub fn with_params(inner: B, interval_len: u64, warmup: u64) -> Sampled<B> {
        assert!(interval_len >= 1, "interval length must be at least 1");
        Sampled {
            inner,
            interval_len,
            warmup,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn run_sampled(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
        metrics: bool,
    ) -> (SimStats, Option<Box<Counters>>) {
        core.validate().expect("core parameters must validate");
        let limit = cycle_limit(program);
        let dyn_len = program.dynamic_len();
        let mut m = Pipeline::new(program, *core, self.inner.build_mem(mem));
        if metrics {
            m.enable_counters();
        }
        // Warmup prefix.
        m.drive_until_retired(limit, self.warmup);
        if m.is_finished() || m.stats().hit_cycle_limit {
            return exact_finish(m, program);
        }
        let warm = m.stats().clone();
        let warm_counters = m.counters().cloned();
        // Representative interval. Commit-width overshoot past the
        // warmup target is possible, so guard the measurement window
        // against being empty (retired must strictly increase).
        let target = (self.warmup + self.interval_len).max(warm.retired + 1);
        m.drive_until_retired(limit, target);
        if m.is_finished() || m.stats().hit_cycle_limit {
            return exact_finish(m, program);
        }
        let end = m.stats().clone();
        debug_assert!(end.retired > warm.retired);
        let remaining = dyn_len - end.retired;
        let span = end.retired - warm.retired;
        // Extrapolate an additive quantity at the measured per-retire
        // rate, rounding to nearest.
        let extra = |q_warm: u64, q_end: u64| -> u64 {
            let delta = u128::from(q_end - q_warm);
            let scaled = delta * u128::from(remaining);
            let d = u128::from(span);
            u64::try_from((scaled + d / 2) / d).unwrap_or(u64::MAX)
        };
        let est = |q_warm: u64, q_end: u64| q_end + extra(q_warm, q_end);

        let mut stats = end.clone();
        stats.cycles = est(warm.cycles, end.cycles);
        stats.retired = dyn_len;
        stats.mem = extrapolate_mem(&warm.mem, &end.mem, &est);
        // All stall buckets are additive cycle counts.
        stats.stalls.rename_gp = est(warm.stalls.rename_gp, end.stalls.rename_gp);
        stats.stalls.rename_fp = est(warm.stalls.rename_fp, end.stalls.rename_fp);
        stats.stalls.rename_pred = est(warm.stalls.rename_pred, end.stalls.rename_pred);
        stats.stalls.rename_cond = est(warm.stalls.rename_cond, end.stalls.rename_cond);
        stats.stalls.rob_full = est(warm.stalls.rob_full, end.stalls.rob_full);
        stats.stalls.rs_full = est(warm.stalls.rs_full, end.stalls.rs_full);
        stats.stalls.lq_full = est(warm.stalls.lq_full, end.stalls.lq_full);
        stats.stalls.sq_full = est(warm.stalls.sq_full, end.stalls.sq_full);
        stats.stalls.fetch_starved = est(warm.stalls.fetch_starved, end.stalls.fetch_starved);
        stats.stalls.loop_buffer_cycles = est(
            warm.stalls.loop_buffer_cycles,
            end.stalls.loop_buffer_cycles,
        );
        // Synthesize the architectural tail exactly: walk the dynamic
        // stream from the cursor (the same source commit retires from)
        // and record everything past the last simulated retirement.
        let mut cursor = TraceCursor::new(program);
        let mut produced = 0u64;
        while let Some(d) = cursor.next_instr() {
            if produced >= end.retired {
                stats.observed.record(
                    d.op,
                    d.mem.map_or(0, |r| u64::from(r.bytes)),
                    d.mem.map(|r| r.kind),
                );
            }
            produced += 1;
        }
        debug_assert_eq!(produced, dyn_len);
        stats.hit_cycle_limit = false;
        finish_validation(&mut stats, program);

        let counters = if metrics {
            let warm_c = warm_counters.expect("counters enabled");
            let end_c = m.counters().expect("counters enabled");
            Some(Box::new(extrapolate_counters(&warm_c, end_c, &stats, &est)))
        } else {
            None
        };
        (stats, counters)
    }
}

/// The program ended inside the simulated prefix: return the exact
/// machine result (identical to the full-fidelity backend).
fn exact_finish<M: MemoryModel>(
    mut m: Pipeline<'_, M>,
    program: &Program,
) -> (SimStats, Option<Box<Counters>>) {
    let mut stats = m.stats().clone();
    finish_validation(&mut stats, program);
    (stats, m.take_counters_finalized())
}

/// Extrapolate the memory counters: every field is an additive event
/// count except `mshr_peak`, a high-water mark kept at its observed
/// value.
fn extrapolate_mem(warm: &MemStats, end: &MemStats, est: &dyn Fn(u64, u64) -> u64) -> MemStats {
    MemStats {
        l1_hits: est(warm.l1_hits, end.l1_hits),
        l1_misses: est(warm.l1_misses, end.l1_misses),
        l2_hits: est(warm.l2_hits, end.l2_hits),
        l2_misses: est(warm.l2_misses, end.l2_misses),
        merged: est(warm.merged, end.merged),
        prefetches: est(warm.prefetches, end.prefetches),
        writebacks: est(warm.writebacks, end.writebacks),
        l1_writebacks: est(warm.l1_writebacks, end.l1_writebacks),
        l2_writebacks: est(warm.l2_writebacks, end.l2_writebacks),
        requests: est(warm.requests, end.requests),
        mshr_peak: end.mshr_peak,
        mshr_occupancy_sum: est(warm.mshr_occupancy_sum, end.mshr_occupancy_sum),
        dram_queue_waits: est(warm.dram_queue_waits, end.dram_queue_waits),
        dram_queue_wait_cycles: est(warm.dram_queue_wait_cycles, end.dram_queue_wait_cycles),
    }
}

/// Extrapolate the cycle-accounting counters so they stay consistent
/// with the extrapolated statistics: buckets scale at the measured rate,
/// then the rounding residue versus the estimated total cycle count is
/// folded into the largest bucket so [`Counters::conserves`] holds;
/// occupancy sums/bins/full-cycles scale, capacities and peaks are kept.
fn extrapolate_counters(
    warm: &Counters,
    end: &Counters,
    stats: &SimStats,
    est: &dyn Fn(u64, u64) -> u64,
) -> Counters {
    let mut c = end.clone();
    c.cycles = stats.cycles;
    c.loop_buffer_cycles = stats.stalls.loop_buffer_cycles;
    for (i, b) in c.buckets.iter_mut().enumerate() {
        *b = est(warm.buckets[i], end.buckets[i]);
    }
    let attributed: u64 = c.buckets.iter().sum();
    let residue = i128::from(c.cycles) - i128::from(attributed);
    let argmax = c
        .buckets
        .iter()
        .enumerate()
        .max_by_key(|&(_, &b)| b)
        .map(|(i, _)| i)
        .expect("buckets non-empty");
    let adjusted = i128::from(c.buckets[argmax]) + residue;
    c.buckets[argmax] = u64::try_from(adjusted.max(0)).unwrap_or(0);
    for (i, o) in c.occupancy.iter_mut().enumerate() {
        let w = &warm.occupancy[i];
        let e = &end.occupancy[i];
        o.sum = est(w.sum, e.sum);
        o.full_cycles = est(w.full_cycles, e.full_cycles);
        for (j, bin) in o.bins.iter_mut().enumerate() {
            *bin = est(w.bins[j], e.bins[j]);
        }
    }
    c
}

impl<B: IntervalBackend> SimBackend for Sampled<B> {
    fn name(&self) -> &'static str {
        "sampled"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        self.run_sampled(program, core, mem, false).0
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        // Commit order is program order, so the full trace is exactly
        // the cursor walk; timing stays identical to `run` as the
        // trait contract requires.
        let stats = self.run(program, core, mem);
        let mut cursor = TraceCursor::new(program);
        let mut trace = Vec::new();
        while let Some(d) = cursor.next_instr() {
            trace.push(d);
        }
        (stats, trace)
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        let (stats, counters) = self.run_sampled(program, core, mem, true);
        (stats, *counters.expect("metrics run builds counters"))
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Sampled {
            interval_len: self.interval_len,
            warmup: self.warmup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BankedProxy, Contended, Idealized};
    use armdse_kernels::{build_workload, App, WorkloadScale};

    fn fixture(app: App) -> (Program, CoreParams, MemParams) {
        fixture_scaled(app, WorkloadScale::Tiny)
    }

    fn fixture_scaled(app: App, scale: WorkloadScale) -> (Program, CoreParams, MemParams) {
        let core = CoreParams::thunderx2();
        let w = build_workload(app, scale, core.vector_length);
        (w.program, core, MemParams::thunderx2())
    }

    #[test]
    fn memoized_is_bit_identical_to_plain_backends() {
        for app in [App::Stream, App::MiniBude] {
            let (p, c, m) = fixture(app);
            let plain: [&dyn SimBackend; 3] =
                [&Idealized, &BankedProxy, &Contended { co_runners: 2 }];
            let cached: [&dyn SimBackend; 3] = [
                &Memoized::with_interval_len(Idealized, 64),
                &Memoized::with_interval_len(BankedProxy, 64),
                &Memoized::with_interval_len(Contended { co_runners: 2 }, 64),
            ];
            for (b, cb) in plain.iter().zip(&cached) {
                let want = b.run(&p, &c, &m);
                assert!(want.validated);
                // Cold pass, then a fully warm pass: both bit-identical.
                assert_eq!(cb.run(&p, &c, &m), want, "{} cold", b.name());
                assert_eq!(cb.run(&p, &c, &m), want, "{} warm", b.name());
                let rs = cb.reuse_stats().expect("memoized reports reuse stats");
                assert!(rs.hits > 0, "{}: warm pass produced no hits", b.name());
                assert!(rs.misses > 0, "{}: cold pass produced no misses", b.name());
            }
        }
    }

    #[test]
    fn memoized_metrics_are_transparent_and_cached() {
        let (p, c, m) = fixture(App::TeaLeaf);
        let mem = Memoized::with_interval_len(Idealized, 128);
        let (want_stats, want_counters) = Idealized.run_with_metrics(&p, &c, &m);
        let (cold_stats, cold_counters) = mem.run_with_metrics(&p, &c, &m);
        assert_eq!(cold_stats, want_stats);
        assert_eq!(cold_counters, want_counters);
        assert!(cold_counters.conserves());
        let (warm_stats, warm_counters) = mem.run_with_metrics(&p, &c, &m);
        assert_eq!(warm_stats, want_stats);
        assert_eq!(warm_counters, want_counters);
        let rs = mem.cache_stats();
        assert!(rs.hits > 0, "warm metrics pass must hit");
        // The plain (non-metrics) chain is disjoint: running it now
        // must miss even though the metrics chain is warm.
        let before = mem.cache_stats().misses;
        assert_eq!(mem.run(&p, &c, &m), want_stats);
        assert!(mem.cache_stats().misses > before);
    }

    #[test]
    fn memoized_heals_a_partially_evicted_chain_via_restore() {
        let (p, c, m) = fixture(App::Stream);
        let interval = 64;
        let mem = Memoized::with_interval_len(Idealized, interval);
        let want = Idealized.run(&p, &c, &m);
        assert_eq!(mem.run(&p, &c, &m), want);
        // Walk the key chain exactly as run_cached does and collect the
        // keys of every cached interval.
        let base = base_key(&p, &c, &m, interval, false);
        let mut keys = Vec::new();
        let mut entry_hash = base;
        let mut i = 0u64;
        loop {
            let key = interval_key(base, i, entry_hash);
            let entry = mem.cache.get(&key).expect("cold run cached the chain");
            keys.push(key);
            match &entry.payload {
                IntervalPayload::Terminal { .. } => break,
                IntervalPayload::Snapshot(_) => {
                    entry_hash = entry.exit_hash;
                    i += 1;
                }
            }
        }
        assert!(keys.len() > 3, "fixture too short to exercise the chain");
        // Evict the tail: keep the first half, drop the rest. The warm
        // run must hit the surviving prefix, restore a machine from the
        // last surviving snapshot, and re-simulate the tail.
        let keep = keys.len() / 2;
        for k in &keys[keep..] {
            mem.cache.remove(k);
        }
        let before = mem.cache_stats();
        assert_eq!(mem.run(&p, &c, &m), want, "healed run must stay exact");
        let after = mem.cache_stats();
        assert_eq!(
            (after.hits - before.hits) as usize,
            keep,
            "surviving prefix must hit"
        );
        assert_eq!(
            (after.misses - before.misses) as usize,
            keys.len() - keep,
            "evicted tail must re-simulate"
        );
        // The re-simulated tail rejoined the same chain: the keys are
        // all present again and a further run is pure hits.
        let before = mem.cache_stats();
        assert_eq!(mem.run(&p, &c, &m), want);
        let after = mem.cache_stats();
        assert_eq!((after.hits - before.hits) as usize, keys.len());
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn irrelevant_params_share_the_chain_and_relevant_ones_split_it() {
        let (p, c, m) = fixture(App::MiniSweep);
        // MiniSweep's scalar sweep allocates FP, GP, and condition-flag
        // destinations and touches memory, but never writes a predicate
        // register — so pred_regs must be sliced out while rob_size and
        // l1_size_kib stay in.
        let rel = ParamRelevance::of(&p);
        assert!(rel.fp && rel.cond && rel.mem && !rel.pred);
        let base = base_key(&p, &c, &m, 64, false);
        let mut c2 = c;
        c2.pred_regs *= 2;
        assert_eq!(base_key(&p, &c2, &m, 64, false), base);
        let mut c3 = c;
        c3.rob_size += 4;
        assert_ne!(base_key(&p, &c3, &m, 64, false), base);
        let mut m2 = m;
        m2.l1_size_kib *= 2;
        assert_ne!(base_key(&p, &c, &m2, 64, false), base);
        // And the shared chain is observable: a run at c2 on a warm
        // cache is pure hits.
        let mem_b = Memoized::with_interval_len(Idealized, 64);
        let want = mem_b.run(&p, &c, &m);
        let before = mem_b.cache_stats().misses;
        assert_eq!(mem_b.run(&p, &c2, &m), want);
        assert_eq!(
            mem_b.cache_stats().misses,
            before,
            "c2 must reuse c's chain"
        );
    }

    #[test]
    fn clear_reuse_cache_forces_cold_start() {
        let (p, c, m) = fixture(App::Stream);
        let mem = Memoized::with_interval_len(Idealized, 256);
        let want = mem.run(&p, &c, &m);
        mem.clear_reuse_cache();
        let rs = mem.cache_stats();
        assert_eq!((rs.hits, rs.misses), (0, 0), "clear resets counters");
        assert_eq!(mem.run(&p, &c, &m), want);
        let rs = mem.cache_stats();
        assert_eq!(rs.hits, 0, "cleared cache cannot hit");
        assert!(rs.misses > 0);
    }

    #[test]
    fn memoized_fidelity_and_default_methods() {
        let mem = Memoized::with_interval_len(BankedProxy, 512);
        assert_eq!(mem.fidelity(), Fidelity::Memoized { interval_len: 512 });
        assert_eq!(mem.fidelity().tag(), "memoized");
        assert_eq!(mem.name(), "memoized");
        assert_eq!(mem.inner().name(), "banked-proxy");
        // Plain backends report the Full tier and no reuse stats.
        assert_eq!(Idealized.fidelity(), Fidelity::Full);
        assert_eq!(Idealized.fidelity().tag(), "full");
        assert!(Idealized.reuse_stats().is_none());
        Idealized.clear_reuse_cache(); // no-op, must not panic
    }

    #[test]
    fn memoized_traced_runs_are_exact_and_uncached() {
        let (p, c, m) = fixture(App::Stream);
        let mem = Memoized::with_interval_len(Idealized, 64);
        let (want_stats, want_trace) = Idealized.run_traced(&p, &c, &m);
        let (stats, trace) = mem.run_traced(&p, &c, &m);
        assert_eq!(stats, want_stats);
        assert_eq!(trace, want_trace);
        let rs = mem.cache_stats();
        assert_eq!(
            (rs.hits, rs.misses),
            (0, 0),
            "traced path bypasses the cache"
        );
    }

    #[test]
    fn sampled_is_exact_when_the_program_finishes_early() {
        let (p, c, m) = fixture(App::Stream);
        let dyn_len = p.dynamic_len();
        let s = Sampled::with_params(Idealized, 1024, dyn_len + 1);
        let want = Idealized.run(&p, &c, &m);
        assert_eq!(s.run(&p, &c, &m), want, "warmup covers the whole run");
        let (stats, counters) = s.run_with_metrics(&p, &c, &m);
        let (want_stats, want_counters) = Idealized.run_with_metrics(&p, &c, &m);
        assert_eq!(stats, want_stats);
        assert_eq!(counters, want_counters);
    }

    #[test]
    fn sampled_estimates_are_bounded_and_architecturally_exact() {
        for app in [App::Stream, App::TeaLeaf, App::MiniSweep] {
            let (p, c, m) = fixture_scaled(app, WorkloadScale::Small);
            let dyn_len = p.dynamic_len();
            let warmup = dyn_len / 4;
            let interval = dyn_len / 4;
            let s = Sampled::with_params(Idealized, interval.max(1), warmup);
            let want = Idealized.run(&p, &c, &m);
            let got = s.run(&p, &c, &m);
            // Architectural exactness.
            assert_eq!(got.observed, want.observed, "{app:?}");
            assert_eq!(got.retired, want.retired, "{app:?}");
            assert!(got.validated, "{app:?}");
            assert!(!got.hit_cycle_limit);
            // Timing is an estimate; sanity-bound it loosely here (the
            // dedicated tolerance test pins the paper-shapes grid).
            let err = (got.cycles as f64 - want.cycles as f64).abs() / want.cycles as f64;
            assert!(err < 0.5, "{app:?}: sampled error {err} out of range");
        }
    }

    #[test]
    fn sampled_metrics_are_self_consistent() {
        let (p, c, m) = fixture(App::TeaLeaf);
        let dyn_len = p.dynamic_len();
        let s = Sampled::with_params(Idealized, (dyn_len / 8).max(1), dyn_len / 8);
        let plain = s.run(&p, &c, &m);
        let (stats, counters) = s.run_with_metrics(&p, &c, &m);
        assert_eq!(stats, plain, "metrics must not perturb the estimate");
        assert_eq!(counters.cycles, stats.cycles);
        assert!(
            counters.conserves(),
            "{} cycles but {} attributed",
            counters.cycles,
            counters.attributed_cycles()
        );
    }

    #[test]
    fn sampled_traced_matches_run_timing_and_full_trace() {
        let (p, c, m) = fixture(App::Stream);
        let dyn_len = p.dynamic_len();
        let s = Sampled::with_params(BankedProxy, (dyn_len / 8).max(1), dyn_len / 8);
        let (stats, trace) = s.run_traced(&p, &c, &m);
        assert_eq!(stats, s.run(&p, &c, &m));
        assert_eq!(trace.len() as u64, dyn_len);
        let (_, want_trace) = Idealized.run_traced(&p, &c, &m);
        assert_eq!(trace, want_trace, "trace is the exact dynamic stream");
        assert_eq!(
            s.fidelity(),
            Fidelity::Sampled {
                interval_len: (dyn_len / 8).max(1),
                warmup: dyn_len / 8,
            }
        );
        assert_eq!(s.fidelity().tag(), "sampled");
        assert!(s.reuse_stats().is_none());
    }

    #[test]
    fn interval_keys_chain_deterministically() {
        let (p, c, m) = fixture(App::Stream);
        let b1 = base_key(&p, &c, &m, 64, false);
        assert_eq!(b1, base_key(&p, &c, &m, 64, false));
        assert_ne!(b1, base_key(&p, &c, &m, 128, false), "interval length keys");
        assert_ne!(b1, base_key(&p, &c, &m, 64, true), "metrics flag keys");
        let (p2, ..) = fixture(App::MiniBude);
        assert_ne!(b1, base_key(&p2, &c, &m, 64, false), "program keys");
        assert_ne!(
            interval_key(b1, 0, b1),
            interval_key(b1, 1, b1),
            "interval index keys"
        );
    }
}
