//! # armdse-simcore — SimEng-like out-of-order core simulator
//!
//! A cycle-approximate model of a configurable out-of-order superscalar
//! Arm core, the SimEng substitute of this reproduction (see DESIGN.md).
//! Every Table II parameter of the paper is a live structural parameter
//! of the model:
//!
//! | Parameter | Mechanism |
//! |---|---|
//! | Vector length | workload trip counts and access widths (VLA), bandwidth floors |
//! | Fetch block size | instructions fetchable per cycle from one aligned window |
//! | Loop buffer size | fetch-block bypass when a hot loop body fits |
//! | GP/FP/predicate/condition registers | rename free lists; empty list stalls rename |
//! | Frontend width | decode/rename throughput |
//! | Commit width | in-order retirement throughput |
//! | ROB size | in-flight window; full ROB stalls dispatch |
//! | Load/store queue sizes | LSQ capacity; full queue stalls dispatch |
//! | LSQ completion width | load writebacks per cycle |
//! | Load/store bandwidth | bytes per cycle between L1 and the core |
//! | Requests/loads/stores per cycle | line-request rate limits |
//!
//! Fixed per the paper (§V-A): a unified 60-entry reservation station,
//! dispatch rate 4, the 3×LS + 2×VEC + 1×PRED + 3×SCALAR port layout, and
//! all instruction latencies.

#![warn(missing_docs)]

pub mod backend;
pub mod counters;
pub mod events;
pub mod multicore;
pub mod params;
pub mod pipeline;
pub mod regfile;
pub mod reuse;
pub mod stats;

pub use backend::{BankedProxy, Contended, Idealized, SimBackend, Traced};
pub use counters::{Counters, CycleBucket, OccupancyHist, Structure};
pub use multicore::{MultiCore, PerCoreMetrics, Topology, SLICE_CYCLES};
pub use params::CoreParams;
pub use pipeline::{fast_forward_default, set_fast_forward_default, Pipeline, PipelineSnapshot};
pub use reuse::{
    Fidelity, IntervalBackend, Memoized, ReuseStats, Sampled, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP,
};
pub use stats::{SimStats, StallStats};

use armdse_isa::instr::DynInstr;
use armdse_isa::{OpSummary, Program};
use armdse_memsim::{MemParams, MemoryModel};

/// Default cycle-limit slack: a run is declared wedged (and invalid) if it
/// exceeds `MAX_CPI_GUARD` cycles per dynamic instruction.
pub const MAX_CPI_GUARD: u64 = 500;

/// Compute the safety cycle limit for a program.
pub fn cycle_limit(program: &Program) -> u64 {
    10_000 + program.dynamic_len().saturating_mul(MAX_CPI_GUARD)
}

/// Simulate `program` on the default (infinite-bank, SST-like) memory
/// hierarchy. Back-compat shim for [`backend::Idealized`] — new code
/// should pick a [`SimBackend`] value instead of a function name.
pub fn simulate(program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
    Idealized.run(program, core, mem)
}

/// Simulate `program` on the finite-banked "hardware proxy" hierarchy.
/// Back-compat shim for [`backend::BankedProxy`].
pub fn simulate_hardware_proxy(program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
    BankedProxy.run(program, core, mem)
}

/// Simulate under multi-core memory contention: `co_runners` phantom
/// cores saturate the shared DRAM controller. Back-compat shim for
/// [`backend::Contended`].
pub fn simulate_contended(
    program: &Program,
    core: &CoreParams,
    mem: &MemParams,
    co_runners: u32,
) -> SimStats {
    Contended { co_runners }.run(program, core, mem)
}

/// Simulate with an arbitrary memory backend.
pub fn simulate_with<M: MemoryModel>(program: &Program, core: &CoreParams, mem: M) -> SimStats {
    core.validate().expect("core parameters must validate");
    let pipeline = Pipeline::new(program, *core, mem);
    let mut stats = pipeline.run(cycle_limit(program));
    let expected = OpSummary::of(program);
    stats.validated = !stats.hit_cycle_limit && stats.observed == expected;
    stats
}

/// Simulate on the default hierarchy and return the commit-order
/// retirement stream alongside the statistics (see
/// [`Pipeline::run_traced`]). Back-compat shim for
/// `Traced(Idealized)` — used by `armdse-oracle` to replay the retired
/// instructions with value semantics and check the core's
/// architectural behaviour against the reference interpreter.
pub fn simulate_traced(
    program: &Program,
    core: &CoreParams,
    mem: &MemParams,
) -> (SimStats, Vec<DynInstr>) {
    Traced(Idealized).run(program, core, mem)
}

/// [`simulate_traced`] on the finite-banked hardware-proxy hierarchy.
/// Back-compat shim for `Traced(BankedProxy)`.
pub fn simulate_traced_proxy(
    program: &Program,
    core: &CoreParams,
    mem: &MemParams,
) -> (SimStats, Vec<DynInstr>) {
    Traced(BankedProxy).run(program, core, mem)
}

/// [`simulate_traced`] with an arbitrary memory backend.
pub fn simulate_traced_with<M: MemoryModel>(
    program: &Program,
    core: &CoreParams,
    mem: M,
) -> (SimStats, Vec<DynInstr>) {
    core.validate().expect("core parameters must validate");
    let pipeline = Pipeline::new(program, *core, mem);
    let (mut stats, trace) = pipeline.run_traced(cycle_limit(program));
    let expected = OpSummary::of(program);
    stats.validated = !stats.hit_cycle_limit && stats.observed == expected;
    (stats, trace)
}

/// Simulate on the default hierarchy with cycle accounting enabled (see
/// [`Pipeline::run_with_counters`]): the statistics are identical to
/// [`simulate`], plus the per-cycle attribution [`Counters`]. Shim for
/// `Idealized.run_with_metrics(..)`.
pub fn simulate_with_metrics(
    program: &Program,
    core: &CoreParams,
    mem: &MemParams,
) -> (SimStats, Counters) {
    Idealized.run_with_metrics(program, core, mem)
}

/// [`simulate_with_metrics`] with an arbitrary memory backend.
pub fn simulate_with_metrics_with<M: MemoryModel>(
    program: &Program,
    core: &CoreParams,
    mem: M,
) -> (SimStats, Counters) {
    core.validate().expect("core parameters must validate");
    let pipeline = Pipeline::new(program, *core, mem);
    let (mut stats, counters) = pipeline.run_with_counters(cycle_limit(program));
    let expected = OpSummary::of(program);
    stats.validated = !stats.hit_cycle_limit && stats.observed == expected;
    (stats, *counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_kernels::{build_workload, App, WorkloadScale};

    fn tx2() -> (CoreParams, MemParams) {
        (CoreParams::thunderx2(), MemParams::thunderx2())
    }

    fn run(app: App, scale: WorkloadScale, core: &CoreParams, mem: &MemParams) -> SimStats {
        let w = build_workload(app, scale, core.vector_length);
        simulate(&w.program, core, mem)
    }

    #[test]
    fn all_apps_complete_and_validate_on_baseline() {
        let (c, m) = tx2();
        for app in App::ALL {
            let s = run(app, WorkloadScale::Tiny, &c, &m);
            assert!(s.validated, "{app:?} failed validation: {s:?}");
            assert!(s.cycles > 0);
            assert!(s.ipc() > 0.01 && s.ipc() <= 4.0, "{app:?} ipc {}", s.ipc());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (c, m) = tx2();
        let a = run(App::Stream, WorkloadScale::Small, &c, &m);
        let b = run(App::Stream, WorkloadScale::Small, &c, &m);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.retired, b.retired);
    }

    #[test]
    fn retired_matches_analytic_summary() {
        let (c, m) = tx2();
        for app in App::ALL {
            let w = build_workload(app, WorkloadScale::Small, c.vector_length);
            let s = simulate(&w.program, &c, &m);
            assert_eq!(s.observed, w.summary, "{app:?}");
            assert_eq!(s.retired, w.summary.total());
        }
    }

    #[test]
    fn longer_vectors_speed_up_stream() {
        let (mut c, m) = tx2();
        c.load_bandwidth = 512;
        c.store_bandwidth = 512;
        let mut cycles = Vec::new();
        for vl in [128u32, 512, 2048] {
            c.vector_length = vl;
            cycles.push(run(App::Stream, WorkloadScale::Small, &c, &m).cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "vl512 {} !< vl128 {}",
            cycles[1],
            cycles[0]
        );
        assert!(
            cycles[2] < cycles[1],
            "vl2048 {} !< vl512 {}",
            cycles[2],
            cycles[1]
        );
    }

    #[test]
    fn vector_length_barely_moves_minisweep() {
        let (mut c, m) = tx2();
        c.load_bandwidth = 512;
        c.store_bandwidth = 512;
        c.vector_length = 128;
        let short = run(App::MiniSweep, WorkloadScale::Small, &c, &m).cycles;
        c.vector_length = 2048;
        let long = run(App::MiniSweep, WorkloadScale::Small, &c, &m).cycles;
        let ratio = short as f64 / long as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "scalar code moved {ratio}x with VL"
        );
    }

    #[test]
    fn bigger_rob_helps_until_saturation() {
        let (mut c, m) = tx2();
        c.rob_size = 8;
        let tiny_rob = run(App::Stream, WorkloadScale::Small, &c, &m).cycles;
        c.rob_size = 180;
        let big_rob = run(App::Stream, WorkloadScale::Small, &c, &m).cycles;
        c.rob_size = 512;
        let huge_rob = run(App::Stream, WorkloadScale::Small, &c, &m).cycles;
        assert!(
            big_rob * 2 < tiny_rob,
            "ROB 180 ({big_rob}) should be far faster than ROB 8 ({tiny_rob})"
        );
        // Saturation: beyond the knee, returns are small.
        let gain = big_rob as f64 / huge_rob as f64;
        assert!(gain < 1.3, "ROB 512 should not massively beat 180 ({gain})");
    }

    #[test]
    fn starved_fp_registers_bottleneck_minibude() {
        let (mut c, m) = tx2();
        c.fp_regs = 40;
        let starved = run(App::MiniBude, WorkloadScale::Small, &c, &m);
        c.fp_regs = 256;
        let ample = run(App::MiniBude, WorkloadScale::Small, &c, &m);
        assert!(
            ample.cycles < starved.cycles,
            "fp 256 ({}) !< fp 40 ({})",
            ample.cycles,
            starved.cycles
        );
        assert!(starved.stalls.rename_fp > 0, "expected FP rename stalls");
    }

    #[test]
    fn narrow_frontend_bottlenecks() {
        let (mut c, m) = tx2();
        c.frontend_width = 1;
        let narrow = run(App::MiniBude, WorkloadScale::Small, &c, &m).cycles;
        c.frontend_width = 8;
        let wide = run(App::MiniBude, WorkloadScale::Small, &c, &m).cycles;
        assert!(wide < narrow, "wide {wide} !< narrow {narrow}");
    }

    #[test]
    fn tiny_fetch_block_bottlenecks_unless_loop_buffer_covers() {
        let (mut c, m) = tx2();
        // miniBUDE has enough ILP that a one-instruction-per-cycle fetch
        // rate is the binding constraint.
        c.fetch_block_bytes = 4;
        c.loop_buffer_size = 1; // loop bodies never fit
        let tiny = run(App::MiniBude, WorkloadScale::Tiny, &c, &m);
        c.fetch_block_bytes = 256;
        let wide = run(App::MiniBude, WorkloadScale::Tiny, &c, &m);
        assert!(
            wide.cycles < tiny.cycles,
            "wide fetch {} !< tiny fetch {}",
            wide.cycles,
            tiny.cycles
        );
        // With a loop buffer large enough for the inner body, the tiny
        // fetch block stops mattering.
        c.fetch_block_bytes = 4;
        c.loop_buffer_size = 128;
        let buffered = run(App::MiniBude, WorkloadScale::Tiny, &c, &m);
        assert!(
            buffered.cycles < tiny.cycles,
            "loop buffer {} !< no loop buffer {}",
            buffered.cycles,
            tiny.cycles
        );
        assert!(buffered.stalls.loop_buffer_cycles > 0);
    }

    #[test]
    fn slow_l1_hurts_tealeaf() {
        // With a modest ROB the memory-level parallelism cannot hide the
        // L1 hit latency — the regime in which the paper finds L1
        // latency/clock dominating TeaLeaf. (Averaged over the sampled
        // design space, many configurations sit in this regime.)
        let (mut c, mut m) = tx2();
        c.rob_size = 16;
        m.l1_latency = 1;
        let fast = run(App::TeaLeaf, WorkloadScale::Small, &c, &m).cycles;
        m.l1_latency = 8;
        let slow = run(App::TeaLeaf, WorkloadScale::Small, &c, &m).cycles;
        assert!(
            slow > fast + fast / 10,
            "l1 lat 8 ({slow}) should hurt vs 1 ({fast})"
        );
    }

    #[test]
    fn hardware_proxy_diverges_from_default() {
        let (c, m) = tx2();
        let w = build_workload(App::Stream, WorkloadScale::Small, c.vector_length);
        let sim = simulate(&w.program, &c, &m);
        let hw = simulate_hardware_proxy(&w.program, &c, &m);
        assert!(hw.validated && sim.validated);
        assert_ne!(hw.cycles, sim.cycles);
    }

    #[test]
    fn commit_width_one_caps_ipc() {
        let (mut c, m) = tx2();
        c.commit_width = 1;
        let s = run(App::MiniBude, WorkloadScale::Tiny, &c, &m);
        assert!(
            s.ipc() <= 1.0 + 1e-9,
            "ipc {} exceeds commit width",
            s.ipc()
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_commits_in_program_order() {
        let (c, m) = tx2();
        let w = build_workload(App::Stream, WorkloadScale::Tiny, c.vector_length);
        let plain = simulate(&w.program, &c, &m);
        let (stats, trace) = simulate_traced(&w.program, &c, &m);
        assert_eq!(stats.cycles, plain.cycles, "tracing changed timing");
        assert_eq!(stats.retired, plain.retired);
        assert_eq!(trace.len() as u64, stats.retired);
        // The retirement stream is exactly the fetch (trace-cursor) order.
        let mut cursor = armdse_isa::TraceCursor::new(&w.program);
        for di in &trace {
            let exp = cursor.next_instr().expect("trace longer than program");
            assert_eq!(di.pc, exp.pc);
            assert_eq!(di.op, exp.op);
        }
        assert!(cursor.next_instr().is_none(), "trace shorter than program");
    }

    #[test]
    fn no_run_hits_cycle_limit_on_sane_configs() {
        let (c, m) = tx2();
        for app in App::ALL {
            let s = run(app, WorkloadScale::Small, &c, &m);
            assert!(!s.hit_cycle_limit, "{app:?} wedged");
        }
    }
}
