//! Simulation statistics returned by the core model.

use armdse_isa::OpSummary;
use armdse_memsim::MemStats;

/// Frontend/backend stall attribution counters (cycles in which the given
/// resource was the blocking reason at its pipeline stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallStats {
    /// Rename blocked: GP free list empty.
    pub rename_gp: u64,
    /// Rename blocked: FP/SVE free list empty.
    pub rename_fp: u64,
    /// Rename blocked: predicate free list empty.
    pub rename_pred: u64,
    /// Rename blocked: condition free list empty.
    pub rename_cond: u64,
    /// Dispatch blocked: reorder buffer full.
    pub rob_full: u64,
    /// Dispatch blocked: reservation station full.
    pub rs_full: u64,
    /// Dispatch blocked: load queue full.
    pub lq_full: u64,
    /// Dispatch blocked: store queue full.
    pub sq_full: u64,
    /// Decode starved: fetch queue empty.
    pub fetch_starved: u64,
    /// Cycles fetched from the loop buffer.
    pub loop_buffer_cycles: u64,
}

/// Full result of simulating one workload on one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated core cycles (the paper's target variable).
    pub cycles: u64,
    /// Retired (committed) instructions.
    pub retired: u64,
    /// Observed per-class retirement summary.
    pub observed: OpSummary,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Stall attribution.
    pub stalls: StallStats,
    /// Whether the observed summary matched the workload's analytic
    /// summary (the stand-in for the apps' built-in output validation;
    /// the paper only keeps validated runs).
    pub validated: bool,
    /// Whether the cycle-limit safety valve fired (run must be discarded).
    pub hit_cycle_limit: bool,
}

impl SimStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired as f64 / self.cycles as f64
    }

    /// Fraction of retired instructions that are SVE vector instructions
    /// (paper Fig. 1 metric).
    pub fn sve_fraction(&self) -> f64 {
        self.observed.sve_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_when_no_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computed() {
        let s = SimStats {
            cycles: 100,
            retired: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }
}
