//! Core-side design parameters (the paper's Table II) and fixed
//! structural constants (§V-A).

use armdse_isa::reg::RegClass;

/// Unified reservation-station capacity (fixed, paper §V-A: "a single
/// unified reservation station shared between them with a width of 60").
pub const RS_SIZE: usize = 60;

/// Dispatch rate into the reservation station (fixed, paper §V-A:
/// "a dispatch rate of four instructions per cycle").
pub const DISPATCH_RATE: usize = 4;

/// Fetch-buffer capacity in instructions (fixed frontend plumbing).
pub const FETCH_QUEUE_CAP: usize = 64;

/// Rename-buffer capacity in instructions (between rename and dispatch).
pub const RENAME_BUFFER_CAP: usize = 16;

/// Minimum store-to-load forwarding latency in cycles; the actual
/// forwarding latency is the L1 hit latency (forwarded loads re-use the
/// L1 access path, as in SimEng's LSQ), floored at this value.
pub const MIN_FORWARD_LATENCY: u64 = 2;

/// The eighteen core parameters varied by the study (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// SVE vector length in bits {128..2048, powers of 2}.
    pub vector_length: u32,
    /// Fetch block size in bytes {4..2048, powers of 2}.
    pub fetch_block_bytes: u32,
    /// Loop buffer size in instructions {1..512}.
    pub loop_buffer_size: u32,
    /// Physical general-purpose registers {38, 40..512 step 8}.
    pub gp_regs: u32,
    /// Physical FP/SVE registers {38, 40..512 step 8}.
    pub fp_regs: u32,
    /// Physical predicate registers {24..512 step 8}.
    pub pred_regs: u32,
    /// Physical condition (NZCV) registers {8..512 step 8}.
    pub cond_regs: u32,
    /// Commit pipeline width {1..64}.
    pub commit_width: u32,
    /// Frontend (decode/rename) pipeline width {1..64}.
    pub frontend_width: u32,
    /// Load-store-queue completion pipeline width {1..64}.
    pub lsq_completion_width: u32,
    /// Reorder buffer size {8..512 step 4}.
    pub rob_size: u32,
    /// Load queue size {4..512 step 4}.
    pub load_queue: u32,
    /// Store queue size {4..512 step 4}.
    pub store_queue: u32,
    /// L1→core load bandwidth in bytes per cycle {16..1024, powers of 2}.
    pub load_bandwidth: u32,
    /// Core→L1 store bandwidth in bytes per cycle {16..1024, powers of 2}.
    pub store_bandwidth: u32,
    /// Permitted memory requests per cycle {1..32} (shared by loads and
    /// stores; a request is one cache-line access).
    pub mem_requests_per_cycle: u32,
    /// Permitted load requests per cycle {1..32}.
    pub loads_per_cycle: u32,
    /// Permitted store requests per cycle {1..32}.
    pub stores_per_cycle: u32,
}

impl CoreParams {
    /// A ThunderX2-like baseline configuration (the paper's §IV-B
    /// validation anchor: an out-of-order superscalar Armv8 core, with SVE
    /// support grafted on as the paper does by modifying the execution
    /// units).
    pub fn thunderx2() -> CoreParams {
        CoreParams {
            vector_length: 128,
            fetch_block_bytes: 32,
            loop_buffer_size: 32,
            gp_regs: 128,
            fp_regs: 128,
            pred_regs: 48,
            cond_regs: 32,
            commit_width: 4,
            frontend_width: 4,
            lsq_completion_width: 2,
            rob_size: 180,
            load_queue: 64,
            store_queue: 36,
            load_bandwidth: 32,
            store_bandwidth: 16,
            mem_requests_per_cycle: 2,
            loads_per_cycle: 2,
            stores_per_cycle: 1,
        }
    }

    /// Physical register count for a class.
    #[inline]
    pub fn phys_regs(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gp => self.gp_regs,
            RegClass::Fp => self.fp_regs,
            RegClass::Pred => self.pred_regs,
            RegClass::Cond => self.cond_regs,
        }
    }

    /// Check structural invariants, including the paper's sampling
    /// constraint that load/store bandwidth covers one full vector
    /// ("Load and Store Bandwidths must be large enough to load and store
    /// at least data as large as the vector length").
    pub fn validate(&self) -> Result<(), String> {
        if !self.vector_length.is_power_of_two() || !(128..=2048).contains(&self.vector_length) {
            return Err(format!("vector_length {} invalid", self.vector_length));
        }
        if !self.fetch_block_bytes.is_power_of_two() || self.fetch_block_bytes < 4 {
            return Err(format!(
                "fetch_block_bytes {} invalid",
                self.fetch_block_bytes
            ));
        }
        let vl_bytes = self.vector_length / 8;
        if self.load_bandwidth < vl_bytes {
            return Err(format!(
                "load_bandwidth {} < vector bytes {vl_bytes}",
                self.load_bandwidth
            ));
        }
        if self.store_bandwidth < vl_bytes {
            return Err(format!(
                "store_bandwidth {} < vector bytes {vl_bytes}",
                self.store_bandwidth
            ));
        }
        for class in RegClass::ALL {
            let need = u32::from(class.arch_count()) + 2;
            if self.phys_regs(class) < need {
                return Err(format!(
                    "{} physical registers {} below architectural minimum {need}",
                    class.tag(),
                    self.phys_regs(class)
                ));
            }
        }
        for (name, v, lo) in [
            ("commit_width", self.commit_width, 1),
            ("frontend_width", self.frontend_width, 1),
            ("lsq_completion_width", self.lsq_completion_width, 1),
            ("rob_size", self.rob_size, 8),
            ("load_queue", self.load_queue, 4),
            ("store_queue", self.store_queue, 4),
            ("loop_buffer_size", self.loop_buffer_size, 1),
            ("mem_requests_per_cycle", self.mem_requests_per_cycle, 1),
            ("loads_per_cycle", self.loads_per_cycle, 1),
            ("stores_per_cycle", self.stores_per_cycle, 1),
        ] {
            if v < lo {
                return Err(format!("{name} {v} below minimum {lo}"));
            }
        }
        Ok(())
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams::thunderx2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        CoreParams::thunderx2().validate().unwrap();
    }

    #[test]
    fn bandwidth_must_cover_vector() {
        let mut p = CoreParams::thunderx2();
        p.vector_length = 2048;
        assert!(p.validate().is_err());
        p.load_bandwidth = 256;
        p.store_bandwidth = 256;
        p.validate().unwrap();
    }

    #[test]
    fn register_floors_enforced() {
        let mut p = CoreParams::thunderx2();
        p.gp_regs = 30;
        assert!(p.validate().is_err());
        let mut p = CoreParams::thunderx2();
        p.pred_regs = 16;
        assert!(p.validate().is_err());
    }

    #[test]
    fn phys_regs_lookup() {
        let p = CoreParams::thunderx2();
        assert_eq!(p.phys_regs(RegClass::Gp), 128);
        assert_eq!(p.phys_regs(RegClass::Cond), 32);
    }

    #[test]
    fn rejects_tiny_rob() {
        let mut p = CoreParams::thunderx2();
        p.rob_size = 4;
        assert!(p.validate().is_err());
    }
}
