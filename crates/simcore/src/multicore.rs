//! The multicore machine layer: N core pipelines over one shared
//! L2 + DRAM backside, stepped in a bounded round-robin slice loop.
//!
//! The paper stops at a closed-form multicore projection (phantom
//! co-runners inflating DRAM service time, [`crate::Contended`]); this
//! module builds the machine itself. Each of the N cores runs its own
//! instance of the same workload (homogeneous-rate model) on a private
//! [`crate::Pipeline`] whose memory port
//! ([`armdse_memsim::CorePort`]) forwards L1 misses into one shared
//! [`armdse_memsim::SharedL2`]. Contention is *emergent*: cores evict
//! each other's L2 lines and queue on the same finite DRAM banks, and
//! the costs land in the existing per-core accounting — `MemData`
//! stall cycles in the [`Counters`] buckets, `dram_queue_*` and
//! MSHR occupancy in each core's `MemStats`.
//!
//! ## The slice loop and determinism
//!
//! Cores are co-simulated cooperatively (the SystemC-TLM / `aero`
//! `run_slice` pattern): the machine picks a global cycle boundary
//! every [`SLICE_CYCLES`] cycles and advances each core — in fixed core
//! order 0..N — up to that boundary via
//! [`Pipeline::drive_until_cycle`] before any core may pass it. All
//! cross-core interaction flows through the shared backside, whose
//! bank-queue and L2 state is therefore mutated in a deterministic
//! order that depends only on (program, params, topology) — never on
//! wall clock or worker-thread count. Results are bit-identical at any
//! host thread count and across checkpoint/resume. Within one slice a
//! core sees the backside state its predecessors left; the slice bound
//! caps that causality skew at `SLICE_CYCLES` core cycles, which is
//! also why the N=1 machine is *exactly* the single-core banked path:
//! with one core there is no interleaving to approximate, and
//! segmented driving is cycle-step-identical to one uninterrupted run.
//!
//! ## Aggregation
//!
//! [`MultiCore::run`] returns machine-level statistics: `cycles` is the
//! makespan (the slowest core), `retired` and the memory/stall counters
//! are summed across cores, `validated` requires every core to
//! validate, and `hit_cycle_limit` is sticky if any core wedged.
//! [`MultiCore::run_with_metrics_per_core`] additionally exposes each
//! core's own statistics and attribution counters for the per-core
//! metrics CSV rows.

use crate::backend::SimBackend;
use crate::counters::Counters;
use crate::cycle_limit;
use crate::params::CoreParams;
use crate::pipeline::Pipeline;
use crate::stats::{SimStats, StallStats};
use armdse_isa::instr::DynInstr;
use armdse_isa::{OpSummary, Program};
use armdse_memsim::{CorePort, MemParams, SharedL2};
use std::rc::Rc;

/// Global slice length of the round-robin loop, in core cycles: every
/// core reaches each multiple of this boundary before any core passes
/// it. Small enough to bound cross-core causality skew well below the
/// DRAM round-trip, large enough that slice bookkeeping is invisible in
/// the profile.
pub const SLICE_CYCLES: u64 = 128;

/// A machine shape: how many cores share how many DRAM banks. The
/// default — one core over [`armdse_memsim::banked::DEFAULT_BANKS`]
/// banks — is the classic single-core machine every existing backend
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Core count (each runs its own instance of the workload).
    pub cores: u32,
    /// Shared DRAM bank count (the shared-bandwidth axis: fewer banks =
    /// a narrower shared memory pipe).
    pub banks: u32,
}

impl Default for Topology {
    fn default() -> Topology {
        Topology {
            cores: 1,
            banks: armdse_memsim::banked::DEFAULT_BANKS as u32,
        }
    }
}

impl Topology {
    /// Whether this is the implicit single-core shape (no multicore
    /// plumbing — checkpoints, CSV columns — needs to surface it).
    pub fn is_single_core(&self) -> bool {
        *self == Topology::default()
    }
}

/// One core's share of a multicore metrics run: its own statistics
/// (cycles, retired, memory and stall counters for *its* port and
/// pipeline) and its own conservation-checked attribution counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCoreMetrics {
    /// Core index, 0-based (core 0 is the address-offset-free core).
    pub core: u32,
    /// The core's own run statistics.
    pub stats: SimStats,
    /// The core's own cycle-attribution counters.
    pub counters: Counters,
}

/// The N-core shared-memory backend (the `Contended` projection
/// generalized to real cores; see the module docs).
///
/// ```
/// use armdse_simcore::{CoreParams, MultiCore, SimBackend};
/// use armdse_memsim::MemParams;
/// use armdse_kernels::{build_workload, App, WorkloadScale};
///
/// let core = CoreParams::thunderx2();
/// let mem = MemParams::thunderx2();
/// let w = build_workload(App::Stream, WorkloadScale::Tiny, core.vector_length);
///
/// let solo = MultiCore::new(1, 8).run(&w.program, &core, &mem);
/// let duo = MultiCore::new(2, 8).run(&w.program, &core, &mem);
/// assert!(solo.validated && duo.validated);
/// // Two streaming cores share the banks: the makespan cannot shrink.
/// assert!(duo.cycles >= solo.cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiCore {
    /// Core count (>= 1).
    pub cores: u32,
    /// Shared DRAM bank count (>= 1).
    pub banks: u32,
}

impl Default for MultiCore {
    fn default() -> MultiCore {
        let t = Topology::default();
        MultiCore {
            cores: t.cores,
            banks: t.banks,
        }
    }
}

/// One core's raw outcome from the slice loop.
struct CoreRun {
    stats: SimStats,
    counters: Option<Counters>,
    trace: Option<Vec<DynInstr>>,
}

impl MultiCore {
    /// A machine with `cores` cores over `banks` shared DRAM banks.
    pub fn new(cores: u32, banks: u32) -> MultiCore {
        assert!(cores >= 1, "a machine needs at least one core");
        assert!(banks >= 1, "the shared backside needs at least one bank");
        MultiCore { cores, banks }
    }

    /// The machine shape as a [`Topology`] value.
    pub fn shape(&self) -> Topology {
        Topology {
            cores: self.cores,
            banks: self.banks,
        }
    }

    /// Drive all cores to completion through the slice loop. Exactly
    /// one simulation, shared by every public entry point; `counters`
    /// and `trace` toggle the zero-cost-by-default observation hooks
    /// (trace is captured on core 0 only — every core runs the same
    /// program, and the oracle replays one architectural stream).
    fn run_cores(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
        counters: bool,
        trace: bool,
    ) -> Vec<CoreRun> {
        core.validate().expect("core parameters must validate");
        let shared = SharedL2::shared(*mem, self.banks as usize);
        let max_cycles = cycle_limit(program);
        let mut pipes: Vec<Pipeline<CorePort>> = (0..self.cores)
            .map(|i| Pipeline::new(program, *core, CorePort::new(Rc::clone(&shared), i)))
            .collect();
        if counters {
            for p in &mut pipes {
                p.enable_counters();
            }
        }
        if trace {
            pipes[0].enable_trace();
        }

        // The bounded round-robin slice loop: every core reaches the
        // global boundary (in fixed core order) before any core passes
        // it. See the module docs for the determinism argument.
        let mut boundary = SLICE_CYCLES;
        loop {
            let mut all_done = true;
            for p in pipes.iter_mut() {
                if !p.is_finished() {
                    p.drive_until_cycle(max_cycles, boundary);
                    all_done &= p.is_finished();
                }
            }
            if all_done || pipes.iter().any(|p| p.stats().hit_cycle_limit) {
                break;
            }
            boundary += SLICE_CYCLES;
        }

        let expected = OpSummary::of(program);
        pipes
            .into_iter()
            .map(|mut p| {
                let counters = p.take_counters_finalized().map(|c| *c);
                let trace = p.take_trace();
                let mut stats = p.stats().clone();
                stats.validated = !stats.hit_cycle_limit && stats.observed == expected;
                CoreRun {
                    stats,
                    counters,
                    trace,
                }
            })
            .collect()
    }

    /// Fold per-core statistics into the machine view: makespan cycles,
    /// summed retirement/memory/stall counters, all-cores validation.
    fn aggregate(runs: &[CoreRun]) -> SimStats {
        let mut agg = runs[0].stats.clone();
        for r in &runs[1..] {
            let s = &r.stats;
            agg.cycles = agg.cycles.max(s.cycles);
            agg.retired += s.retired;
            agg.mem.merge(&s.mem);
            agg.stalls = sum_stalls(&agg.stalls, &s.stalls);
            agg.validated &= s.validated;
            agg.hit_cycle_limit |= s.hit_cycle_limit;
        }
        agg
    }
}

fn sum_stalls(a: &StallStats, b: &StallStats) -> StallStats {
    StallStats {
        rename_gp: a.rename_gp + b.rename_gp,
        rename_fp: a.rename_fp + b.rename_fp,
        rename_pred: a.rename_pred + b.rename_pred,
        rename_cond: a.rename_cond + b.rename_cond,
        rob_full: a.rob_full + b.rob_full,
        rs_full: a.rs_full + b.rs_full,
        lq_full: a.lq_full + b.lq_full,
        sq_full: a.sq_full + b.sq_full,
        fetch_starved: a.fetch_starved + b.fetch_starved,
        loop_buffer_cycles: a.loop_buffer_cycles + b.loop_buffer_cycles,
    }
}

impl SimBackend for MultiCore {
    fn name(&self) -> &'static str {
        "multicore"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        MultiCore::aggregate(&self.run_cores(program, core, mem, false, false))
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        let mut runs = self.run_cores(program, core, mem, false, true);
        let stats = MultiCore::aggregate(&runs);
        let trace = runs[0].trace.take().expect("tracing enabled on core 0");
        (stats, trace)
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        let (stats, counters, _) = self.run_with_metrics_per_core(program, core, mem);
        (stats, counters)
    }

    fn run_with_metrics_per_core(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters, Vec<PerCoreMetrics>) {
        let runs = self.run_cores(program, core, mem, true, false);
        let stats = MultiCore::aggregate(&runs);
        let mut merged: Option<Counters> = None;
        let per_core: Vec<PerCoreMetrics> = runs
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let c = r.counters.expect("counters enabled on every core");
                match &mut merged {
                    Some(m) => m.merge(&c),
                    None => merged = Some(c.clone()),
                }
                PerCoreMetrics {
                    core: i as u32,
                    stats: r.stats,
                    counters: c,
                }
            })
            .collect();
        let merged = merged.expect("at least one core");
        // Per-core rows are only interesting when there is more than
        // one core: the single-core machine IS its aggregate.
        let per_core = if per_core.len() > 1 {
            per_core
        } else {
            Vec::new()
        };
        (stats, merged, per_core)
    }

    fn topology(&self) -> Topology {
        self.shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BankedProxy;
    use armdse_kernels::{build_workload, App, WorkloadScale};

    fn fixture(app: App) -> (Program, CoreParams, MemParams) {
        let core = CoreParams::thunderx2();
        let w = build_workload(app, WorkloadScale::Tiny, core.vector_length);
        (w.program, core, MemParams::thunderx2())
    }

    /// The acceptance bound: the one-core machine is the single-core
    /// banked path, exactly — full statistics, trace, and counters.
    #[test]
    fn n1_is_bit_identical_to_banked_proxy() {
        for app in App::ALL {
            let (p, c, m) = fixture(app);
            let mc = MultiCore::new(1, 8);
            assert_eq!(mc.run(&p, &c, &m), BankedProxy.run(&p, &c, &m), "{app:?}");
            let (ts, trace) = mc.run_traced(&p, &c, &m);
            let (rs, rtrace) = BankedProxy.run_traced(&p, &c, &m);
            assert_eq!(ts, rs, "{app:?} traced stats diverged");
            assert_eq!(trace.len(), rtrace.len(), "{app:?} trace diverged");
            let (ms, counters) = mc.run_with_metrics(&p, &c, &m);
            let (bs, bcounters) = BankedProxy.run_with_metrics(&p, &c, &m);
            assert_eq!(ms, bs, "{app:?} metrics stats diverged");
            assert_eq!(counters, bcounters, "{app:?} counters diverged");
        }
    }

    #[test]
    fn more_cores_never_shrink_the_makespan() {
        let (p, c, m) = fixture(App::Stream);
        let solo_retired = MultiCore::new(1, 8).run(&p, &c, &m).retired;
        let mut prev = 0;
        for cores in [1u32, 2, 4] {
            let s = MultiCore::new(cores, 8).run(&p, &c, &m);
            assert!(s.validated, "{cores} cores failed validation");
            assert!(
                s.cycles >= prev,
                "{cores} cores ran in {} cycles, fewer cores took {prev}",
                s.cycles
            );
            assert_eq!(s.retired, u64::from(cores) * solo_retired);
            prev = s.cycles;
        }
    }

    /// The shared-bandwidth axis: shrinking the bank count must not
    /// speed the machine up (satellite: contention monotonicity).
    #[test]
    fn fewer_banks_never_shrink_the_makespan() {
        let (p, c, m) = fixture(App::Stream);
        let mut prev = 0;
        for &banks in [1u32, 2, 4, 8].iter().rev() {
            let s = MultiCore::new(2, banks).run(&p, &c, &m);
            assert!(s.validated);
            assert!(
                s.cycles >= prev,
                "{banks} banks ran in {} cycles, more banks took {prev}",
                s.cycles
            );
            prev = s.cycles;
        }
    }

    #[test]
    fn metrics_are_transparent_and_conserve_per_core_and_aggregate() {
        let (p, c, m) = fixture(App::TeaLeaf);
        let mc = MultiCore::new(2, 4);
        let plain = mc.run(&p, &c, &m);
        let (stats, agg, per_core) = mc.run_with_metrics_per_core(&p, &c, &m);
        assert_eq!(stats, plain, "metrics perturbed the multicore run");
        assert!(agg.conserves());
        assert_eq!(per_core.len(), 2);
        let mut cycle_sum = 0;
        for pc in &per_core {
            assert!(pc.counters.conserves(), "core {} leaked a cycle", pc.core);
            assert_eq!(pc.counters.cycles, pc.stats.cycles);
            assert!(pc.stats.validated);
            cycle_sum += pc.stats.cycles;
        }
        assert_eq!(
            agg.cycles, cycle_sum,
            "aggregate attributes all core-cycles"
        );
        assert!(stats.cycles <= cycle_sum && stats.cycles >= cycle_sum / 2);
        // Per-core rows are suppressed for the single-core machine.
        let (_, _, solo) = MultiCore::new(1, 8).run_with_metrics_per_core(&p, &c, &m);
        assert!(solo.is_empty());
    }

    #[test]
    fn deterministic_across_repeat_runs() {
        let (p, c, m) = fixture(App::MiniSweep);
        let mc = MultiCore::new(3, 4);
        let a = mc.run(&p, &c, &m);
        let b = mc.run(&p, &c, &m);
        assert_eq!(a, b);
        assert!(a.validated);
    }

    #[test]
    fn contention_charges_the_memory_buckets() {
        let (p, c, m) = fixture(App::Stream);
        let (_, solo_c) = MultiCore::new(1, 2).run_with_metrics(&p, &c, &m);
        let (_, duo_c, per_core) = {
            let mc = MultiCore::new(2, 2);
            let (s, agg, pc) = mc.run_with_metrics_per_core(&p, &c, &m);
            assert!(s.validated);
            (s, agg, pc)
        };
        use crate::counters::CycleBucket;
        let solo_mem = solo_c.bucket(CycleBucket::MemData);
        let duo_mem = duo_c.bucket(CycleBucket::MemData);
        assert!(
            duo_mem > solo_mem,
            "shared-bank contention must surface as MemData stalls: {duo_mem} !> {solo_mem}"
        );
        // The queueing the cores suffered is visible in their ports.
        let waits: u64 = per_core
            .iter()
            .map(|pc| pc.stats.mem.dram_queue_wait_cycles)
            .sum();
        assert!(waits > 0, "two streaming cores on two banks must queue");
    }

    #[test]
    fn topology_reports_the_shape() {
        assert!(MultiCore::default().topology().is_single_core());
        let t = MultiCore::new(4, 2).topology();
        assert_eq!((t.cores, t.banks), (4, 2));
        assert!(!t.is_single_core());
    }
}
