//! Pluggable simulation backends.
//!
//! The paper's workflow hard-wires one executor per entry point
//! (`simulate`, `simulate_hardware_proxy`, `simulate_traced*`); this
//! module turns the backend choice into a *value* so orchestration code
//! (the `armdse-core` engine, the analysis harnesses, the oracle's
//! differential checker) can be written once against [`SimBackend`] and
//! handed whichever executor a campaign needs. This is the
//! ArchGym-style standardized interface between the explorer and
//! interchangeable simulators: new backends (sharded, remote,
//! trace-replay) plug in without touching any caller.
//!
//! Provided backends:
//!
//! * [`Idealized`] — the default infinite-bank, SST-like hierarchy (the
//!   paper's simulation path).
//! * [`BankedProxy`] — the finite-banked "hardware proxy" hierarchy
//!   standing in for the physical ThunderX2 of Table I.
//! * [`Contended`] — the banked hierarchy with phantom co-runners
//!   saturating the shared DRAM controller (the §VII multi-core
//!   future-work scenario).
//! * [`Traced`] — adapter selecting a backend's commit-trace entry
//!   point as the value's call operator (used by the oracle's replay
//!   checks).

use crate::counters::Counters;
use crate::multicore::{PerCoreMetrics, Topology};
use crate::params::CoreParams;
use crate::reuse::{Fidelity, ReuseStats};
use crate::stats::SimStats;
use crate::{simulate_traced_with, simulate_with, simulate_with_metrics_with};
use armdse_isa::instr::DynInstr;
use armdse_isa::Program;
use armdse_memsim::{BankedHierarchy, Hierarchy, MemParams};

/// A simulation executor: how a lowered program is run against one
/// `(core, mem)` design point.
///
/// Backends are cheap, stateless values (`Send + Sync`) so one instance
/// can be shared by every worker thread of a campaign. All backends
/// model the *same* architectural machine — only timing may differ —
/// which is what the differential oracle and the proxy-agreement tests
/// pin down.
pub trait SimBackend: Send + Sync {
    /// Stable backend name for reports, labels, and failure records.
    fn name(&self) -> &'static str;

    /// Simulate and return the run statistics.
    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats;

    /// Simulate and additionally return the commit-order retirement
    /// stream (timing must be identical to [`SimBackend::run`]).
    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>);

    /// Simulate with cycle accounting enabled and return the per-cycle
    /// attribution counters alongside the statistics. The contract is
    /// *metrics transparency*: the returned [`SimStats`] must be
    /// identical to [`SimBackend::run`] on the same inputs (counter
    /// collection may not perturb architectural or timing state), and
    /// the counters must satisfy [`Counters::conserves`]. The oracle's
    /// differential metrics lane checks both properties.
    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters);

    /// Interval-cache counters, for backends that reuse computation
    /// across runs ([`crate::reuse::Memoized`]). `None` for backends
    /// with no reuse state (the default).
    fn reuse_stats(&self) -> Option<ReuseStats> {
        None
    }

    /// The fidelity tier this backend simulates at. Defaults to
    /// [`Fidelity::Full`]: exact, uncached simulation.
    fn fidelity(&self) -> Fidelity {
        Fidelity::Full
    }

    /// Drop any memoized interval results so the next run starts cold.
    /// No-op for backends without reuse state (the default).
    fn clear_reuse_cache(&self) {}

    /// The machine shape this backend simulates. Every classic backend
    /// is the default single-core machine; [`crate::MultiCore`] reports
    /// its core and shared-bank counts so orchestration code can label
    /// rows and checkpoints without downcasting.
    fn topology(&self) -> Topology {
        Topology::default()
    }

    /// Like [`SimBackend::run_with_metrics`], additionally returning one
    /// [`PerCoreMetrics`] entry per core for machines with more than one
    /// core. Single-core backends (the default) return an empty vector:
    /// the aggregate *is* the machine.
    fn run_with_metrics_per_core(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters, Vec<PerCoreMetrics>) {
        let (stats, counters) = self.run_with_metrics(program, core, mem);
        (stats, counters, Vec::new())
    }
}

/// The default infinite-bank (SST-like) hierarchy — the paper's
/// simulation path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Idealized;

impl SimBackend for Idealized {
    fn name(&self) -> &'static str {
        "idealized"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        simulate_with(program, core, Hierarchy::new(*mem))
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        simulate_traced_with(program, core, Hierarchy::new(*mem))
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        simulate_with_metrics_with(program, core, Hierarchy::new(*mem))
    }
}

/// The finite-banked "hardware proxy" hierarchy (the Table I hardware
/// side; see the DESIGN.md substitution table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankedProxy;

impl SimBackend for BankedProxy {
    fn name(&self) -> &'static str {
        "banked-proxy"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        simulate_with(program, core, BankedHierarchy::new(*mem))
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        simulate_traced_with(program, core, BankedHierarchy::new(*mem))
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        simulate_with_metrics_with(program, core, BankedHierarchy::new(*mem))
    }
}

/// The banked hierarchy under multi-core DRAM contention: `co_runners`
/// phantom cores saturate the shared controller (paper §VII).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Contended {
    /// Number of phantom co-runners (0 = the single-core setting).
    pub co_runners: u32,
}

impl Contended {
    fn hierarchy(&self, mem: &MemParams) -> BankedHierarchy {
        BankedHierarchy::with_contention(
            *mem,
            armdse_memsim::banked::DEFAULT_BANKS,
            self.co_runners,
        )
    }
}

impl SimBackend for Contended {
    fn name(&self) -> &'static str {
        "contended"
    }

    fn run(&self, program: &Program, core: &CoreParams, mem: &MemParams) -> SimStats {
        simulate_with(program, core, self.hierarchy(mem))
    }

    fn run_traced(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        simulate_traced_with(program, core, self.hierarchy(mem))
    }

    fn run_with_metrics(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Counters) {
        simulate_with_metrics_with(program, core, self.hierarchy(mem))
    }
}

/// Adapter fixing a backend's *traced* entry point as the value's call
/// operator: `Traced(BankedProxy).run(..)` yields the statistics plus
/// the commit-order retirement stream. Lets callers that always need
/// the trace (the oracle's replay checker) hold one value instead of
/// remembering which method to call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traced<B: SimBackend>(pub B);

impl<B: SimBackend> Traced<B> {
    /// Simulate, returning statistics and the commit-order trace.
    pub fn run(
        &self,
        program: &Program,
        core: &CoreParams,
        mem: &MemParams,
    ) -> (SimStats, Vec<DynInstr>) {
        self.0.run_traced(program, core, mem)
    }

    /// The wrapped backend's name.
    pub fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_kernels::{build_workload, App, WorkloadScale};

    fn fixture() -> (Program, CoreParams, MemParams) {
        let core = CoreParams::thunderx2();
        let w = build_workload(App::Stream, WorkloadScale::Tiny, core.vector_length);
        (w.program, core, MemParams::thunderx2())
    }

    #[test]
    fn backends_match_the_free_functions() {
        let (p, c, m) = fixture();
        assert_eq!(
            Idealized.run(&p, &c, &m).cycles,
            crate::simulate(&p, &c, &m).cycles
        );
        assert_eq!(
            BankedProxy.run(&p, &c, &m).cycles,
            crate::simulate_hardware_proxy(&p, &c, &m).cycles
        );
        assert_eq!(
            Contended { co_runners: 3 }.run(&p, &c, &m).cycles,
            crate::simulate_contended(&p, &c, &m, 3).cycles
        );
    }

    #[test]
    fn backend_choice_works_through_dyn_dispatch() {
        let (p, c, m) = fixture();
        let backends: [&dyn SimBackend; 3] =
            [&Idealized, &BankedProxy, &Contended { co_runners: 1 }];
        let mut names = Vec::new();
        for b in backends {
            let s = b.run(&p, &c, &m);
            assert!(s.validated, "{} failed validation", b.name());
            names.push(b.name());
        }
        assert_eq!(names, ["idealized", "banked-proxy", "contended"]);
    }

    #[test]
    fn metrics_runs_are_transparent_and_conserve_cycles() {
        let (p, c, m) = fixture();
        let backends: [&dyn SimBackend; 3] =
            [&Idealized, &BankedProxy, &Contended { co_runners: 2 }];
        for b in backends {
            let plain = b.run(&p, &c, &m);
            let (stats, counters) = b.run_with_metrics(&p, &c, &m);
            assert_eq!(stats, plain, "{}: metrics perturbed the run", b.name());
            assert_eq!(counters.cycles, stats.cycles);
            assert!(
                counters.conserves(),
                "{}: {} cycles but {} attributed",
                b.name(),
                counters.cycles,
                counters.attributed_cycles()
            );
            assert!(
                counters.retire_cycles() > 0,
                "{}: nothing retired",
                b.name()
            );
        }
    }

    #[test]
    fn traced_adapter_matches_untraced_timing() {
        let (p, c, m) = fixture();
        let plain = BankedProxy.run(&p, &c, &m);
        let (stats, trace) = Traced(BankedProxy).run(&p, &c, &m);
        assert_eq!(stats.cycles, plain.cycles);
        assert_eq!(trace.len() as u64, stats.retired);
        assert_eq!(Traced(BankedProxy).name(), "banked-proxy");
    }
}
