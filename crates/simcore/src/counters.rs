//! Per-cycle cycle-accounting counters: top-down stall attribution and
//! per-structure occupancy histograms.
//!
//! The attribution is *exclusive*: every simulated cycle is charged to
//! exactly one [`CycleBucket`], so the conservation identity
//!
//! ```text
//! cycles == Σ retire buckets + Σ stall buckets
//! ```
//!
//! holds by construction (asserted by [`Counters::conserves`] and the
//! `tests/metrics_accounting.rs` integration test). A cycle is
//! classified at the commit edge — after writeback, LSQ memory, and
//! commit have run, before issue/dispatch/rename/fetch — by asking why
//! the *oldest in-flight instruction* did not retire. See
//! `docs/METRICS.md` for the exact decision tree, cycle-edge timing,
//! and the known attribution caveats.
//!
//! Collection is zero-cost-by-default: the pipeline only classifies and
//! samples occupancy when counters were requested
//! ([`crate::Pipeline::run_with_counters`]), and the collection path
//! never mutates architectural or timing state, so a metrics-on run
//! returns byte-identical [`crate::SimStats`] to a metrics-off run (the
//! oracle's metrics-transparency lane pins this).

use crate::params::{CoreParams, FETCH_QUEUE_CAP, RENAME_BUFFER_CAP, RS_SIZE};

/// Histogram resolution: occupancy is binned into this many equal-width
/// fractions of the structure's capacity.
pub const OCC_BINS: usize = 8;

/// The exclusive per-cycle attribution buckets.
///
/// The first [`CycleBucket::RETIRE_COUNT`] variants are retire buckets
/// (at least one instruction retired this cycle, classified by the
/// oldest retired instruction); the rest are stall buckets (no
/// instruction retired, classified by what blocked the oldest
/// in-flight instruction — or the frontend, if the window was empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum CycleBucket {
    /// Retired; the oldest retired instruction was a scalar ALU/branch op.
    RetireScalar,
    /// Retired; the oldest retired instruction was an SVE vector op.
    RetireVector,
    /// Retired; the oldest retired instruction was a predicate op.
    RetirePredicate,
    /// Retired; the oldest retired instruction was a load (incl. gathers).
    RetireLoad,
    /// Retired; the oldest retired instruction was a store (incl. scatters).
    RetireStore,
    /// Window empty, fetch queue empty, program not exhausted: the fetch
    /// stage could not deliver (fetch-block alignment / taken branches).
    FetchStarved,
    /// Pipeline-fill latency: instructions exist upstream of the stage
    /// that would have had to act this cycle, and no structural resource
    /// was exhausted (fetch→rename→dispatch fill bubbles).
    FrontendLatency,
    /// Rename blocked on an empty physical-register free list.
    RenameFreeList,
    /// Oldest instruction waits in the rename buffer: reorder buffer full.
    RobFull,
    /// Oldest instruction waits in the rename buffer: reservation
    /// station full.
    RsFull,
    /// Oldest instruction (a load) waits in the rename buffer: load
    /// queue full.
    LqFull,
    /// Oldest instruction (a store) waits in the rename buffer: store
    /// queue full.
    SqFull,
    /// Oldest instruction sits in the RS with unresolved source operands.
    Dependency,
    /// Oldest instruction is ready in the RS but no port of its class was
    /// free at the previous issue opportunity.
    IssueBandwidth,
    /// Oldest instruction is executing on a port (multi-cycle latency).
    ExecLatency,
    /// Oldest instruction (a load) could not issue line requests because
    /// a per-cycle request/bandwidth budget was exhausted this cycle.
    MemRequestCap,
    /// Oldest instruction (a load) is blocked behind an older overlapping
    /// store whose data is unknown or only partially covers the load.
    MemStoreHazard,
    /// Oldest instruction (a load) has all line requests in flight and is
    /// waiting for data from the memory hierarchy.
    MemData,
    /// Oldest instruction (a load) has its data but is waiting for an LSQ
    /// completion slot (`lsq_completion_width`).
    LsqCompletion,
    /// Nothing left to fetch or commit: the store queue (or the final
    /// cycle's bookkeeping) is draining.
    Drain,
}

impl CycleBucket {
    /// Number of retire buckets (they lead the variant order).
    pub const RETIRE_COUNT: usize = 5;

    /// Every bucket, in variant (= CSV column) order.
    pub const ALL: [CycleBucket; 20] = [
        CycleBucket::RetireScalar,
        CycleBucket::RetireVector,
        CycleBucket::RetirePredicate,
        CycleBucket::RetireLoad,
        CycleBucket::RetireStore,
        CycleBucket::FetchStarved,
        CycleBucket::FrontendLatency,
        CycleBucket::RenameFreeList,
        CycleBucket::RobFull,
        CycleBucket::RsFull,
        CycleBucket::LqFull,
        CycleBucket::SqFull,
        CycleBucket::Dependency,
        CycleBucket::IssueBandwidth,
        CycleBucket::ExecLatency,
        CycleBucket::MemRequestCap,
        CycleBucket::MemStoreHazard,
        CycleBucket::MemData,
        CycleBucket::LsqCompletion,
        CycleBucket::Drain,
    ];

    /// Total bucket count.
    pub const COUNT: usize = CycleBucket::ALL.len();

    /// Stable snake-case name; retire buckets are prefixed `retire_`,
    /// stall buckets `stall_` (the metrics CSV relies on the prefixes).
    pub const fn name(self) -> &'static str {
        match self {
            CycleBucket::RetireScalar => "retire_scalar",
            CycleBucket::RetireVector => "retire_vector",
            CycleBucket::RetirePredicate => "retire_predicate",
            CycleBucket::RetireLoad => "retire_load",
            CycleBucket::RetireStore => "retire_store",
            CycleBucket::FetchStarved => "stall_fetch_starved",
            CycleBucket::FrontendLatency => "stall_frontend_latency",
            CycleBucket::RenameFreeList => "stall_rename_free_list",
            CycleBucket::RobFull => "stall_rob_full",
            CycleBucket::RsFull => "stall_rs_full",
            CycleBucket::LqFull => "stall_lq_full",
            CycleBucket::SqFull => "stall_sq_full",
            CycleBucket::Dependency => "stall_dependency",
            CycleBucket::IssueBandwidth => "stall_issue_bandwidth",
            CycleBucket::ExecLatency => "stall_exec_latency",
            CycleBucket::MemRequestCap => "stall_mem_request_cap",
            CycleBucket::MemStoreHazard => "stall_mem_store_hazard",
            CycleBucket::MemData => "stall_mem_data",
            CycleBucket::LsqCompletion => "stall_lsq_completion",
            CycleBucket::Drain => "stall_drain",
        }
    }

    /// Whether this is a retire (throughput-limited) bucket.
    pub const fn is_retire(self) -> bool {
        (self as usize) < CycleBucket::RETIRE_COUNT
    }

    /// The bucket's index in [`CycleBucket::ALL`] / the counter array.
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// The pipeline structures whose occupancy is sampled every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Structure {
    /// Reorder buffer (capacity `rob_size`).
    Rob,
    /// Unified reservation station (capacity [`RS_SIZE`]).
    Rs,
    /// Load queue (capacity `load_queue`).
    LoadQueue,
    /// Store queue (capacity `store_queue`).
    StoreQueue,
    /// Fetch queue (capacity [`FETCH_QUEUE_CAP`]).
    FetchQueue,
    /// Rename buffer (capacity [`RENAME_BUFFER_CAP`]).
    RenameBuffer,
}

impl Structure {
    /// Every structure, in variant (= CSV column) order.
    pub const ALL: [Structure; 6] = [
        Structure::Rob,
        Structure::Rs,
        Structure::LoadQueue,
        Structure::StoreQueue,
        Structure::FetchQueue,
        Structure::RenameBuffer,
    ];

    /// Total structure count.
    pub const COUNT: usize = Structure::ALL.len();

    /// Stable snake-case name used in CSV column prefixes.
    pub const fn name(self) -> &'static str {
        match self {
            Structure::Rob => "rob",
            Structure::Rs => "rs",
            Structure::LoadQueue => "lq",
            Structure::StoreQueue => "sq",
            Structure::FetchQueue => "fetch_q",
            Structure::RenameBuffer => "rename_buf",
        }
    }

    /// The structure's index in [`Structure::ALL`].
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Occupancy histogram for one pipeline structure, sampled once per
/// cycle at the commit edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyHist {
    /// Structure capacity the samples are measured against.
    pub capacity: u64,
    /// Sum of per-cycle occupancy samples (mean = `sum / cycles`).
    pub sum: u64,
    /// Largest occupancy observed.
    pub peak: u64,
    /// Cycles the structure was at capacity.
    pub full_cycles: u64,
    /// Cycle counts per occupancy octile: bin `i` covers occupancies in
    /// `[i/8, (i+1)/8)` of capacity (the last bin includes capacity).
    pub bins: [u64; OCC_BINS],
}

impl Default for OccupancyHist {
    fn default() -> OccupancyHist {
        OccupancyHist::new(0)
    }
}

impl OccupancyHist {
    /// An empty histogram over a structure with the given capacity.
    pub fn new(capacity: u64) -> OccupancyHist {
        OccupancyHist {
            capacity,
            sum: 0,
            peak: 0,
            full_cycles: 0,
            bins: [0; OCC_BINS],
        }
    }

    /// Record one occupancy sample.
    pub fn observe(&mut self, occ: u64) {
        self.observe_n(occ, 1);
    }

    /// Record `n` consecutive samples of the same occupancy, exactly as
    /// `n` calls to [`OccupancyHist::observe`] would (used by the
    /// pipeline's idle-cycle fast-forward, where occupancy is provably
    /// constant across the skipped cycles).
    pub fn observe_n(&mut self, occ: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.sum += occ * n;
        self.peak = self.peak.max(occ);
        if self.capacity > 0 && occ >= self.capacity {
            self.full_cycles += n;
        }
        let bin = (occ * OCC_BINS as u64)
            .checked_div(self.capacity)
            .map_or(0, |b| b.min(OCC_BINS as u64 - 1));
        self.bins[bin as usize] += n;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Mean occupancy over the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            return 0.0;
        }
        self.sum as f64 / n as f64
    }
}

/// Cycle-accounting counters for one simulated run.
///
/// Returned by [`crate::Pipeline::run_with_counters`] and every
/// [`crate::SimBackend::run_with_metrics`] implementation. The struct
/// is plain data: cloning, comparing, and serialising it (via
/// [`Counters::column_names`] / [`Counters::values`]) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Total cycles attributed (equals `SimStats::cycles`).
    pub cycles: u64,
    /// Exclusive per-cycle buckets, indexed by [`CycleBucket::index`].
    pub buckets: [u64; CycleBucket::COUNT],
    /// Cycles fetched from the loop buffer (supplementary, *not* part of
    /// the exclusive attribution: a loop-buffer cycle also lands in one
    /// of the exclusive buckets).
    pub loop_buffer_cycles: u64,
    /// Occupancy histograms, indexed by [`Structure::index`].
    pub occupancy: [OccupancyHist; Structure::COUNT],
}

impl Default for Counters {
    fn default() -> Counters {
        Counters {
            cycles: 0,
            buckets: [0; CycleBucket::COUNT],
            loop_buffer_cycles: 0,
            occupancy: [OccupancyHist::new(0); Structure::COUNT],
        }
    }
}

impl Counters {
    /// Empty counters with occupancy capacities taken from `params`
    /// (plus the fixed structural constants).
    pub fn new(params: &CoreParams) -> Counters {
        let cap = |s: Structure| match s {
            Structure::Rob => u64::from(params.rob_size),
            Structure::Rs => RS_SIZE as u64,
            Structure::LoadQueue => u64::from(params.load_queue),
            Structure::StoreQueue => u64::from(params.store_queue),
            Structure::FetchQueue => FETCH_QUEUE_CAP as u64,
            Structure::RenameBuffer => RENAME_BUFFER_CAP as u64,
        };
        let mut occupancy = [OccupancyHist::new(0); Structure::COUNT];
        for s in Structure::ALL {
            occupancy[s.index()] = OccupancyHist::new(cap(s));
        }
        Counters {
            cycles: 0,
            buckets: [0; CycleBucket::COUNT],
            loop_buffer_cycles: 0,
            occupancy,
        }
    }

    /// Charge one cycle to `bucket`.
    #[inline]
    pub fn record(&mut self, bucket: CycleBucket) {
        self.buckets[bucket.index()] += 1;
    }

    /// Charge `n` cycles to `bucket` at once (fast-forward bulk path).
    #[inline]
    pub fn record_n(&mut self, bucket: CycleBucket, n: u64) {
        self.buckets[bucket.index()] += n;
    }

    /// Record one occupancy sample for `structure`.
    #[inline]
    pub fn observe(&mut self, structure: Structure, occ: u64) {
        self.occupancy[structure.index()].observe(occ);
    }

    /// Record `n` identical occupancy samples for `structure` at once
    /// (fast-forward bulk path).
    #[inline]
    pub fn observe_n(&mut self, structure: Structure, occ: u64, n: u64) {
        self.occupancy[structure.index()].observe_n(occ, n);
    }

    /// The count in one bucket.
    pub fn bucket(&self, b: CycleBucket) -> u64 {
        self.buckets[b.index()]
    }

    /// Sum of every exclusive bucket.
    pub fn attributed_cycles(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of the retire buckets.
    pub fn retire_cycles(&self) -> u64 {
        self.buckets[..CycleBucket::RETIRE_COUNT].iter().sum()
    }

    /// Sum of the stall buckets.
    pub fn stall_cycles(&self) -> u64 {
        self.buckets[CycleBucket::RETIRE_COUNT..].iter().sum()
    }

    /// The conservation identity: every cycle was attributed to exactly
    /// one bucket. Holds by construction for every completed run
    /// (including cycle-limit-aborted ones).
    pub fn conserves(&self) -> bool {
        self.cycles == self.attributed_cycles()
    }

    /// A bucket's share of total cycles, in `[0, 1]` (0 when empty).
    pub fn share(&self, b: CycleBucket) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bucket(b) as f64 / self.cycles as f64
    }

    /// The stall bucket with the most cycles (ties break toward the
    /// earlier variant, deterministically); `None` if no cycle stalled.
    pub fn dominant_stall(&self) -> Option<CycleBucket> {
        CycleBucket::ALL[CycleBucket::RETIRE_COUNT..]
            .iter()
            .copied()
            .max_by_key(|b| (self.bucket(*b), std::cmp::Reverse(b.index())))
            .filter(|b| self.bucket(*b) > 0)
    }

    /// Fold another run's counters into this one — the multicore
    /// backend's aggregate row. Buckets, attributed cycles, and
    /// loop-buffer cycles add; occupancy histograms merge bin-wise with
    /// `peak` taking the max. If both sides satisfy
    /// [`Counters::conserves`], the merged counters do too (the
    /// aggregate attributes every core-cycle across all cores, so its
    /// `cycles` is the *sum* of per-core cycles, not the makespan).
    pub fn merge(&mut self, other: &Counters) {
        self.cycles += other.cycles;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.loop_buffer_cycles += other.loop_buffer_cycles;
        for (h, o) in self.occupancy.iter_mut().zip(&other.occupancy) {
            debug_assert_eq!(
                h.capacity, o.capacity,
                "merging occupancy across heterogeneous capacities"
            );
            h.sum += o.sum;
            h.peak = h.peak.max(o.peak);
            h.full_cycles += o.full_cycles;
            for (b, ob) in h.bins.iter_mut().zip(&o.bins) {
                *b += ob;
            }
        }
    }

    /// CSV column names for [`Counters::values`], in order: the 20
    /// exclusive buckets, `loop_buffer_cycles`, then per structure
    /// `occ_<s>_{sum,peak,full,b0..b7}`.
    pub fn column_names() -> Vec<String> {
        let mut cols: Vec<String> = CycleBucket::ALL.iter().map(|b| b.name().into()).collect();
        cols.push("loop_buffer_cycles".into());
        for s in Structure::ALL {
            let n = s.name();
            cols.push(format!("occ_{n}_sum"));
            cols.push(format!("occ_{n}_peak"));
            cols.push(format!("occ_{n}_full"));
            for i in 0..OCC_BINS {
                cols.push(format!("occ_{n}_b{i}"));
            }
        }
        cols
    }

    /// Counter values in [`Counters::column_names`] order.
    pub fn values(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.buckets.to_vec();
        v.push(self.loop_buffer_cycles);
        for s in Structure::ALL {
            let h = &self.occupancy[s.index()];
            v.push(h.sum);
            v.push(h.peak);
            v.push(h.full_cycles);
            v.extend_from_slice(&h.bins);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_names_are_prefixed_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for b in CycleBucket::ALL {
            let n = b.name();
            assert!(
                n.starts_with(if b.is_retire() { "retire_" } else { "stall_" }),
                "{n} misprefixed"
            );
            assert!(seen.insert(n), "duplicate bucket name {n}");
        }
    }

    #[test]
    fn indices_match_all_order() {
        for (i, b) in CycleBucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        for (i, s) in Structure::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn columns_and_values_align() {
        let c = Counters::new(&CoreParams::thunderx2());
        assert_eq!(Counters::column_names().len(), c.values().len());
    }

    #[test]
    fn conservation_and_sums() {
        let mut c = Counters::default();
        c.record(CycleBucket::RetireScalar);
        c.record(CycleBucket::MemData);
        c.record(CycleBucket::MemData);
        c.cycles = 3;
        assert!(c.conserves());
        assert_eq!(c.retire_cycles(), 1);
        assert_eq!(c.stall_cycles(), 2);
        assert_eq!(c.dominant_stall(), Some(CycleBucket::MemData));
        assert!((c.share(CycleBucket::MemData) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_stall_none_when_all_retire() {
        let mut c = Counters::default();
        c.record(CycleBucket::RetireVector);
        c.cycles = 1;
        assert_eq!(c.dominant_stall(), None);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut bulk = OccupancyHist::new(8);
        let mut step = OccupancyHist::new(8);
        for (occ, n) in [(0u64, 3u64), (5, 7), (8, 2)] {
            bulk.observe_n(occ, n);
            for _ in 0..n {
                step.observe(occ);
            }
        }
        assert_eq!(bulk, step);

        let mut c_bulk = Counters::default();
        let mut c_step = Counters::default();
        c_bulk.record_n(CycleBucket::MemData, 5);
        for _ in 0..5 {
            c_step.record(CycleBucket::MemData);
        }
        assert_eq!(c_bulk.buckets, c_step.buckets);
    }

    #[test]
    fn merge_preserves_conservation_and_sums() {
        let mut a = Counters::default();
        a.record(CycleBucket::RetireScalar);
        a.record_n(CycleBucket::MemData, 4);
        a.cycles = 5;
        a.loop_buffer_cycles = 2;
        a.occupancy[0].observe_n(3, 5);
        let mut b = Counters::default();
        b.record_n(CycleBucket::RetireVector, 7);
        b.cycles = 7;
        b.occupancy[0].observe_n(6, 7);
        assert!(a.conserves() && b.conserves());
        a.merge(&b);
        assert!(a.conserves());
        assert_eq!(a.cycles, 12);
        assert_eq!(a.bucket(CycleBucket::RetireVector), 7);
        assert_eq!(a.loop_buffer_cycles, 2);
        assert_eq!(a.occupancy[0].samples(), 12);
        assert_eq!(a.occupancy[0].peak, 6);
        assert_eq!(a.occupancy[0].sum, 3 * 5 + 6 * 7);
    }

    #[test]
    fn occupancy_histogram_bins_and_peak() {
        let mut h = OccupancyHist::new(8);
        for occ in [0u64, 3, 7, 8, 8] {
            h.observe(occ);
        }
        assert_eq!(h.peak, 8);
        assert_eq!(h.full_cycles, 2);
        assert_eq!(h.samples(), 5);
        assert_eq!(h.bins[0], 1); // occ 0
        assert_eq!(h.bins[3], 1); // occ 3
        assert_eq!(h.bins[7], 3); // occ 7, 8, 8 (last bin includes capacity)
        assert!((h.mean() - 26.0 / 5.0).abs() < 1e-12);
    }
}
