//! Register renaming: per-class physical register files with free lists,
//! ready bits, and waiter lists.

use armdse_isa::reg::{Reg, RegClass};

/// Sequence number of an in-flight micro-op (monotonic, program order).
pub type Seq = u64;

/// One class's physical register file.
#[derive(Debug, Clone)]
struct ClassFile {
    /// Current architectural → physical mapping.
    map: Vec<u32>,
    /// Free physical registers.
    free: Vec<u32>,
    /// Ready bit per physical register (value produced).
    ready: Vec<bool>,
    /// Micro-ops waiting on each physical register.
    waiters: Vec<Vec<Seq>>,
}

impl ClassFile {
    fn new(arch: u32, phys: u32) -> ClassFile {
        assert!(
            phys > arch,
            "physical file smaller than architectural state"
        );
        ClassFile {
            map: (0..arch).collect(),
            free: (arch..phys).rev().collect(),
            ready: vec![true; phys as usize],
            waiters: vec![Vec::new(); phys as usize],
        }
    }
}

/// The rename unit: all four class files.
#[derive(Debug, Clone)]
pub struct RenameUnit {
    files: [ClassFile; 4],
    /// Rename stalls attributed to each class's free list being empty.
    pub stall_counts: [u64; 4],
}

/// Result of renaming one destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedDest {
    /// Register class.
    pub class: RegClass,
    /// Newly allocated physical register.
    pub phys: u32,
    /// Previous mapping of the architectural register (freed at commit).
    pub prev: u32,
}

impl RenameUnit {
    /// Build with per-class physical register counts
    /// (indexed by `RegClass::index()`).
    pub fn new(phys_counts: [u32; 4]) -> RenameUnit {
        let f = |c: RegClass| ClassFile::new(u32::from(c.arch_count()), phys_counts[c.index()]);
        RenameUnit {
            files: [
                f(RegClass::Gp),
                f(RegClass::Fp),
                f(RegClass::Pred),
                f(RegClass::Cond),
            ],
            stall_counts: [0; 4],
        }
    }

    /// Whether dests (given as registers) can all be renamed right now.
    /// Counts a stall against the first exhausted class if not.
    pub fn can_rename(&mut self, dests: &[Reg]) -> bool {
        match self.blocked_class(dests) {
            Some(c) => {
                self.stall_counts[c.index()] += 1;
                false
            }
            None => true,
        }
    }

    /// Read-only probe behind [`RenameUnit::can_rename`]: the first
    /// register class (in index order) whose free list cannot cover
    /// `dests`, without counting a stall. The pipeline's idle-cycle
    /// fast-forward uses this to test rename-blockedness and then bulk
    /// advances `stall_counts` itself.
    pub fn blocked_class(&self, dests: &[Reg]) -> Option<RegClass> {
        // Count needed per class (an instruction may have two dests of
        // different classes, e.g. `adds` writing GP + NZCV).
        let mut need = [0u32; 4];
        for d in dests {
            need[d.class.index()] += 1;
        }
        for (i, &n) in need.iter().enumerate() {
            if (self.files[i].free.len() as u32) < n {
                return Some(RegClass::ALL[i]);
            }
        }
        None
    }

    /// Rename one destination: allocate a physical register, remember the
    /// previous mapping, and mark the new register not-ready.
    pub fn rename_dest(&mut self, d: Reg) -> RenamedDest {
        let file = &mut self.files[d.class.index()];
        let phys = file.free.pop().expect("can_rename checked");
        let prev = file.map[d.index as usize];
        file.map[d.index as usize] = phys;
        file.ready[phys as usize] = false;
        debug_assert!(file.waiters[phys as usize].is_empty());
        RenamedDest {
            class: d.class,
            phys,
            prev,
        }
    }

    /// Resolve a source operand: returns the physical register and whether
    /// its value is ready. If not ready, registers `seq` as a waiter.
    pub fn resolve_src(&mut self, s: Reg, seq: Seq) -> (u32, bool) {
        let file = &mut self.files[s.class.index()];
        let phys = file.map[s.index as usize];
        let ready = file.ready[phys as usize];
        if !ready {
            file.waiters[phys as usize].push(seq);
        }
        (phys, ready)
    }

    /// Producer completed: mark ready and drain the waiter list.
    pub fn complete(&mut self, class: RegClass, phys: u32, woken: &mut Vec<Seq>) {
        let file = &mut self.files[class.index()];
        file.ready[phys as usize] = true;
        woken.append(&mut file.waiters[phys as usize]);
    }

    /// Commit-time free of the previous mapping.
    pub fn free_prev(&mut self, d: RenamedDest) {
        let file = &mut self.files[d.class.index()];
        debug_assert!(!file.free.contains(&d.prev), "double free of phys reg");
        file.waiters[d.prev as usize].clear();
        file.free.push(d.prev);
    }

    /// Free physical registers in a class (diagnostics / invariants).
    pub fn free_count(&self, class: RegClass) -> usize {
        self.files[class.index()].free.len()
    }

    /// Invariant check: every physical register is exactly one of
    /// {mapped, free, in-flight-dest}. `in_flight` is the number of
    /// renamed-but-not-committed destinations in the class.
    pub fn check_conservation(&self, class: RegClass, in_flight: usize) -> bool {
        let f = &self.files[class.index()];
        f.map.len() + f.free.len() + in_flight == f.ready.len()
    }

    /// Invariant check: a free physical register must carry a completed
    /// value (its last producer committed) and have no waiters, and no
    /// free register may still be architecturally mapped.
    pub fn check_free_ready(&self, class: RegClass) -> bool {
        let f = &self.files[class.index()];
        f.free.iter().all(|&p| {
            f.ready[p as usize] && f.waiters[p as usize].is_empty() && !f.map.contains(&p)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_isa::reg::Reg;

    fn unit() -> RenameUnit {
        RenameUnit::new([40, 40, 24, 8])
    }

    #[test]
    fn fresh_unit_sources_are_ready() {
        let mut u = unit();
        let (phys, ready) = u.resolve_src(Reg::gp(3), 0);
        assert_eq!(phys, 3);
        assert!(ready);
    }

    #[test]
    fn rename_creates_dependency() {
        let mut u = unit();
        let d = u.rename_dest(Reg::gp(3));
        assert_eq!(d.prev, 3);
        let (phys, ready) = u.resolve_src(Reg::gp(3), 7);
        assert_eq!(phys, d.phys);
        assert!(!ready);
        let mut woken = Vec::new();
        u.complete(RegClass::Gp, d.phys, &mut woken);
        assert_eq!(woken, vec![7]);
        let (_, ready2) = u.resolve_src(Reg::gp(3), 8);
        assert!(ready2);
    }

    #[test]
    fn free_list_exhaustion_stalls() {
        let mut u = unit();
        // 8 free GP regs (40 - 32). Allocate them all.
        let mut renames = Vec::new();
        for _ in 0..8 {
            assert!(u.can_rename(&[Reg::gp(0)]));
            renames.push(u.rename_dest(Reg::gp(0)));
        }
        assert!(!u.can_rename(&[Reg::gp(0)]));
        assert_eq!(u.stall_counts[RegClass::Gp.index()], 1);
        // Committing the oldest rename frees its previous mapping.
        u.free_prev(renames.remove(0));
        assert!(u.can_rename(&[Reg::gp(0)]));
    }

    #[test]
    fn blocked_class_probe_is_read_only() {
        let mut u = unit();
        assert_eq!(u.blocked_class(&[Reg::gp(0)]), None);
        for _ in 0..8 {
            u.rename_dest(Reg::gp(0));
        }
        // The probe reports the exhausted class without counting a stall.
        assert_eq!(u.blocked_class(&[Reg::gp(0)]), Some(RegClass::Gp));
        assert_eq!(u.stall_counts, [0; 4]);
        // can_rename agrees and does count.
        assert!(!u.can_rename(&[Reg::gp(0)]));
        assert_eq!(u.stall_counts[RegClass::Gp.index()], 1);
    }

    #[test]
    fn multi_class_dest_requirement() {
        let mut u = RenameUnit::new([34, 40, 24, 2]);
        // Cond has 2 phys for 1 arch: one free.
        assert!(u.can_rename(&[Reg::gp(0), Reg::nzcv()]));
        let _g = u.rename_dest(Reg::gp(0));
        let _c = u.rename_dest(Reg::nzcv());
        // Cond free list now empty.
        assert!(!u.can_rename(&[Reg::nzcv()]));
    }

    #[test]
    fn conservation_invariant() {
        let mut u = unit();
        let mut in_flight = Vec::new();
        for i in 0..5 {
            in_flight.push(u.rename_dest(Reg::gp(i)));
        }
        assert!(u.check_conservation(RegClass::Gp, in_flight.len()));
        for d in in_flight.drain(..) {
            u.free_prev(d);
        }
        assert!(u.check_conservation(RegClass::Gp, 0));
    }

    #[test]
    fn free_list_stays_clean_through_rename_cycle() {
        let mut u = unit();
        for c in RegClass::ALL {
            assert!(u.check_free_ready(c));
        }
        let d1 = u.rename_dest(Reg::gp(0));
        let d2 = u.rename_dest(Reg::gp(0));
        let mut woken = Vec::new();
        u.complete(RegClass::Gp, d1.phys, &mut woken);
        u.complete(RegClass::Gp, d2.phys, &mut woken);
        u.free_prev(d1);
        u.free_prev(d2);
        assert!(u.check_free_ready(RegClass::Gp));
        assert!(u.check_conservation(RegClass::Gp, 0));
    }

    #[test]
    fn waw_rename_chain_frees_correctly() {
        let mut u = unit();
        let d1 = u.rename_dest(Reg::fp(0));
        let d2 = u.rename_dest(Reg::fp(0));
        assert_eq!(d2.prev, d1.phys);
        let before = u.free_count(RegClass::Fp);
        u.free_prev(d1); // frees architectural phys 0
        u.free_prev(d2); // frees d1's phys
        assert_eq!(u.free_count(RegClass::Fp), before + 2);
    }
}
