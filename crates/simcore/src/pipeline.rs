//! The out-of-order pipeline model.
//!
//! A cycle-driven model of a modern superscalar out-of-order core in the
//! style of SimEng: fetch (fetch-block windows plus a loop buffer), decode/
//! rename (four physical register files with free lists), dispatch into a
//! unified 60-entry reservation station at 4 instructions/cycle, issue to
//! the paper's fixed port layout (3 load/store, 2 vector, 1 predicate,
//! 3 scalar), a load/store queue with store-to-load forwarding and
//! in-order store drain at commit, and in-order commit from the reorder
//! buffer.
//!
//! Branches are resolved at fetch (the instruction stream is the retired
//! path, i.e. perfect branch prediction); the frontend is instead
//! throttled by the fetch-block size, the loop buffer, and the frontend
//! width — the structures the paper varies. This matches the paper's
//! focus: its design space contains no branch-predictor parameters.

use crate::counters::{Counters, CycleBucket, Structure};
use crate::events::EventQueue;
use crate::params::{
    CoreParams, DISPATCH_RATE, FETCH_QUEUE_CAP, MIN_FORWARD_LATENCY, RENAME_BUFFER_CAP, RS_SIZE,
};
use crate::regfile::{RenameUnit, RenamedDest, Seq};
use crate::stats::SimStats;
use armdse_isa::instr::{DynInstr, MemPattern, MemRef};
use armdse_isa::op::{OpClass, PortClass};
use armdse_isa::reg::RegClass;
use armdse_isa::{CursorPos, Program, TraceCursor, INSTR_BYTES};
use armdse_memsim::{split_lines, MemoryModel};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide default for the idle-cycle fast-forward (see
/// [`set_fast_forward_default`]). On unless explicitly disabled.
static FAST_FORWARD: AtomicBool = AtomicBool::new(true);

/// Whether `ARMDSE_NO_FAST_FORWARD` was set when first consulted
/// (cached: the engine may build thousands of pipelines per second).
fn fast_forward_env_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| std::env::var_os("ARMDSE_NO_FAST_FORWARD").is_some())
}

/// Set the process-wide default for the pipeline's idle-cycle
/// fast-forward. New pipelines sample the default at construction;
/// in-flight pipelines are unaffected. The optimization is
/// timing-exact — identical `SimStats`, metrics, and CSV bytes either
/// way (pinned by `tests/fast_forward_equivalence.rs`) — so the switch
/// exists for A/B verification and benchmarking, not correctness.
pub fn set_fast_forward_default(enabled: bool) {
    FAST_FORWARD.store(enabled, Ordering::Relaxed);
}

/// The current process-wide fast-forward default: on unless switched
/// off via [`set_fast_forward_default`] or the `ARMDSE_NO_FAST_FORWARD`
/// environment variable.
pub fn fast_forward_default() -> bool {
    FAST_FORWARD.load(Ordering::Relaxed) && !fast_forward_env_disabled()
}

/// Lifecycle stage of an in-flight micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Renamed, waiting in the rename buffer for dispatch.
    Renamed,
    /// In the reservation station (ready when `srcs_remaining == 0`).
    InRs,
    /// Issued to a port, executing.
    Issued,
    /// Load: address generated, waiting to issue memory requests.
    PendingMem,
    /// Load: all line requests issued, waiting for data.
    MemWait,
    /// Load: data arrived, waiting for an LSQ completion slot.
    WbWait,
    /// Finished; eligible for commit.
    Done,
}

/// An in-flight micro-op.
#[derive(Debug, Clone)]
struct Uop {
    op: OpClass,
    stage: Stage,
    dests: [RenamedDest; 2],
    ndests: u8,
    srcs_remaining: u8,
    mem: Option<MemRef>,
    /// Memory request-issue state: next request address, requests left,
    /// byte step between requests (line width for contiguous accesses,
    /// element stride for gathers), and bandwidth debit per request.
    next_addr: u64,
    reqs_left: u16,
    req_step: i64,
    bytes_share: u32,
    mem_complete: u64,
}

/// A store-queue entry (lives from dispatch until drained to memory).
#[derive(Debug, Clone, Copy)]
struct SqEntry {
    seq: Seq,
    /// Base address and the span of bytes the store may touch.
    span_lo: u64,
    span_hi: u64,
    /// Whether the store is a scatter (no forwarding from scatters).
    scattered: bool,
    /// Store executed: address and data known (forwarding possible).
    data_ready: bool,
    /// Store committed: eligible to drain.
    committed: bool,
    /// Drain state (mirrors the load-side request plan).
    next_addr: u64,
    reqs_left: u16,
    req_step: i64,
    bytes_share: u32,
}

impl SqEntry {
    fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.span_lo < hi && lo < self.span_hi
    }

    fn covers(&self, lo: u64, hi: u64) -> bool {
        !self.scattered && self.span_lo <= lo && self.span_hi >= hi
    }
}

/// Request-issue plan for a memory access: (first request address,
/// request count, byte step between requests, bandwidth debit/request).
fn request_plan(m: &MemRef, line_bytes: u32) -> (u64, u16, i64, u32) {
    match m.pattern {
        MemPattern::Contiguous => {
            let lines = split_lines(m.addr, m.bytes, line_bytes).count() as u16;
            (
                m.addr & !(u64::from(line_bytes) - 1),
                lines,
                i64::from(line_bytes),
                m.bytes.div_ceil(u32::from(lines)),
            )
        }
        MemPattern::Strided {
            elem_bytes,
            stride,
            count,
        } => {
            // One request per element: the defining gather/scatter cost.
            (m.addr, count as u16, stride, elem_bytes)
        }
    }
}

/// Byte span `[lo, hi)` an access may touch.
fn span_of(m: &MemRef) -> (u64, u64) {
    match m.pattern {
        MemPattern::Contiguous => (m.addr, m.addr + u64::from(m.bytes)),
        MemPattern::Strided {
            elem_bytes,
            stride,
            count,
        } => {
            let last = m.addr as i64 + stride * (i64::from(count) - 1);
            let lo = (m.addr as i64).min(last).max(0) as u64;
            let hi = (m.addr as i64).max(last) as u64 + u64::from(elem_bytes);
            (lo, hi)
        }
    }
}

/// Commit-order record of retired instructions, kept only when tracing
/// is enabled (see [`Pipeline::run_traced`]). `pending` mirrors the
/// in-flight window (pushed at rename, popped at commit), so `committed`
/// is exactly the architectural retirement stream the oracle replays.
#[derive(Debug, Default)]
struct CommitLog {
    pending: VecDeque<DynInstr>,
    committed: Vec<DynInstr>,
}

/// A resumable snapshot of a paused [`Pipeline`]: every field of the
/// machine except the program borrow (captured as a [`CursorPos`]), the
/// commit log (tracing runs are never snapshotted), and the per-cycle
/// scratch buffers (provably empty between cycles). Restoring with
/// [`Pipeline::restore`] over the identical program yields a machine
/// whose subsequent behaviour is bit-identical to the snapshotted one —
/// the property the interval-memoizing backend's legality rests on (see
/// DESIGN.md §13).
pub struct PipelineSnapshot<M: MemoryModel> {
    params: CoreParams,
    mem: M,
    cursor_pos: CursorPos,
    pending_fetch: Option<DynInstr>,
    now: u64,
    fetch_q: VecDeque<DynInstr>,
    loop_mode: Option<(u64, u64)>,
    loop_candidate: Option<u64>,
    window: VecDeque<Uop>,
    window_base: Seq,
    next_seq: Seq,
    rename: RenameUnit,
    rename_q: VecDeque<Seq>,
    rs_count: u32,
    ready_q: [VecDeque<Seq>; 4],
    rs_ready: u32,
    rob_count: u32,
    port_busy: [Vec<u64>; 4],
    done: EventQueue,
    lq_count: u32,
    sq: VecDeque<SqEntry>,
    sq_span: (u64, u64),
    pending_loads: VecDeque<Seq>,
    completed_loads: VecDeque<Seq>,
    counters: Option<Box<Counters>>,
    mem_budget_exhausted: bool,
    rename_blocked: bool,
    stats: SimStats,
}

impl<M: MemoryModel + Clone> Clone for PipelineSnapshot<M> {
    fn clone(&self) -> Self {
        PipelineSnapshot {
            params: self.params,
            mem: self.mem.clone(),
            cursor_pos: self.cursor_pos,
            pending_fetch: self.pending_fetch,
            now: self.now,
            fetch_q: self.fetch_q.clone(),
            loop_mode: self.loop_mode,
            loop_candidate: self.loop_candidate,
            window: self.window.clone(),
            window_base: self.window_base,
            next_seq: self.next_seq,
            rename: self.rename.clone(),
            rename_q: self.rename_q.clone(),
            rs_count: self.rs_count,
            ready_q: self.ready_q.clone(),
            rs_ready: self.rs_ready,
            rob_count: self.rob_count,
            port_busy: self.port_busy.clone(),
            done: self.done.clone(),
            lq_count: self.lq_count,
            sq: self.sq.clone(),
            sq_span: self.sq_span,
            pending_loads: self.pending_loads.clone(),
            completed_loads: self.completed_loads.clone(),
            counters: self.counters.clone(),
            mem_budget_exhausted: self.mem_budget_exhausted,
            rename_blocked: self.rename_blocked,
            stats: self.stats.clone(),
        }
    }
}

/// The pipeline state machine.
pub struct Pipeline<'p, M: MemoryModel> {
    params: CoreParams,
    mem: M,
    cursor: TraceCursor<'p>,
    /// One-instruction lookahead between the cursor and fetch.
    pending_fetch: Option<DynInstr>,
    now: u64,

    // Frontend.
    fetch_q: VecDeque<DynInstr>,
    loop_mode: Option<(u64, u64)>,
    loop_candidate: Option<u64>,

    // In-flight window: uops from `window_base` (oldest, next to commit).
    window: VecDeque<Uop>,
    window_base: Seq,
    next_seq: Seq,
    rename: RenameUnit,
    rename_q: VecDeque<Seq>,

    // Backend.
    /// Reservation-station occupancy (uops in [`Stage::InRs`]). The RS
    /// itself is represented by the per-class ready queues plus the
    /// not-yet-ready uops' window entries — no central entry list is
    /// scanned on the issue path.
    rs_count: u32,
    /// Per port class: RS entries whose sources are all resolved, in age
    /// (sequence) order. Issue pops from the front while ports are free;
    /// a ready uop that misses a port simply stays queued, so a cycle's
    /// issue work is O(issued), never O(RS). Port classes contend only
    /// within themselves, so per-class age order issues the same uops to
    /// the same ports as the old oldest-first scan of the whole RS.
    ready_q: [VecDeque<Seq>; 4],
    /// Total ready RS entries (sum of `ready_q` lengths), kept for the
    /// O(1) issue early-out and the fast-forward legality check.
    rs_ready: u32,
    rob_count: u32,
    port_busy: [Vec<u64>; 4],
    /// Single completion-timer queue for both event kinds: execution
    /// completions (uop stage [`Stage::Issued`]) and memory completions
    /// (stage [`Stage::MemWait`]). The kind is recovered from the uop's
    /// stage at drain time; sharing one queue halves the per-cycle
    /// drain/peek overhead. Merging is timing-exact: the two kinds feed
    /// different queues (`pending_loads` vs `completed_loads`), each of
    /// which still receives its events in ascending `(t, seq)` order,
    /// and wakeup order within a cycle is commutative (ready-queue
    /// inserts are age-sorted).
    done: EventQueue,

    // LSQ.
    lq_count: u32,
    sq: VecDeque<SqEntry>,
    /// Conservative bounding box over the byte spans of every store
    /// currently in the SQ: grows on dispatch, resets only when the SQ
    /// drains empty (pops leave it stale-but-conservative). Loads whose
    /// span misses the box provably overlap no store and skip the
    /// store-hazard scan — the common case when a kernel's loads and
    /// stores touch different arrays.
    sq_span: (u64, u64),
    pending_loads: VecDeque<Seq>,
    completed_loads: VecDeque<Seq>,

    /// Commit-order trace, enabled only via [`Pipeline::run_traced`].
    log: Option<CommitLog>,

    /// Cycle-accounting counters, enabled only via
    /// [`Pipeline::run_with_counters`]. `None` is the zero-cost default:
    /// the attribution pass is skipped entirely. Collection is read-only
    /// with respect to architectural and timing state.
    counters: Option<Box<Counters>>,
    /// Attribution breadcrumb: a load was deferred this cycle because a
    /// per-cycle memory request/bandwidth budget ran out (set by
    /// `lsq_memory`, read at the commit edge of the same cycle).
    mem_budget_exhausted: bool,
    /// Attribution breadcrumb: rename was blocked on an empty free list
    /// during the *previous* cycle's rename stage (rename runs after the
    /// attribution point, so the flag is consumed one cycle later).
    rename_blocked: bool,

    /// Skip provably idle cycles in bulk (see `try_fast_forward`).
    /// Sampled from [`fast_forward_default`] at construction.
    fast_forward: bool,

    // Per-cycle scratch buffers, hoisted out of the hot loop so the
    // writeback and LSQ stages allocate nothing in steady state. Both
    // are empty between cycles.
    scratch_woken: Vec<Seq>,
    scratch_pending: VecDeque<Seq>,
    scratch_due: Vec<(u64, Seq)>,

    stats: SimStats,
}

impl<'p, M: MemoryModel> Pipeline<'p, M> {
    /// Build a pipeline over `program` with the given core configuration
    /// and memory backend.
    pub fn new(program: &'p Program, params: CoreParams, mem: M) -> Pipeline<'p, M> {
        debug_assert!(params.validate().is_ok(), "invalid CoreParams");
        let phys = [
            params.gp_regs,
            params.fp_regs,
            params.pred_regs,
            params.cond_regs,
        ];
        let mut cursor = TraceCursor::new(program);
        let pending_fetch = cursor.next_instr();
        Pipeline {
            rename: RenameUnit::new(phys),
            port_busy: [
                vec![0; PortClass::LoadStore.default_count()],
                vec![0; PortClass::Vector.default_count()],
                vec![0; PortClass::Predicate.default_count()],
                vec![0; PortClass::Scalar.default_count()],
            ],
            params,
            mem,
            cursor,
            pending_fetch,
            now: 0,
            fetch_q: VecDeque::with_capacity(FETCH_QUEUE_CAP),
            loop_mode: None,
            loop_candidate: None,
            window: VecDeque::with_capacity(params.rob_size as usize + RENAME_BUFFER_CAP),
            window_base: 0,
            next_seq: 0,
            rename_q: VecDeque::with_capacity(RENAME_BUFFER_CAP),
            rs_count: 0,
            ready_q: std::array::from_fn(|_| VecDeque::with_capacity(RS_SIZE)),
            rs_ready: 0,
            rob_count: 0,
            done: EventQueue::new(),
            lq_count: 0,
            sq: VecDeque::with_capacity(params.store_queue as usize),
            sq_span: (u64::MAX, 0),
            pending_loads: VecDeque::new(),
            completed_loads: VecDeque::new(),
            log: None,
            counters: None,
            mem_budget_exhausted: false,
            rename_blocked: false,
            fast_forward: fast_forward_default(),
            scratch_woken: Vec::new(),
            scratch_pending: VecDeque::new(),
            scratch_due: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// Override the idle-cycle fast-forward for this pipeline (the
    /// constructor samples the process-wide default; see
    /// [`set_fast_forward_default`]).
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    #[inline]
    fn uop(&self, seq: Seq) -> &Uop {
        &self.window[(seq - self.window_base) as usize]
    }

    #[inline]
    fn uop_mut(&mut self, seq: Seq) -> &mut Uop {
        &mut self.window[(seq - self.window_base) as usize]
    }

    /// Run to completion; returns the statistics. `max_cycles` guards
    /// against modelling deadlocks — if it fires, `hit_cycle_limit` is set
    /// and the run must be discarded (failed validation).
    pub fn run(mut self, max_cycles: u64) -> SimStats {
        self.drive(max_cycles);
        self.stats
    }

    /// Like [`run`](Self::run), but also records every instruction in
    /// commit (i.e. program) order and returns the retirement stream
    /// alongside the statistics. The oracle replays this stream with
    /// value semantics to check the core's architectural behaviour.
    pub fn run_traced(mut self, max_cycles: u64) -> (SimStats, Vec<DynInstr>) {
        self.log = Some(CommitLog::default());
        self.drive(max_cycles);
        let log = self.log.take().expect("tracing enabled above");
        (self.stats, log.committed)
    }

    /// Like [`run`](Self::run), but with cycle accounting enabled: every
    /// cycle is attributed to exactly one [`CycleBucket`] and structure
    /// occupancies are sampled at the commit edge. Timing and statistics
    /// are identical to an uncounted run (the collection path never
    /// mutates architectural state); the returned [`Counters`] satisfy
    /// `counters.conserves()`.
    pub fn run_with_counters(mut self, max_cycles: u64) -> (SimStats, Box<Counters>) {
        self.counters = Some(Box::new(Counters::new(&self.params)));
        self.drive(max_cycles);
        let mut c = self.counters.take().expect("counters enabled above");
        c.cycles = self.stats.cycles;
        c.loop_buffer_cycles = self.stats.stalls.loop_buffer_cycles;
        debug_assert!(c.conserves(), "cycle attribution leaked a cycle");
        (self.stats, c)
    }

    fn drive(&mut self, max_cycles: u64) {
        while !self.finished() {
            if self.now >= max_cycles {
                self.stats.hit_cycle_limit = true;
                break;
            }
            if self.fast_forward && self.try_fast_forward(max_cycles) {
                continue;
            }
            self.step();
        }
        self.stats.cycles = self.now;
        self.stats.mem = *self.mem.stats();
    }

    /// Drive until at least `retire_target` instructions have retired
    /// (or the run finishes / hits `max_cycles`), then pause.
    ///
    /// The loop body is identical to the one-shot `drive` path — the only
    /// difference is the extra `retired < retire_target` condition — so
    /// a run executed as a sequence of `drive_until_retired` segments
    /// performs *exactly* the same cycle steps as one uninterrupted
    /// `drive` call: pausing happens only between cycles, never inside
    /// one, and the epilogue (`cycles = now`, memory stats copy) is
    /// idempotent. The pause boundary may overshoot the target by up to
    /// `commit_width − 1` instructions (a commit batch is atomic), which
    /// is deterministic in the pre-cycle state.
    ///
    /// The fast-forward skip is legal here unchanged: it only fires when
    /// commit is provably idle, so it never jumps past a retirement.
    pub fn drive_until_retired(&mut self, max_cycles: u64, retire_target: u64) {
        while !self.finished() && self.stats.retired < retire_target {
            if self.now >= max_cycles {
                self.stats.hit_cycle_limit = true;
                break;
            }
            if self.fast_forward && self.try_fast_forward(max_cycles) {
                continue;
            }
            self.step();
        }
        self.stats.cycles = self.now;
        self.stats.mem = *self.mem.stats();
    }

    /// Drive until the global clock reaches `cycle_target` (or the run
    /// finishes / hits `max_cycles`), then pause — the multicore slice
    /// loop's primitive: every core is advanced to the same global
    /// cycle boundary before any core proceeds past it.
    ///
    /// The loop body is identical to the one-shot `drive` path (see
    /// [`drive_until_retired`](Self::drive_until_retired) for the
    /// argument); the only differences are the `now < cycle_target`
    /// condition and that the fast-forward jump is clamped to the slice
    /// boundary. The clamp is timing-exact: the bulk advance is linear
    /// in the number of skipped cycles, so two clamped jumps accumulate
    /// exactly what one unclamped jump would. A run executed as a
    /// sequence of `drive_until_cycle` segments therefore performs the
    /// same cycle steps as one uninterrupted `drive` call.
    pub fn drive_until_cycle(&mut self, max_cycles: u64, cycle_target: u64) {
        let bound = max_cycles.min(cycle_target);
        while !self.finished() && self.now < cycle_target {
            if self.now >= max_cycles {
                self.stats.hit_cycle_limit = true;
                break;
            }
            if self.fast_forward && self.try_fast_forward(bound) {
                continue;
            }
            self.step();
        }
        self.stats.cycles = self.now;
        self.stats.mem = *self.mem.stats();
    }

    /// The pipeline's current global cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Enable commit-order tracing on an incrementally driven pipeline
    /// (the consuming entry point is [`run_traced`](Self::run_traced)).
    /// Must be called before the first cycle so the trace is complete.
    pub fn enable_trace(&mut self) {
        debug_assert_eq!(self.now, 0, "tracing must be enabled before cycle 0");
        self.log = Some(CommitLog::default());
    }

    /// Take the commit-order retirement stream of an incrementally
    /// driven pipeline (`None` when tracing was never enabled).
    pub fn take_trace(&mut self) -> Option<Vec<DynInstr>> {
        self.log.take().map(|l| l.committed)
    }

    /// Whether the run has completed (all instructions fetched, retired,
    /// and every store drained to memory).
    pub fn is_finished(&self) -> bool {
        self.finished()
    }

    /// The statistics accumulated so far. Between
    /// [`drive_until_retired`](Self::drive_until_retired) calls the
    /// epilogue has run, so `cycles` and `mem` are current.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Enable cycle-accounting counters on an incrementally driven
    /// pipeline (the consuming entry point is
    /// [`run_with_counters`](Self::run_with_counters)). Must be called
    /// before the first cycle; enabling mid-run would leave earlier
    /// cycles unattributed and break conservation.
    pub fn enable_counters(&mut self) {
        debug_assert_eq!(self.now, 0, "counters must be enabled before cycle 0");
        self.counters = Some(Box::new(Counters::new(&self.params)));
    }

    /// Borrow the live cycle-accounting counters of an incrementally
    /// driven pipeline (`None` when counters were never enabled). Unlike
    /// [`take_counters_finalized`](Self::take_counters_finalized) the
    /// `cycles`/`loop_buffer_cycles` fields are *not* fixed up — callers
    /// sampling mid-run (the sampled fidelity tier) work from the raw
    /// exclusive buckets and occupancy histograms.
    pub fn counters(&self) -> Option<&Counters> {
        self.counters.as_deref()
    }

    /// Take the finalized counters from an incrementally driven pipeline:
    /// the same `cycles`/`loop_buffer_cycles` fixup as
    /// [`run_with_counters`](Self::run_with_counters). `None` when
    /// counters were never enabled. Conservation holds only once the run
    /// is finished (every elapsed cycle has been attributed).
    pub fn take_counters_finalized(&mut self) -> Option<Box<Counters>> {
        let mut c = self.counters.take()?;
        c.cycles = self.stats.cycles;
        c.loop_buffer_cycles = self.stats.stalls.loop_buffer_cycles;
        debug_assert!(
            !self.finished() || c.conserves(),
            "cycle attribution leaked a cycle"
        );
        Some(c)
    }

    /// Capture the machine for a later [`restore`](Self::restore).
    /// Only valid between cycles (which is the only time a caller can
    /// observe the pipeline) and never on a tracing run — the commit
    /// log holds borrowed-program history that snapshots don't carry.
    pub fn snapshot(&self) -> PipelineSnapshot<M>
    where
        M: Clone,
    {
        debug_assert!(self.log.is_none(), "tracing runs cannot be snapshotted");
        debug_assert!(
            self.scratch_woken.is_empty()
                && self.scratch_pending.is_empty()
                && self.scratch_due.is_empty(),
            "scratch buffers must be empty between cycles"
        );
        PipelineSnapshot {
            params: self.params,
            mem: self.mem.clone(),
            cursor_pos: self.cursor.position(),
            pending_fetch: self.pending_fetch,
            now: self.now,
            fetch_q: self.fetch_q.clone(),
            loop_mode: self.loop_mode,
            loop_candidate: self.loop_candidate,
            window: self.window.clone(),
            window_base: self.window_base,
            next_seq: self.next_seq,
            rename: self.rename.clone(),
            rename_q: self.rename_q.clone(),
            rs_count: self.rs_count,
            ready_q: self.ready_q.clone(),
            rs_ready: self.rs_ready,
            rob_count: self.rob_count,
            port_busy: self.port_busy.clone(),
            done: self.done.clone(),
            lq_count: self.lq_count,
            sq: self.sq.clone(),
            sq_span: self.sq_span,
            pending_loads: self.pending_loads.clone(),
            completed_loads: self.completed_loads.clone(),
            counters: self.counters.clone(),
            mem_budget_exhausted: self.mem_budget_exhausted,
            rename_blocked: self.rename_blocked,
            stats: self.stats.clone(),
        }
    }

    /// Rebuild a machine from a snapshot taken over the identical
    /// `program`. The fast-forward switch is re-sampled from
    /// [`fast_forward_default`] (like [`new`](Self::new)) — legal
    /// because the skip is timing-exact in either position.
    pub fn restore(program: &'p Program, snap: &PipelineSnapshot<M>) -> Pipeline<'p, M>
    where
        M: Clone,
    {
        Pipeline {
            params: snap.params,
            mem: snap.mem.clone(),
            cursor: TraceCursor::at(program, snap.cursor_pos),
            pending_fetch: snap.pending_fetch,
            now: snap.now,
            fetch_q: snap.fetch_q.clone(),
            loop_mode: snap.loop_mode,
            loop_candidate: snap.loop_candidate,
            window: snap.window.clone(),
            window_base: snap.window_base,
            next_seq: snap.next_seq,
            rename: snap.rename.clone(),
            rename_q: snap.rename_q.clone(),
            rs_count: snap.rs_count,
            ready_q: snap.ready_q.clone(),
            rs_ready: snap.rs_ready,
            rob_count: snap.rob_count,
            port_busy: snap.port_busy.clone(),
            done: snap.done.clone(),
            lq_count: snap.lq_count,
            sq: snap.sq.clone(),
            sq_span: snap.sq_span,
            pending_loads: snap.pending_loads.clone(),
            completed_loads: snap.completed_loads.clone(),
            log: None,
            counters: snap.counters.clone(),
            mem_budget_exhausted: snap.mem_budget_exhausted,
            rename_blocked: snap.rename_blocked,
            fast_forward: fast_forward_default(),
            scratch_woken: Vec::new(),
            scratch_pending: VecDeque::new(),
            scratch_due: Vec::new(),
            stats: snap.stats.clone(),
        }
    }

    /// FNV-1a checksum of the machine's architectural-and-timing state,
    /// the chain link of the interval-memoizing backend's keys. Two
    /// runs of the same program/params chain through identical hashes;
    /// the hash folds in the clock, progress counters, cursor position,
    /// every queue occupancy, and the memory-hierarchy statistics, so
    /// unrelated states virtually never collide — and the memoization
    /// key additionally pins the program fingerprint, parameter slice,
    /// and interval index, so a collision would further have to happen
    /// inside one deterministic chain (see DESIGN.md §13).
    pub fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.u64(self.now);
        h.u64(self.stats.cycles);
        h.u64(self.stats.retired);
        h.u64(self.cursor.produced());
        h.u64(self.window_base);
        h.u64(self.next_seq);
        h.u64(u64::from(self.rob_count));
        h.u64(u64::from(self.rs_count));
        h.u64(u64::from(self.rs_ready));
        h.u64(u64::from(self.lq_count));
        h.u64(self.window.len() as u64);
        h.u64(self.fetch_q.len() as u64);
        h.u64(self.rename_q.len() as u64);
        h.u64(self.sq.len() as u64);
        h.u64(self.pending_loads.len() as u64);
        h.u64(self.completed_loads.len() as u64);
        h.u64(self.sq_span.0);
        h.u64(self.sq_span.1);
        h.u64(self.loop_mode.map_or(u64::MAX, |(lo, _)| lo));
        h.u64(self.loop_mode.map_or(u64::MAX, |(_, hi)| hi));
        h.u64(self.loop_candidate.unwrap_or(u64::MAX));
        h.u64(self.pending_fetch.as_ref().map_or(u64::MAX, |d| d.pc));
        let m = self.mem.stats();
        h.u64(m.requests);
        h.u64(m.l1_hits);
        h.u64(m.l1_misses);
        h.u64(m.l2_hits);
        h.u64(m.l2_misses);
        h.u64(m.writebacks);
        h.finish()
    }

    fn finished(&self) -> bool {
        self.pending_fetch.is_none()
            && self.fetch_q.is_empty()
            && self.window.is_empty()
            && self.sq.is_empty()
    }

    /// Advance one core cycle.
    pub fn step(&mut self) {
        self.writeback();
        self.lsq_memory();
        let (retired, first_op) = self.commit();
        if self.counters.is_some() {
            self.attribute_cycle(retired, first_op);
        }
        self.issue();
        self.dispatch();
        self.rename_stage();
        self.fetch();
        self.now += 1;
        #[cfg(feature = "check-invariants")]
        self.check_invariants();
    }

    // --------------------------------------------------- fast-forward

    /// Skip provably idle cycles in bulk. Returns `true` if at least
    /// one cycle was skipped (the caller then re-enters the drive loop
    /// at the next timer event instead of stepping).
    ///
    /// A cycle is *provably idle* when every stage of [`step`](Self::step)
    /// can be shown, from the pre-cycle state alone, to make no state
    /// change other than per-cycle stall accounting:
    ///
    /// * **writeback** — no completion (`done`) event is due and the
    ///   LSQ completion queue is empty;
    /// * **LSQ memory** — the SQ front is not drainable (not committed
    ///   with data ready) and no load is pending request issue;
    /// * **commit** — the window is non-empty and its front is not Done;
    /// * **issue** — `rs_ready == 0` (no RS entry has all sources);
    /// * **dispatch** — the rename buffer is empty or its front is
    ///   blocked by a full ROB/RS/LQ/SQ;
    /// * **rename** — the rename buffer is full, the fetch queue is
    ///   empty, or a free list cannot cover the next instruction;
    /// * **fetch** — nothing to fetch, or the fetch queue is full.
    ///
    /// Since none of these stages acts, every input to the conditions is
    /// unchanged on the next cycle: the predicates are *stable* until
    /// the next completion timer fires. The skip therefore
    /// jumps to `min(next timer, max_cycles)` and advances every
    /// per-cycle statistic — dispatch stall counters, fetch starvation,
    /// rename stalls, loop-buffer cycles, attribution buckets, and
    /// occupancy samples — in bulk by exactly the amount the skipped
    /// cycles would have accumulated one at a time. The resulting
    /// `SimStats` and `Counters` are bit-identical to a non-skipping
    /// run (pinned by `tests/fast_forward_equivalence.rs`).
    ///
    /// With no timer pending at all (a modelling deadlock), the skip
    /// runs straight to `max_cycles`, fast-pathing wedged runs to their
    /// `hit_cycle_limit` verdict.
    fn try_fast_forward(&mut self, max_cycles: u64) -> bool {
        // Commit / issue / LSQ-completion idleness.
        let Some(front) = self.window.front() else {
            return false;
        };
        if front.stage == Stage::Done
            || self.rs_ready != 0
            || !self.pending_loads.is_empty()
            || !self.completed_loads.is_empty()
        {
            return false;
        }
        // Writeback idleness: no due timer events.
        let next_done = self.done.next_time();
        if next_done.is_some_and(|t| t <= self.now) {
            return false;
        }
        // Store-drain idleness.
        if self.sq.front().is_some_and(|f| f.committed && f.data_ready) {
            return false;
        }
        // Dispatch idleness: nothing to dispatch, or the front uop is
        // structurally blocked. Record *which* stat the per-cycle break
        // would have charged (exactly one per blocked cycle).
        let dispatch_stall = match self.rename_q.front() {
            None => None,
            Some(&seq) => {
                let op = self.uop(seq).op;
                if self.rob_count >= self.params.rob_size {
                    Some(IdleDispatch::Rob)
                } else if self.rs_count as usize >= RS_SIZE {
                    Some(IdleDispatch::Rs)
                } else if op.is_load() && self.lq_count >= self.params.load_queue {
                    Some(IdleDispatch::Lq)
                } else if op.is_store() && self.sq.len() as u32 >= self.params.store_queue {
                    Some(IdleDispatch::Sq)
                } else {
                    return false; // would dispatch
                }
            }
        };
        // Rename idleness: buffer full, starved, or free-list blocked.
        let rename_idle = if self.rename_q.len() >= RENAME_BUFFER_CAP {
            IdleRename::BufferFull
        } else if let Some(di) = self.fetch_q.front() {
            match self.rename.blocked_class(di.dests.as_slice()) {
                Some(class) => IdleRename::FreeList(class),
                None => return false, // would rename
            }
        } else {
            IdleRename::Starved
        };
        // Fetch idleness.
        if self.pending_fetch.is_some() && self.fetch_q.len() < FETCH_QUEUE_CAP {
            return false;
        }

        let target = next_done.unwrap_or(u64::MAX).min(max_cycles);
        if target <= self.now {
            return false;
        }
        let n = target - self.now;

        // ---- Bulk-advance exactly what n idle step() calls would. ----

        match dispatch_stall {
            Some(IdleDispatch::Rob) => self.stats.stalls.rob_full += n,
            Some(IdleDispatch::Rs) => self.stats.stalls.rs_full += n,
            Some(IdleDispatch::Lq) => self.stats.stalls.lq_full += n,
            Some(IdleDispatch::Sq) => self.stats.stalls.sq_full += n,
            None => {}
        }
        // `stable_rename_blocked` is the value rename_stage leaves in
        // `rename_blocked` on each skipped cycle (consumed by the next
        // cycle's attribution).
        let stable_rename_blocked = match rename_idle {
            IdleRename::BufferFull => false,
            IdleRename::Starved => {
                // The window is non-empty, so the starvation condition
                // (`pending_fetch.is_some() || !window.is_empty()`) holds.
                self.stats.stalls.fetch_starved += n;
                false
            }
            IdleRename::FreeList(class) => {
                self.rename.stall_counts[class.index()] += n;
                let counts = self.rename.stall_counts;
                self.stats.stalls.rename_gp = counts[RegClass::Gp.index()];
                self.stats.stalls.rename_fp = counts[RegClass::Fp.index()];
                self.stats.stalls.rename_pred = counts[RegClass::Pred.index()];
                self.stats.stalls.rename_cond = counts[RegClass::Cond.index()];
                true
            }
        };
        if self.pending_fetch.is_some() && self.loop_mode.is_some() {
            self.stats.stalls.loop_buffer_cycles += n;
        }
        // Each skipped cycle's lsq_memory stage clears the budget flag
        // before the attribution point reads it.
        self.mem_budget_exhausted = false;

        if let Some(mut c) = self.counters.take() {
            // The first skipped cycle classifies under the
            // `rename_blocked` flag left by the last real cycle; the
            // attribution point then resets it and rename_stage re-arms
            // it to the stable value for cycles 2..n.
            c.record(self.classify_cycle(0, None));
            self.rename_blocked = stable_rename_blocked;
            if n > 1 {
                c.record_n(self.classify_cycle(0, None), n - 1);
            }
            c.observe_n(Structure::Rob, u64::from(self.rob_count), n);
            c.observe_n(Structure::Rs, u64::from(self.rs_count), n);
            c.observe_n(Structure::LoadQueue, u64::from(self.lq_count), n);
            c.observe_n(Structure::StoreQueue, self.sq.len() as u64, n);
            c.observe_n(Structure::FetchQueue, self.fetch_q.len() as u64, n);
            c.observe_n(Structure::RenameBuffer, self.rename_q.len() as u64, n);
            self.counters = Some(c);
        } else if stable_rename_blocked {
            // Without counters nothing resets the flag, so it is sticky
            // — set-only, exactly like the per-cycle path.
            self.rename_blocked = true;
        }

        self.now = target;
        #[cfg(feature = "check-invariants")]
        self.check_invariants();
        true
    }

    // ---------------------------------------------------------- writeback

    fn writeback(&mut self) {
        // Completion events, both kinds in one drain (the uop's stage
        // says which): execution-port completions are `Issued`, memory
        // completions are `MemWait`. The woken/due lists are hoisted
        // scratch buffers (empty between cycles) so steady-state cycles
        // allocate nothing.
        let mut woken = std::mem::take(&mut self.scratch_woken);
        debug_assert!(woken.is_empty());
        let mut due = std::mem::take(&mut self.scratch_due);
        self.done.take_due(self.now, &mut due);
        for &(_, seq) in &due {
            let u = self.uop(seq);
            if u.stage == Stage::MemWait {
                // Memory completion: feeds the LSQ completion stage.
                self.uop_mut(seq).stage = Stage::WbWait;
                self.completed_loads.push_back(seq);
                continue;
            }
            debug_assert_eq!(u.stage, Stage::Issued);
            let op = u.op;
            if op.is_load() {
                self.uop_mut(seq).stage = Stage::PendingMem;
                self.pending_loads.push_back(seq);
            } else if op.is_store() {
                // Store executed: data+address ready; completes in ROB now,
                // memory write happens post-commit. The SQ is in program
                // order, so the entry is found by binary search on seq.
                self.uop_mut(seq).stage = Stage::Done;
                if let Ok(i) = self.sq.binary_search_by(|e| e.seq.cmp(&seq)) {
                    self.sq[i].data_ready = true;
                }
            } else {
                self.complete_dests(seq, &mut woken);
                self.uop_mut(seq).stage = Stage::Done;
            }
        }
        due.clear();
        self.scratch_due = due;

        // LSQ completion width: loads writing back per cycle.
        for _ in 0..self.params.lsq_completion_width {
            let Some(seq) = self.completed_loads.pop_front() else {
                break;
            };
            self.complete_dests(seq, &mut woken);
            self.uop_mut(seq).stage = Stage::Done;
        }

        self.wake(&woken);
        woken.clear();
        self.scratch_woken = woken;
    }

    fn complete_dests(&mut self, seq: Seq, woken: &mut Vec<Seq>) {
        let (dests, n) = {
            let u = self.uop(seq);
            (u.dests, u.ndests as usize)
        };
        for d in &dests[..n] {
            self.rename.complete(d.class, d.phys, woken);
        }
    }

    fn wake(&mut self, woken: &[Seq]) {
        for &seq in woken {
            let u = self.uop_mut(seq);
            debug_assert!(u.srcs_remaining > 0);
            u.srcs_remaining -= 1;
            // A uop with outstanding sources is either still in the
            // rename buffer (counted ready at dispatch instead) or in
            // the RS, where resolving the last source makes it an issue
            // candidate.
            if u.srcs_remaining == 0 && u.stage == Stage::InRs {
                let class = u.op.port();
                self.push_ready(class, seq);
            }
        }
    }

    // --------------------------------------------------------- LSQ memory

    fn lsq_memory(&mut self) {
        self.mem_budget_exhausted = false;
        // Fast-out for memory-idle cycles: no load waiting to issue and
        // no committed store ready to drain. Nothing below can act.
        if self.pending_loads.is_empty()
            && !self.sq.front().is_some_and(|f| f.committed && f.data_ready)
        {
            return;
        }
        let line = u64::from(self.mem.line_bytes());
        let mut reqs = self.params.mem_requests_per_cycle;
        let mut store_reqs = self.params.stores_per_cycle;
        let mut load_reqs = self.params.loads_per_cycle;
        let mut store_bw = self.params.store_bandwidth;
        let mut load_bw = self.params.load_bandwidth;

        // Double-entry bookkeeping for the per-cycle budgets: count every
        // `mem.access` call independently of the budget decrements, then
        // check the totals against the configured limits at the end.
        #[cfg(feature = "check-invariants")]
        let (mut used_reqs, mut used_loads, mut used_stores) = (0u32, 0u32, 0u32);
        #[cfg(feature = "check-invariants")]
        let (mut used_load_bw, mut used_store_bw) = (0u32, 0u32);

        // In-order drain of committed stores. (Not a while-let: the
        // front borrow must end before `self.mem.access` below.)
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(front) = self.sq.front() else { break };
            if !(front.committed && front.data_ready) {
                break;
            }
            let share = front.bytes_share;
            loop {
                let f = self.sq.front().expect("front exists");
                if f.reqs_left == 0 || reqs == 0 || store_reqs == 0 || store_bw < share {
                    break;
                }
                reqs -= 1;
                store_reqs -= 1;
                store_bw -= share;
                #[cfg(feature = "check-invariants")]
                {
                    used_reqs += 1;
                    used_stores += 1;
                    used_store_bw += share;
                }
                let addr = f.next_addr & !(line - 1);
                // Completion time of the write is not load-bearing for the
                // pipeline (no coherence), so the return value is unused.
                let _ = self.mem.access(addr, true, self.now);
                let f = self.sq.front_mut().expect("front exists");
                f.next_addr = (f.next_addr as i64 + f.req_step) as u64;
                f.reqs_left -= 1;
            }
            if self.sq.front().expect("front exists").reqs_left == 0 {
                self.sq.pop_front();
                if self.sq.is_empty() {
                    self.sq_span = (u64::MAX, 0);
                }
            } else {
                break; // budget exhausted
            }
        }

        // Load issue (program order across pending loads, but younger
        // loads may proceed past a blocked older one — our model permits
        // this because forwarding correctness is enforced per-load).
        // `still_pending` is a hoisted scratch deque (empty between
        // cycles) that becomes the new pending list below.
        let mut still_pending = std::mem::take(&mut self.scratch_pending);
        debug_assert!(still_pending.is_empty());
        while let Some(seq) = self.pending_loads.pop_front() {
            if reqs == 0 || load_reqs == 0 {
                self.mem_budget_exhausted = true;
                still_pending.push_back(seq);
                continue;
            }
            let mref = self.uop(seq).mem.expect("load has mem");
            match self.classify_against_stores(seq, &mref) {
                StoreHazard::Blocked => {
                    still_pending.push_back(seq);
                    continue;
                }
                StoreHazard::Forward => {
                    let complete = self.now + self.mem.l1_hit_latency().max(MIN_FORWARD_LATENCY);
                    let u = self.uop_mut(seq);
                    u.mem_complete = complete;
                    u.stage = Stage::MemWait;
                    u.reqs_left = 0;
                    self.done.push(complete, seq);
                    continue;
                }
                StoreHazard::Clear => {}
            }
            // Issue as many requests as budgets allow.
            let share = self.uop(seq).bytes_share;
            let mut issued_any = false;
            loop {
                let u = self.uop(seq);
                if u.reqs_left == 0 {
                    break;
                }
                if reqs == 0 || load_reqs == 0 || load_bw < share {
                    self.mem_budget_exhausted = true;
                    break;
                }
                reqs -= 1;
                load_reqs -= 1;
                load_bw -= share;
                #[cfg(feature = "check-invariants")]
                {
                    used_reqs += 1;
                    used_loads += 1;
                    used_load_bw += share;
                }
                let addr = self.uop(seq).next_addr & !(line - 1);
                let done = self.mem.access(addr, false, self.now);
                let u = self.uop_mut(seq);
                u.next_addr = (u.next_addr as i64 + u.req_step) as u64;
                u.reqs_left -= 1;
                u.mem_complete = u.mem_complete.max(done);
                issued_any = true;
            }
            let u = self.uop_mut(seq);
            if u.reqs_left == 0 && issued_any {
                u.stage = Stage::MemWait;
                let t = u.mem_complete;
                self.done.push(t, seq);
            } else if u.reqs_left == 0 {
                // Degenerate: zero-request access (cannot happen; bytes >= 1).
                u.stage = Stage::MemWait;
                self.done.push(self.now + 1, seq);
            } else {
                still_pending.push_back(seq);
            }
        }
        // `pending_loads` was fully drained above; it becomes next
        // cycle's scratch buffer.
        std::mem::swap(&mut self.pending_loads, &mut still_pending);
        self.scratch_pending = still_pending;

        #[cfg(feature = "check-invariants")]
        {
            let p = &self.params;
            assert!(
                used_reqs <= p.mem_requests_per_cycle,
                "cycle {}: {} memory requests issued, limit {}",
                self.now,
                used_reqs,
                p.mem_requests_per_cycle
            );
            assert!(
                used_loads <= p.loads_per_cycle,
                "cycle {}: {} load requests issued, limit {}",
                self.now,
                used_loads,
                p.loads_per_cycle
            );
            assert!(
                used_stores <= p.stores_per_cycle,
                "cycle {}: {} store requests issued, limit {}",
                self.now,
                used_stores,
                p.stores_per_cycle
            );
            assert!(
                used_load_bw <= p.load_bandwidth,
                "cycle {}: {} load bytes requested, bandwidth {}",
                self.now,
                used_load_bw,
                p.load_bandwidth
            );
            assert!(
                used_store_bw <= p.store_bandwidth,
                "cycle {}: {} store bytes requested, bandwidth {}",
                self.now,
                used_store_bw,
                p.store_bandwidth
            );
        }
    }

    fn classify_against_stores(&self, seq: Seq, mref: &MemRef) -> StoreHazard {
        // Youngest older store overlapping the load's span decides.
        // Gathers never forward (their elements cannot all come from one
        // store's data), so an overlapping gather load is simply blocked
        // until the store drains.
        let (lo, hi) = span_of(mref);
        // Fast path: the load's span misses the (conservative) bounding
        // box of every SQ-resident store, so no entry can overlap.
        if !(lo < self.sq_span.1 && self.sq_span.0 < hi) {
            return StoreHazard::Clear;
        }
        let load_is_gather = !matches!(mref.pattern, MemPattern::Contiguous);
        let mut decision = StoreHazard::Clear;
        for e in self.sq.iter() {
            if e.seq >= seq {
                break;
            }
            if e.overlaps(lo, hi) {
                decision = if !load_is_gather && e.data_ready && e.covers(lo, hi) {
                    // Forwarding is only legal from an older store whose
                    // data is already known.
                    #[cfg(feature = "check-invariants")]
                    assert!(
                        e.seq < seq && e.data_ready,
                        "store-to-load forwarding from store {} to load {} \
                         (older required, data must be ready)",
                        e.seq,
                        seq
                    );
                    StoreHazard::Forward
                } else {
                    StoreHazard::Blocked
                };
            }
        }
        decision
    }

    // -------------------------------------------------------------- commit

    /// Retire up to `commit_width` finished uops from the window front.
    /// Returns the retire count and the oldest retired uop's class (the
    /// inputs of the cycle-attribution pass).
    fn commit(&mut self) -> (u32, Option<OpClass>) {
        // Batch commit: size the ready prefix of the ROB first, then
        // drain it in one pass (one VecDeque ring adjustment instead of
        // commit_width front/pop pairs).
        let retiring = self
            .window
            .iter()
            .take(self.params.commit_width as usize)
            .take_while(|u| u.stage == Stage::Done)
            .count();
        if retiring == 0 {
            return (0, None);
        }
        let base = self.window_base;
        let mut first_op = None;
        for (i, u) in self.window.drain(..retiring).enumerate() {
            let seq = base + i as Seq;
            for d in &u.dests[..u.ndests as usize] {
                self.rename.free_prev(*d);
            }
            if u.op.is_load() {
                self.lq_count -= 1;
            }
            if u.op.is_store() {
                // The SQ is in program order: binary search on seq.
                if let Ok(e) = self.sq.binary_search_by(|e| e.seq.cmp(&seq)) {
                    self.sq[e].committed = true;
                }
            }
            if let Some(log) = &mut self.log {
                let di = log.pending.pop_front().expect("renamed before commit");
                log.committed.push(di);
            }
            self.stats.observed.record(
                u.op,
                u.mem.map_or(0, |m| u64::from(m.bytes)),
                u.mem.map(|m| m.kind),
            );
            first_op.get_or_insert(u.op);
        }
        self.window_base += retiring as Seq;
        self.rob_count -= retiring as u32;
        self.stats.retired += retiring as u64;
        (retiring as u32, first_op)
    }

    // --------------------------------------------------- cycle accounting

    /// Charge the current cycle to exactly one [`CycleBucket`] and sample
    /// structure occupancies. Runs at the commit edge (after writeback/
    /// LSQ-memory/commit, before issue/dispatch/rename/fetch) and only
    /// when counters are enabled. Read-only with respect to pipeline
    /// state — metrics-on runs are timing-identical to metrics-off runs.
    fn attribute_cycle(&mut self, retired: u32, first_op: Option<OpClass>) {
        let Some(mut c) = self.counters.take() else {
            return;
        };
        c.record(self.classify_cycle(retired, first_op));
        c.observe(Structure::Rob, u64::from(self.rob_count));
        c.observe(Structure::Rs, u64::from(self.rs_count));
        c.observe(Structure::LoadQueue, u64::from(self.lq_count));
        c.observe(Structure::StoreQueue, self.sq.len() as u64);
        c.observe(Structure::FetchQueue, self.fetch_q.len() as u64);
        c.observe(Structure::RenameBuffer, self.rename_q.len() as u64);
        self.rename_blocked = false; // consumed; re-armed by rename_stage
        self.counters = Some(c);
    }

    /// The attribution decision tree (documented in docs/METRICS.md):
    /// retire buckets by the oldest retired instruction's class, stall
    /// buckets by what blocked the oldest in-flight instruction.
    fn classify_cycle(&self, retired: u32, first_op: Option<OpClass>) -> CycleBucket {
        if retired > 0 {
            let op = first_op.expect("retired > 0 implies a first op");
            return if op.is_load() {
                CycleBucket::RetireLoad
            } else if op.is_store() {
                CycleBucket::RetireStore
            } else {
                match op.port() {
                    PortClass::Vector => CycleBucket::RetireVector,
                    PortClass::Predicate => CycleBucket::RetirePredicate,
                    _ => CycleBucket::RetireScalar,
                }
            };
        }
        let Some(front) = self.window.front() else {
            // Nothing in flight: the frontend failed to deliver.
            return if self.rename_blocked {
                CycleBucket::RenameFreeList
            } else if !self.fetch_q.is_empty() {
                CycleBucket::FrontendLatency
            } else if self.pending_fetch.is_some() {
                CycleBucket::FetchStarved
            } else {
                CycleBucket::Drain
            };
        };
        match front.stage {
            Stage::Renamed => {
                // Waiting for dispatch: test the dispatch-blocking
                // conditions in dispatch() order.
                if self.rob_count >= self.params.rob_size {
                    CycleBucket::RobFull
                } else if self.rs_count as usize >= RS_SIZE {
                    CycleBucket::RsFull
                } else if front.op.is_load() && self.lq_count >= self.params.load_queue {
                    CycleBucket::LqFull
                } else if front.op.is_store() && self.sq.len() as u32 >= self.params.store_queue {
                    CycleBucket::SqFull
                } else if self.rename_blocked {
                    CycleBucket::RenameFreeList
                } else {
                    CycleBucket::FrontendLatency
                }
            }
            Stage::InRs => {
                if front.srcs_remaining > 0 {
                    CycleBucket::Dependency
                } else {
                    CycleBucket::IssueBandwidth
                }
            }
            Stage::Issued => CycleBucket::ExecLatency,
            Stage::PendingMem => {
                if self.mem_budget_exhausted {
                    CycleBucket::MemRequestCap
                } else {
                    CycleBucket::MemStoreHazard
                }
            }
            Stage::MemWait => CycleBucket::MemData,
            Stage::WbWait => CycleBucket::LsqCompletion,
            // Unreachable: commit() retires a Done front whenever
            // retired == 0 would otherwise hold (commit_width >= 1).
            Stage::Done => CycleBucket::FrontendLatency,
        }
    }

    // --------------------------------------------------------------- issue

    /// Insert a newly ready RS entry into its class queue, keeping the
    /// queue in age (sequence) order. Dispatch appends monotonically;
    /// wakeups may arrive out of order and take the binary-search path.
    fn push_ready(&mut self, class: PortClass, seq: Seq) {
        let q = &mut self.ready_q[class.index()];
        if q.back().is_none_or(|&b| b < seq) {
            q.push_back(seq);
        } else {
            let i = q.partition_point(|&s| s < seq);
            q.insert(i, seq);
        }
        self.rs_ready += 1;
    }

    fn issue(&mut self) {
        // O(1) early-out: no RS entry has all sources resolved, so no
        // port scan can issue anything this cycle.
        if self.rs_ready == 0 {
            return;
        }
        let now = self.now;
        // Per class: pop ready uops in age order while ports are free.
        // Classes contend only within themselves (a uop needs a port of
        // its own class and nothing else), so this issues the same uops
        // to the same ports as an oldest-first scan of the whole RS —
        // without ever touching the ready uops that miss out on a port.
        for ci in 0..self.ready_q.len() {
            while let Some(&seq) = self.ready_q[ci].front() {
                let Some(pi) = self.port_busy[ci].iter().position(|b| *b <= now) else {
                    break;
                };
                self.ready_q[ci].pop_front();
                let (lat, occupancy) = {
                    let u = self.uop(seq);
                    let lat = u64::from(u.op.exec_latency());
                    (lat, if u.op.pipelined() { 1 } else { lat })
                };
                self.port_busy[ci][pi] = now + occupancy;
                self.done.push(now + lat, seq);
                self.uop_mut(seq).stage = Stage::Issued;
                self.rs_ready -= 1;
                self.rs_count -= 1;
            }
        }
    }

    // ------------------------------------------------------------ dispatch

    fn dispatch(&mut self) {
        for _ in 0..DISPATCH_RATE {
            let Some(&seq) = self.rename_q.front() else {
                break;
            };
            if self.rob_count >= self.params.rob_size {
                self.stats.stalls.rob_full += 1;
                break;
            }
            if self.rs_count as usize >= RS_SIZE {
                self.stats.stalls.rs_full += 1;
                break;
            }
            let (op, mem) = {
                let u = self.uop(seq);
                (u.op, u.mem)
            };
            if op.is_load() && self.lq_count >= self.params.load_queue {
                self.stats.stalls.lq_full += 1;
                break;
            }
            if op.is_store() && self.sq.len() as u32 >= self.params.store_queue {
                self.stats.stalls.sq_full += 1;
                break;
            }
            self.rename_q.pop_front();
            self.rob_count += 1;
            self.rs_count += 1;
            let u = self.uop_mut(seq);
            u.stage = Stage::InRs;
            if u.srcs_remaining == 0 {
                self.push_ready(op.port(), seq);
            }
            if op.is_load() {
                self.lq_count += 1;
            }
            if op.is_store() {
                let m = mem.expect("store has mem");
                let (next_addr, reqs_left, req_step, bytes_share) =
                    request_plan(&m, self.mem.line_bytes());
                let (span_lo, span_hi) = span_of(&m);
                self.sq_span.0 = self.sq_span.0.min(span_lo);
                self.sq_span.1 = self.sq_span.1.max(span_hi);
                self.sq.push_back(SqEntry {
                    seq,
                    span_lo,
                    span_hi,
                    scattered: !matches!(m.pattern, MemPattern::Contiguous),
                    data_ready: false,
                    committed: false,
                    next_addr,
                    reqs_left,
                    req_step,
                    bytes_share,
                });
            }
        }
    }

    // -------------------------------------------------------------- rename

    fn rename_stage(&mut self) {
        for _ in 0..self.params.frontend_width {
            if self.rename_q.len() >= RENAME_BUFFER_CAP {
                break;
            }
            let Some(di) = self.fetch_q.front() else {
                if self.pending_fetch.is_some() || !self.window.is_empty() {
                    self.stats.stalls.fetch_starved += 1;
                }
                break;
            };
            if !self.rename.can_rename(di.dests.as_slice()) {
                self.rename_blocked = true;
                let counts = self.rename.stall_counts;
                self.stats.stalls.rename_gp = counts[RegClass::Gp.index()];
                self.stats.stalls.rename_fp = counts[RegClass::Fp.index()];
                self.stats.stalls.rename_pred = counts[RegClass::Pred.index()];
                self.stats.stalls.rename_cond = counts[RegClass::Cond.index()];
                break;
            }
            let di = self.fetch_q.pop_front().expect("front exists");
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(log) = &mut self.log {
                log.pending.push_back(di);
            }

            // Resolve sources first (reads see the pre-rename mapping).
            let mut srcs_remaining = 0u8;
            for s in di.srcs.iter() {
                let (_, ready) = self.rename.resolve_src(s, seq);
                if !ready {
                    srcs_remaining += 1;
                }
            }
            // Rename destinations.
            let mut dests = [RenamedDest {
                class: RegClass::Gp,
                phys: 0,
                prev: 0,
            }; 2];
            let mut ndests = 0u8;
            for d in di.dests.iter() {
                dests[ndests as usize] = self.rename.rename_dest(d);
                ndests += 1;
            }

            // Request-issue plan for loads.
            let (next_addr, reqs_left, req_step, bytes_share) = match di.mem {
                Some(m) if di.op.is_load() => request_plan(&m, self.mem.line_bytes()),
                _ => (0, 0, 0, 0),
            };

            self.window.push_back(Uop {
                op: di.op,
                stage: Stage::Renamed,
                dests,
                ndests,
                srcs_remaining,
                mem: di.mem,
                next_addr,
                reqs_left,
                req_step,
                bytes_share,
                mem_complete: 0,
            });
            self.rename_q.push_back(seq);
        }
    }

    // --------------------------------------------------------------- fetch

    fn fetch(&mut self) {
        if self.pending_fetch.is_none() {
            return;
        }
        let fb = u64::from(self.params.fetch_block_bytes);
        let in_loop = self.loop_mode.is_some();
        if in_loop {
            self.stats.stalls.loop_buffer_cycles += 1;
        }
        let budget = if in_loop {
            self.params.frontend_width as usize
        } else {
            // Instructions available in the aligned fetch-block window
            // containing the next PC.
            let pc = self.pending_fetch.as_ref().expect("checked").pc;
            let window_end = (pc & !(fb - 1)) + fb;
            ((window_end - pc) / INSTR_BYTES) as usize
        };

        for _ in 0..budget {
            if self.fetch_q.len() >= FETCH_QUEUE_CAP {
                break;
            }
            let Some(di) = self.pending_fetch.take() else {
                break;
            };
            self.pending_fetch = self.cursor.next_instr();
            let taken = di.branch.map(|b| b.taken).unwrap_or(false);
            let pc = di.pc;
            self.fetch_q.push_back(di);

            if let Some(b) = di.branch {
                if b.taken && b.target < pc {
                    let body_len = (pc - b.target) / INSTR_BYTES + 1;
                    if body_len <= u64::from(self.params.loop_buffer_size) {
                        if self.loop_candidate == Some(pc) {
                            self.loop_mode = Some((b.target, pc));
                        } else {
                            self.loop_candidate = Some(pc);
                        }
                    }
                } else if !b.taken && self.loop_candidate == Some(pc) {
                    // Loop exit: leave streaming mode.
                    self.loop_mode = None;
                    self.loop_candidate = None;
                } else if !b.taken && self.loop_mode.map(|(_, bp)| bp) == Some(pc) {
                    self.loop_mode = None;
                    self.loop_candidate = None;
                }
            }

            // In block mode a taken branch ends the fetch group.
            if self.loop_mode.is_none() && taken {
                break;
            }
            // Fell out of the loop-buffer range: drop back to block fetch.
            if let (Some((lo, hi)), Some(next)) = (self.loop_mode, self.pending_fetch.as_ref()) {
                if next.pc < lo || next.pc > hi {
                    self.loop_mode = None;
                    self.loop_candidate = None;
                    break;
                }
            }
        }
    }

    // ---------------------------------------------------------- invariants

    /// Cycle-level structural invariants, checked at the end of every
    /// cycle when the `check-invariants` feature is enabled. Any violation
    /// panics, so a completed run certifies zero violations.
    #[cfg(feature = "check-invariants")]
    fn check_invariants(&self) {
        let p = &self.params;

        // Capacity bounds on every queue and buffer.
        assert!(
            self.rob_count <= p.rob_size,
            "cycle {}: ROB holds {} uops, capacity {}",
            self.now,
            self.rob_count,
            p.rob_size
        );
        assert!(
            self.rs_count as usize <= RS_SIZE,
            "cycle {}: RS holds {} uops, capacity {}",
            self.now,
            self.rs_count,
            RS_SIZE
        );
        assert!(
            self.lq_count <= p.load_queue,
            "cycle {}: load queue holds {} loads, capacity {}",
            self.now,
            self.lq_count,
            p.load_queue
        );
        assert!(
            self.sq.len() as u32 <= p.store_queue,
            "cycle {}: store queue holds {} stores, capacity {}",
            self.now,
            self.sq.len(),
            p.store_queue
        );
        assert!(
            self.rename_q.len() <= RENAME_BUFFER_CAP,
            "cycle {}: rename buffer overflow",
            self.now
        );
        assert!(
            self.fetch_q.len() <= FETCH_QUEUE_CAP,
            "cycle {}: fetch queue overflow",
            self.now
        );

        // The RS occupancy and ready counters that gate dispatch, issue,
        // and fast-forward legality must agree with a full window scan,
        // and each per-class ready queue must hold exactly the ready
        // RS-resident uops of that class, in age order.
        let rs_in_window = self
            .window
            .iter()
            .filter(|u| u.stage == Stage::InRs)
            .count() as u32;
        assert_eq!(
            rs_in_window, self.rs_count,
            "cycle {}: rs_count out of sync with window InRs population",
            self.now
        );
        let ready_in_window = self
            .window
            .iter()
            .filter(|u| u.stage == Stage::InRs && u.srcs_remaining == 0)
            .count() as u32;
        assert_eq!(
            ready_in_window, self.rs_ready,
            "cycle {}: rs_ready counter out of sync with window contents",
            self.now
        );
        let queued: u32 = self.ready_q.iter().map(|q| q.len() as u32).sum();
        assert_eq!(
            queued, self.rs_ready,
            "cycle {}: ready queues out of sync with rs_ready",
            self.now
        );
        for (ci, q) in self.ready_q.iter().enumerate() {
            let mut prev = None;
            for &s in q {
                assert!(
                    prev.is_none_or(|p| p < s),
                    "cycle {}: ready queue {ci} out of age order",
                    self.now
                );
                prev = Some(s);
                let u = self.uop(s);
                assert!(
                    u.stage == Stage::InRs && u.srcs_remaining == 0 && u.op.port().index() == ci,
                    "cycle {}: ready queue {ci} holds unready/misfiled uop {s}",
                    self.now
                );
            }
        }

        // In-order commit: the ROB pops only from the front, so the number
        // of retired instructions must equal the oldest in-flight sequence
        // number. Any out-of-order commit breaks this equality.
        assert_eq!(
            self.stats.retired, self.window_base,
            "cycle {}: retired count diverged from the commit frontier",
            self.now
        );

        // The load-queue counter must agree with the dispatched, not yet
        // committed loads actually present in the window.
        let lq_in_window = self
            .window
            .iter()
            .filter(|u| u.op.is_load() && u.stage != Stage::Renamed)
            .count() as u32;
        assert_eq!(
            lq_in_window, self.lq_count,
            "cycle {}: load-queue counter out of sync with window",
            self.now
        );

        // Store queue: program order, committed entries form a prefix, and
        // committed exactly matches "older than the commit frontier". The
        // uncommitted entries must be the dispatched stores in the window.
        let mut prev: Option<Seq> = None;
        let mut seen_uncommitted = false;
        for e in &self.sq {
            if let Some(ps) = prev {
                assert!(
                    e.seq > ps,
                    "cycle {}: store queue out of program order ({} after {})",
                    self.now,
                    e.seq,
                    ps
                );
            }
            prev = Some(e.seq);
            if e.committed {
                assert!(
                    !seen_uncommitted,
                    "cycle {}: committed store {} behind an uncommitted one",
                    self.now, e.seq
                );
                assert!(
                    e.seq < self.window_base,
                    "cycle {}: store {} committed ahead of the ROB frontier {}",
                    self.now,
                    e.seq,
                    self.window_base
                );
                assert!(
                    e.data_ready,
                    "cycle {}: store {} committed without its data",
                    self.now, e.seq
                );
            } else {
                seen_uncommitted = true;
                assert!(
                    e.seq >= self.window_base,
                    "cycle {}: uncommitted store {} already retired",
                    self.now,
                    e.seq
                );
            }
        }
        // The store-span bounding box must cover every resident entry
        // (it may over-cover: pops leave it stale until the SQ empties).
        for e in &self.sq {
            assert!(
                self.sq_span.0 <= e.span_lo && e.span_hi <= self.sq_span.1,
                "cycle {}: store {} span outside the SQ bounding box",
                self.now,
                e.seq
            );
        }

        let sq_uncommitted = self.sq.iter().filter(|e| !e.committed).count();
        let stores_in_window = self
            .window
            .iter()
            .filter(|u| u.op.is_store() && u.stage != Stage::Renamed)
            .count();
        assert_eq!(
            stores_in_window, sq_uncommitted,
            "cycle {}: store-queue entries out of sync with window",
            self.now
        );

        // Physical-register free-list conservation: mapped + free + in
        // flight (renamed, not yet committed) must cover every physical
        // register exactly once, and freed registers must be clean.
        let mut in_flight = [0usize; 4];
        for u in &self.window {
            for d in &u.dests[..u.ndests as usize] {
                in_flight[d.class.index()] += 1;
            }
        }
        for class in RegClass::ALL {
            assert!(
                self.rename
                    .check_conservation(class, in_flight[class.index()]),
                "cycle {}: {class:?} free list leaked or duplicated a register",
                self.now
            );
            assert!(
                self.rename.check_free_ready(class),
                "cycle {}: {class:?} free list holds a busy register",
                self.now
            );
        }
    }
}

/// Incremental FNV-1a (64-bit) over `u64` words, the checksum behind
/// [`Pipeline::state_hash`].
struct StateHasher(u64);

impl StateHasher {
    fn new() -> StateHasher {
        StateHasher(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Which full structure blocks dispatch during an idle skip (exactly
/// one stall counter is charged per blocked cycle, in dispatch-check
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleDispatch {
    Rob,
    Rs,
    Lq,
    Sq,
}

/// Why rename makes no progress during an idle skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleRename {
    /// Rename buffer at capacity: rename breaks before any accounting.
    BufferFull,
    /// Fetch queue empty: each cycle counts one fetch-starved stall.
    Starved,
    /// The given class's free list cannot cover the next instruction.
    FreeList(RegClass),
}

/// Store-hazard classification for a load about to access memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreHazard {
    /// No older overlapping store: go to memory.
    Clear,
    /// Youngest older overlapping store fully covers the load and its data
    /// is ready: forward from the store queue.
    Forward,
    /// Overlapping store with unknown data or partial overlap: wait.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_limit;
    use armdse_kernels::{build_workload, App, WorkloadScale};
    use armdse_memsim::{Hierarchy, MemParams};

    fn fixture(app: App) -> (armdse_isa::Program, CoreParams, MemParams) {
        let core = CoreParams::thunderx2();
        let w = build_workload(app, WorkloadScale::Tiny, core.vector_length);
        (w.program, core, MemParams::thunderx2())
    }

    #[test]
    fn segmented_drive_matches_one_shot() {
        for app in [App::Stream, App::MiniBude, App::TeaLeaf] {
            let (p, c, m) = fixture(app);
            let limit = cycle_limit(&p);
            let oneshot = Pipeline::new(&p, c, Hierarchy::new(m)).run(limit);
            for seg in [1u64, 7, 64, 4096] {
                let mut pl = Pipeline::new(&p, c, Hierarchy::new(m));
                let mut target = seg;
                while !pl.is_finished() {
                    pl.drive_until_retired(limit, target);
                    target += seg;
                }
                assert_eq!(
                    *pl.stats(),
                    oneshot,
                    "{app:?} diverged at segment length {seg}"
                );
            }
        }
    }

    #[test]
    fn segmented_drive_matches_one_shot_with_counters() {
        let (p, c, m) = fixture(App::Stream);
        let limit = cycle_limit(&p);
        let (ref_stats, ref_counters) =
            Pipeline::new(&p, c, Hierarchy::new(m)).run_with_counters(limit);
        let mut pl = Pipeline::new(&p, c, Hierarchy::new(m));
        pl.enable_counters();
        let mut target = 128u64;
        while !pl.is_finished() {
            pl.drive_until_retired(limit, target);
            target += 128;
        }
        let counters = pl.take_counters_finalized().expect("counters enabled");
        assert_eq!(*pl.stats(), ref_stats);
        assert_eq!(*counters, *ref_counters);
        assert!(counters.conserves());
    }

    #[test]
    fn snapshot_restore_at_every_boundary_is_bit_identical() {
        let (p, c, m) = fixture(App::Stream);
        let limit = cycle_limit(&p);
        let oneshot = Pipeline::new(&p, c, Hierarchy::new(m)).run(limit);
        // Drive in segments, replacing the machine by snapshot+restore
        // at every boundary: the final stats must be unchanged.
        let mut pl = Pipeline::new(&p, c, Hierarchy::new(m));
        let mut target = 100u64;
        while !pl.is_finished() {
            pl.drive_until_retired(limit, target);
            target += 100;
            let snap = pl.snapshot();
            pl = Pipeline::restore(&p, &snap);
        }
        assert_eq!(*pl.stats(), oneshot);
    }

    #[test]
    fn snapshot_restore_preserves_counters() {
        let (p, c, m) = fixture(App::MiniBude);
        let limit = cycle_limit(&p);
        let (ref_stats, ref_counters) =
            Pipeline::new(&p, c, Hierarchy::new(m)).run_with_counters(limit);
        let mut pl = Pipeline::new(&p, c, Hierarchy::new(m));
        pl.enable_counters();
        let mut target = 256u64;
        while !pl.is_finished() {
            pl.drive_until_retired(limit, target);
            target += 256;
            let snap = pl.snapshot();
            pl = Pipeline::restore(&p, &snap);
        }
        let counters = pl.take_counters_finalized().expect("counters enabled");
        assert_eq!(*pl.stats(), ref_stats);
        assert_eq!(*counters, *ref_counters);
    }

    #[test]
    fn state_hash_chains_reproduce_and_discriminate() {
        let (p, c, m) = fixture(App::Stream);
        let limit = cycle_limit(&p);
        let chain = |seg: u64| {
            let mut pl = Pipeline::new(&p, c, Hierarchy::new(m));
            let mut hashes = vec![pl.state_hash()];
            let mut target = seg;
            while !pl.is_finished() {
                pl.drive_until_retired(limit, target);
                target += seg;
                hashes.push(pl.state_hash());
            }
            hashes
        };
        let a = chain(512);
        let b = chain(512);
        assert_eq!(a, b, "identical runs must chain identical hashes");
        assert!(a.len() > 2, "fixture too small to exercise chaining");
        // Successive interval boundaries are distinct states.
        for w in a.windows(2) {
            assert_ne!(w[0], w[1], "state hash failed to move");
        }
        // A different design point diverges immediately after cycle 0.
        let mut c2 = c;
        c2.rob_size = 8;
        let mut pl = Pipeline::new(&p, c2, Hierarchy::new(m));
        pl.drive_until_retired(limit, 512);
        assert_ne!(pl.state_hash(), a[1]);
    }
}
