//! Completion-event timer queue for the pipeline.
//!
//! The pipeline's completion queue (`done`) carries every issued uop
//! and every memory request. The drain order is
//! load-bearing: events must come out in ascending `(t, seq)` order —
//! same-cycle completions feed the pending-load queue in sequence
//! order, and the golden emission tests pin the resulting timing
//! exactly.
//!
//! The representation is a hybrid calendar wheel: events due within the
//! next `WHEEL` (64) cycles live in a slot ring indexed by `t % WHEEL`
//! (constant-time push and drain), everything further out waits in a
//! binary-heap overflow. Execution latencies are a handful of cycles,
//! so virtually every execution completion takes the wheel path; DRAM
//! completions land in the overflow and trickle through `take_due`
//! directly. Two details make the wheel win over both a plain heap and
//! a naive wheel (both were measured on the `components` benches and
//! lost):
//!
//! * a slot-occupancy **bitmask** makes [`EventQueue::next_time`] a
//!   rotate + trailing-zeros instead of a slot scan — the idle-cycle
//!   fast-forward calls it on every drive-loop iteration;
//! * slots store bare sequence numbers (the slot index implies the
//!   cycle), kept unsorted until drain — a due batch is a few entries,
//!   so one small sort per cycle restores `(t, seq)` order exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sequence number payload (mirrors `regfile::Seq`).
type Seq = u64;

/// Wheel horizon in cycles (power of two; also the slot count). Events
/// scheduled at `t - now >= WHEEL` overflow into the far heap.
const WHEEL: usize = 64;

/// A `(completion cycle, sequence number)` timer queue.
///
/// Events may be scheduled at any future cycle; [`EventQueue::take_due`]
/// collects every event with `t <= now` in ascending `(t, seq)` order.
///
/// The caller must drain with a non-decreasing clock (`take_due(now)`
/// with `now` never moving backwards), which the pipeline's monotone
/// `self.now` guarantees; pushes must target the future (`t > now`).
#[derive(Debug, Clone)]
pub struct EventQueue {
    /// Ring of per-cycle slots; slot `t % WHEEL` holds the sequence
    /// numbers completing at cycle `t`, unordered.
    slots: [Vec<Seq>; WHEEL],
    /// Bit `i` set iff `slots[i]` is non-empty.
    occupied: u64,
    /// The clock value of the last `take_due` call. Every wheel event
    /// satisfies `drained_to < t <= drained_to + WHEEL - 1`, so the slot
    /// index maps back to a unique cycle.
    drained_to: u64,
    /// Events scheduled beyond the wheel horizon.
    far: BinaryHeap<Reverse<(u64, Seq)>>,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue {
            slots: std::array::from_fn(|_| Vec::new()),
            occupied: 0,
            drained_to: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule an event at cycle `t` (strictly after the last drain).
    #[inline]
    pub fn push(&mut self, t: u64, seq: Seq) {
        debug_assert!(t > self.drained_to, "push into the past");
        self.len += 1;
        // The wheel holds at most WHEEL-1 cycles ahead so a slot never
        // mixes two distinct cycles (see `drained_to`).
        if t - self.drained_to < WHEEL as u64 {
            let slot = (t % WHEEL as u64) as usize;
            self.slots[slot].push(seq);
            self.occupied |= 1 << slot;
        } else {
            self.far.push(Reverse((t, seq)));
        }
    }

    /// Earliest scheduled event time, if any (the fast-forward target).
    #[inline]
    pub fn next_time(&self) -> Option<u64> {
        let far = self.far.peek().map(|&Reverse((t, _))| t);
        if self.occupied == 0 {
            return far;
        }
        // Rotate the mask so the slot for `drained_to + 1` is bit 0;
        // the first set bit's position is then the distance-1 to the
        // earliest occupied cycle.
        let shift = ((self.drained_to + 1) % WHEEL as u64) as u32;
        let d = u64::from(self.occupied.rotate_right(shift).trailing_zeros());
        let wheel_next = self.drained_to + 1 + d;
        Some(far.map_or(wheel_next, |f| f.min(wheel_next)))
    }

    /// Drain every event with `t <= now` into `out` (cleared first) in
    /// ascending `(t, seq)` order.
    pub fn take_due(&mut self, now: u64, out: &mut Vec<(u64, Seq)>) {
        out.clear();
        // Wheel events due by `now`: walk occupied slots in cycle order.
        while self.occupied != 0 {
            let shift = ((self.drained_to + 1) % WHEEL as u64) as u32;
            let d = u64::from(self.occupied.rotate_right(shift).trailing_zeros());
            let t = self.drained_to + 1 + d;
            if t > now {
                break;
            }
            let slot = (t % WHEEL as u64) as usize;
            let events = &mut self.slots[slot];
            self.len -= events.len();
            out.extend(events.drain(..).map(|seq| (t, seq)));
            self.occupied &= !(1 << slot);
        }
        // Far events that have come due (and any that now fit the wheel
        // stay put — they will surface here anyway, order restored by
        // the sort below).
        while let Some(&Reverse(e)) = self.far.peek() {
            if e.0 > now {
                break;
            }
            out.push(e);
            self.far.pop();
            self.len -= 1;
        }
        // Same-cycle events were pushed in issue order, not sequence
        // order, and far events append after wheel events; one sort of
        // the (small) due batch restores the exact (t, seq) contract.
        out.sort_unstable();
        self.drained_to = now.max(self.drained_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(5, 2);
        q.push(3, 9);
        q.push(5, 1);
        q.push(4, 0);
        let mut out = Vec::new();
        q.take_due(5, &mut out);
        assert_eq!(out, vec![(3, 9), (4, 0), (5, 1), (5, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn respects_the_clock() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(2, 2);
        let mut out = Vec::new();
        q.take_due(1, &mut out);
        assert!(out.is_empty());
        assert_eq!(q.next_time(), Some(2));
        q.take_due(9, &mut out);
        assert_eq!(out, vec![(2, 2)]);
        assert_eq!(q.next_time(), Some(10));
        q.take_due(10, &mut out);
        assert_eq!(out, vec![(10, 1)]);
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn take_due_clears_stale_output() {
        let mut q = EventQueue::new();
        q.push(1, 7);
        let mut out = vec![(99, 99)];
        q.take_due(2, &mut out);
        assert_eq!(out, vec![(1, 7)]);
        q.take_due(3, &mut out);
        assert!(out.is_empty(), "empty drain must clear the buffer");
    }

    #[test]
    fn far_events_cross_the_horizon_in_order() {
        let mut q = EventQueue::new();
        // One far event (beyond WHEEL), then near events pushed later at
        // the same cycle with both smaller and larger sequence numbers.
        q.push(200, 5);
        assert_eq!(q.next_time(), Some(200));
        let mut out = Vec::new();
        q.take_due(150, &mut out);
        assert!(out.is_empty());
        q.push(200, 3);
        q.push(200, 8);
        q.push(199, 100);
        assert_eq!(q.next_time(), Some(199));
        q.take_due(200, &mut out);
        assert_eq!(out, vec![(199, 100), (200, 3), (200, 5), (200, 8)]);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_wraps_without_mixing_cycles() {
        let mut q = EventQueue::new();
        let mut out = Vec::new();
        // March the clock far past several wheel revolutions, always
        // scheduling one event a few cycles out.
        let mut expected = Vec::new();
        let mut drained = Vec::new();
        for now in 0..1000u64 {
            let t = now + 1 + (now % 7);
            q.push(t, now);
            expected.push((t, now));
            q.take_due(now + 1, &mut out);
            drained.extend_from_slice(&out);
        }
        // Flush the tail.
        q.take_due(2000, &mut out);
        drained.extend_from_slice(&out);
        assert!(q.is_empty());
        expected.sort_unstable();
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected, "event loss or duplication");
        // And the streamed drain itself must already be (t, seq)-sorted
        // within each take_due batch with non-decreasing t across calls.
        for w in drained.windows(2) {
            assert!(w[0].0 <= w[1].0 || w[0] < w[1]);
        }
    }

    #[test]
    fn mixed_near_and_far_interleave_exactly() {
        // Exhaustive cross-check against a plain sorted list.
        let mut q = EventQueue::new();
        let mut reference = Vec::new();
        let mut seq = 0u64;
        let mut out = Vec::new();
        let mut got = Vec::new();
        for now in 0..300u64 {
            for &dt in &[1u64, 3, WHEEL as u64 - 1, WHEEL as u64, 120] {
                let t = now + dt;
                q.push(t, seq);
                reference.push((t, seq));
                seq += 1;
            }
            q.take_due(now + 1, &mut out);
            got.extend_from_slice(&out);
        }
        q.take_due(10_000, &mut out);
        got.extend_from_slice(&out);
        reference.sort_unstable();
        assert_eq!(got.len(), reference.len());
        // The streamed output is the reference order exactly: each batch
        // is sorted and batches are bounded by the clock.
        let mut resorted = got.clone();
        resorted.sort_unstable();
        assert_eq!(resorted, reference);
        for w in got.windows(2) {
            assert!(
                w[0] <= w[1],
                "stream out of (t, seq) order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}
