//! The campaign engine: one resumable run path for every consumer.
//!
//! The paper's workflow (T1 sample → T2 simulate → T3 train) used to be
//! spread over free functions that each hard-wired a backend and
//! re-derived workload construction. [`Engine`] is the single substrate:
//! it owns a pluggable [`SimBackend`], a shared [`WorkloadCache`] keyed
//! by `(app, scale, vector length)`, and a chunked deterministic job
//! loop that streams rows into a [`RowSink`] instead of accumulating
//! them in memory.
//!
//! ## Determinism and resume
//!
//! Jobs are numbered `0..configs × apps.len()`; job `j` simulates app
//! `apps[j % apps.len()]` on the design point derived from
//! `seed + j / apps.len()`. Within a chunk, worker threads race on an
//! atomic counter, but results are reordered by job index before they
//! reach the sink — output is byte-identical for any thread count. A
//! chunk boundary is a plan property (not a thread property), so a run
//! checkpointed after chunk `k` and resumed produces *exactly* the
//! bytes of an uninterrupted run: `fresh == resumed` at any thread
//! count. `tests/engine_resume.rs` pins this guarantee.
//!
//! ## Checkpoint file format
//!
//! A checkpoint is a small line-oriented text file, written atomically
//! (temp file + rename) after every chunk:
//!
//! ```text
//! armdse-checkpoint v1
//! fingerprint=<16 hex digits>   # FNV-1a over the plan (space, configs,
//!                               # seed, scale, apps, pins, explicit
//!                               # config indices) — threads and chunk
//!                               # size excluded: they must not change
//!                               # results
//! jobs_done=<n>                 # always a chunk boundary
//! rows=<n>                      # validated rows streamed so far
//! discarded=<n>                 # validation-failed runs so far
//! ```
//!
//! Resuming validates the fingerprint against the live plan and
//! continues from `jobs_done`; resuming a completed run is a no-op.
//!
//! A **v2** checkpoint extends v1 with a free-form section of
//! `key=value` lines after the four fixed fields (keys must not collide
//! with the fixed field names). The engine itself never interprets the
//! section — it persists whatever [`RunControl::checkpoint_extra`]
//! carries and [`Checkpoint::load`] hands it back. The adaptive
//! [`crate::explorer::Explorer`] stores its exploration state there
//! (acquisition RNG, selection history, per-round model hashes; see
//! DESIGN.md §12). A file with an empty section is written in the v1
//! format, so plain campaigns keep byte-identical checkpoints.

use crate::config::DesignConfig;
use crate::dataset::{write_csv_header, write_csv_row, DiscardedRun, DseDataset, Row};
use crate::error::ArmdseError;
use crate::metrics::{MetricsRow, MetricsSink};
use crate::orchestrator::GenOptions;
use crate::space::{ParamSpace, FEATURE_NAMES};
use armdse_kernels::{App, Workload, WorkloadCache, WorkloadScale};
use armdse_simcore::{
    Counters, Fidelity, Idealized, Memoized, MultiCore, ReuseStats, Sampled, SimBackend, SimStats,
};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Default jobs per chunk: small enough that checkpoints land every few
/// seconds at Standard scale, large enough to amortise the thread scope.
pub const DEFAULT_CHUNK_JOBS: usize = 128;

/// A validated campaign plan: the engine-facing form of [`GenOptions`].
///
/// Construction validates what the old orchestrator `assert!`ed on:
/// `configs == 0` or an empty app list is [`ArmdseError::InvalidPlan`],
/// duplicate apps are deduplicated (order-preserving) instead of
/// silently double-counting jobs, and pinned feature names are checked
/// against the space before any simulation starts.
#[derive(Debug, Clone)]
pub struct RunPlan {
    space: ParamSpace,
    configs: usize,
    scale: WorkloadScale,
    seed: u64,
    threads: usize,
    apps: Vec<App>,
    pins: Vec<(String, f64)>,
    chunk_jobs: usize,
    /// Explicit config indices: when set, config slot `i` samples with
    /// `seed + indices[i]` instead of `seed + i`, so a plan can target
    /// an arbitrary subset of a candidate pool (the adaptive explorer's
    /// per-round batches) while every design point stays identical to
    /// the one a full sweep would have produced at that index.
    indices: Option<Vec<u64>>,
}

impl RunPlan {
    /// Validate `opts` against `space` into a plan.
    pub fn new(space: &ParamSpace, opts: &GenOptions) -> Result<RunPlan, ArmdseError> {
        RunPlan::pinned(space, opts, &[])
    }

    /// Like [`RunPlan::new`] with features pinned to fixed values by
    /// name (the paper's Figs. 4/5 constrain Vector-Length).
    pub fn pinned(
        space: &ParamSpace,
        opts: &GenOptions,
        pins: &[(&str, f64)],
    ) -> Result<RunPlan, ArmdseError> {
        if opts.configs == 0 {
            return Err(ArmdseError::InvalidPlan("configs == 0".into()));
        }
        // Order-preserving dedup: a repeated app would double-count jobs
        // and skew per-app row counts.
        let mut apps = Vec::with_capacity(opts.apps.len());
        for &a in &opts.apps {
            if !apps.contains(&a) {
                apps.push(a);
            }
        }
        if apps.is_empty() {
            return Err(ArmdseError::InvalidPlan("no applications selected".into()));
        }
        for (name, _) in pins {
            if !FEATURE_NAMES.contains(name) {
                return Err(ArmdseError::InvalidPlan(format!(
                    "unknown pinned feature '{name}'"
                )));
            }
        }
        Ok(RunPlan {
            space: space.clone(),
            configs: opts.configs,
            scale: opts.scale,
            seed: opts.seed,
            threads: opts.threads.max(1),
            apps,
            pins: pins.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            chunk_jobs: DEFAULT_CHUNK_JOBS,
            indices: None,
        })
    }

    /// Restrict the plan to explicit config indices into the seeded
    /// candidate stream: config slot `i` samples with `seed +
    /// indices[i]`, and `configs` becomes `indices.len()`. An empty
    /// index list is rejected for the same reason `configs == 0` is.
    pub fn with_config_indices(mut self, indices: Vec<u64>) -> Result<RunPlan, ArmdseError> {
        if indices.is_empty() {
            return Err(ArmdseError::InvalidPlan("empty config index list".into()));
        }
        self.configs = indices.len();
        self.indices = Some(indices);
        Ok(self)
    }

    /// Override the chunk size (jobs per checkpointable unit). Values
    /// below 1 are clamped to 1. Chunking never changes the emitted
    /// rows — only where a run may pause and resume.
    pub fn with_chunk_jobs(mut self, chunk_jobs: usize) -> RunPlan {
        self.chunk_jobs = chunk_jobs.max(1);
        self
    }

    /// Override the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> RunPlan {
        self.threads = threads.max(1);
        self
    }

    /// Total jobs: one per (configuration, application) pair.
    pub fn jobs(&self) -> usize {
        self.configs * self.apps.len()
    }

    /// Design points sampled.
    pub fn configs(&self) -> usize {
        self.configs
    }

    /// Workload input scale.
    pub fn scale(&self) -> WorkloadScale {
        self.scale
    }

    /// Base seed (config `i` samples with `seed + i`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applications simulated per configuration (deduplicated).
    pub fn apps(&self) -> &[App] {
        &self.apps
    }

    /// Jobs per chunk.
    pub fn chunk_jobs(&self) -> usize {
        self.chunk_jobs
    }

    /// Stable plan identity for checkpoint validation. Threads and
    /// chunk size are excluded: neither may change the output, so
    /// either may legitimately differ between a run and its resume.
    pub fn fingerprint(&self) -> u64 {
        let encoded = format!(
            "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}",
            self.space, self.configs, self.seed, self.scale, self.apps, self.pins, self.indices
        );
        fnv1a64(encoded.as_bytes())
    }

    /// The parameter space the plan samples from.
    pub(crate) fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Pinned `(feature, value)` pairs.
    pub(crate) fn pins(&self) -> &[(String, f64)] {
        &self.pins
    }

    /// The seed offset config slot `cfg_idx` samples with: the explicit
    /// index when [`RunPlan::with_config_indices`] set one, the slot
    /// number otherwise.
    pub(crate) fn config_offset(&self, cfg_idx: usize) -> u64 {
        match &self.indices {
            Some(indices) => indices[cfg_idx],
            None => cfg_idx as u64,
        }
    }
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Receives the deterministic row stream of a campaign, in job order.
///
/// `chunk_end` is invoked at every chunk boundary *before* the engine
/// persists a checkpoint, so a durable sink (e.g. [`CsvSink`]) can
/// flush and guarantee its bytes are never behind the checkpoint.
pub trait RowSink {
    /// Receive one validated row.
    fn row(&mut self, row: &Row) -> Result<(), ArmdseError>;

    /// Receive one validation-failed run (default: ignore).
    fn discarded(&mut self, _d: &DiscardedRun) -> Result<(), ArmdseError> {
        Ok(())
    }

    /// Chunk boundary: make buffered output durable (default: no-op).
    fn chunk_end(&mut self) -> Result<(), ArmdseError> {
        Ok(())
    }
}

/// The in-memory sink: collects rows and discards into a [`DseDataset`].
impl RowSink for DseDataset {
    fn row(&mut self, row: &Row) -> Result<(), ArmdseError> {
        self.rows.push(row.clone());
        Ok(())
    }

    fn discarded(&mut self, d: &DiscardedRun) -> Result<(), ArmdseError> {
        self.discarded.push(d.clone());
        Ok(())
    }
}

/// Streams rows straight to a dataset CSV file (constant memory), in
/// the exact byte format of [`DseDataset::save_csv`]. Discarded runs
/// are kept in memory (`discarded`) for reporting — they are not part
/// of the CSV contract.
pub struct CsvSink {
    w: BufWriter<std::fs::File>,
    rows_written: usize,
    /// Validation-failed runs observed by this sink (not persisted).
    pub discarded: Vec<DiscardedRun>,
}

impl CsvSink {
    /// Create (truncate) `path` and write the CSV header.
    pub fn create(path: &Path) -> Result<CsvSink, ArmdseError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        write_csv_header(&mut w)?;
        Ok(CsvSink {
            w,
            rows_written: 0,
            discarded: Vec::new(),
        })
    }

    /// Open `path` for appending (resume: header already present).
    pub fn append(path: &Path) -> Result<CsvSink, ArmdseError> {
        let f = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(CsvSink {
            w: BufWriter::new(f),
            rows_written: 0,
            discarded: Vec::new(),
        })
    }

    /// Rows written through this sink instance.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }
}

impl RowSink for CsvSink {
    fn row(&mut self, row: &Row) -> Result<(), ArmdseError> {
        write_csv_row(&mut self.w, row)?;
        self.rows_written += 1;
        Ok(())
    }

    fn discarded(&mut self, d: &DiscardedRun) -> Result<(), ArmdseError> {
        self.discarded.push(d.clone());
        Ok(())
    }

    fn chunk_end(&mut self) -> Result<(), ArmdseError> {
        self.w.flush()?;
        self.w.get_ref().sync_data().map_err(ArmdseError::from)
    }
}

/// Persistent campaign position (see the module docs for the format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Plan fingerprint the position belongs to.
    pub fingerprint: u64,
    /// Jobs completed (always a chunk boundary).
    pub jobs_done: usize,
    /// Validated rows streamed so far.
    pub rows: usize,
    /// Discarded runs so far.
    pub discarded: usize,
    /// Caller-owned `key=value` section (empty for plain campaigns; the
    /// adaptive explorer persists its exploration state here). Keys must
    /// not contain `=` or newlines and must not collide with the fixed
    /// field names; values must not contain newlines.
    pub extra: Vec<(String, String)>,
}

const CHECKPOINT_MAGIC_V1: &str = "armdse-checkpoint v1";
const CHECKPOINT_MAGIC_V2: &str = "armdse-checkpoint v2";
const FIXED_FIELDS: [&str; 4] = ["fingerprint", "jobs_done", "rows", "discarded"];

impl Checkpoint {
    /// Atomically persist to `path` (temp file + rename). An empty
    /// `extra` section writes the v1 format byte-for-byte; a non-empty
    /// one writes v2 with the section appended after the fixed fields.
    pub fn save(&self, path: &Path) -> Result<(), ArmdseError> {
        let tmp = path.with_extension("ckpt.tmp");
        let magic = if self.extra.is_empty() {
            CHECKPOINT_MAGIC_V1
        } else {
            CHECKPOINT_MAGIC_V2
        };
        let mut body = format!(
            "{magic}\nfingerprint={:016x}\njobs_done={}\nrows={}\ndiscarded={}\n",
            self.fingerprint, self.jobs_done, self.rows, self.discarded
        );
        for (k, v) in &self.extra {
            debug_assert!(
                !k.contains(['=', '\n'])
                    && !v.contains('\n')
                    && !FIXED_FIELDS.contains(&k.as_str()),
                "invalid checkpoint extra key/value: {k}={v}"
            );
            body.push_str(k);
            body.push('=');
            body.push_str(v);
            body.push('\n');
        }
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, path).map_err(ArmdseError::from)
    }

    /// Load and parse a checkpoint file (v1 or v2).
    ///
    /// Every parse error names the offending file and 1-based line
    /// number (`<path>:<line>: <reason>`) — a multi-job store holds
    /// many checkpoints, and "unparsable field" without a location is
    /// useless there.
    pub fn load(path: &Path) -> Result<Checkpoint, ArmdseError> {
        let body = std::fs::read_to_string(path)?;
        let err = |line_no: usize, msg: String| {
            ArmdseError::Checkpoint(format!("{}:{line_no}: {msg}", path.display()))
        };
        let mut lines = body.lines();
        match lines.next() {
            Some(CHECKPOINT_MAGIC_V1) | Some(CHECKPOINT_MAGIC_V2) => {}
            Some(other) => {
                return Err(err(
                    1,
                    format!("not an armdse v1/v2 checkpoint (got '{other}')"),
                ))
            }
            None => return Err(err(1, "empty checkpoint file".into())),
        }
        // The fixed fields sit at fixed lines: magic is line 1, then one
        // field per line in FIXED_FIELDS order.
        let mut field = |line_no: usize, key: &str| -> Result<String, ArmdseError> {
            let line = lines
                .next()
                .ok_or_else(|| err(line_no, format!("missing field {key}")))?;
            line.strip_prefix(&format!("{key}="))
                .map(str::to_string)
                .ok_or_else(|| err(line_no, format!("expected '{key}=<value>', got '{line}'")))
        };
        let text = field(2, "fingerprint")?;
        let fingerprint = u64::from_str_radix(&text, 16).map_err(|_| {
            err(
                2,
                format!("unparsable fingerprint '{text}' (want 16 hex digits)"),
            )
        })?;
        let text = field(3, "jobs_done")?;
        let jobs_done = text
            .parse()
            .map_err(|_| err(3, format!("unparsable jobs_done '{text}'")))?;
        let text = field(4, "rows")?;
        let rows = text
            .parse()
            .map_err(|_| err(4, format!("unparsable rows '{text}'")))?;
        let text = field(5, "discarded")?;
        let discarded = text
            .parse()
            .map_err(|_| err(5, format!("unparsable discarded '{text}'")))?;
        let mut extra = Vec::new();
        for (i, line) in lines.enumerate() {
            let (k, v) = line.split_once('=').ok_or_else(|| {
                err(
                    6 + i,
                    format!("malformed extra line '{line}' (want key=value)"),
                )
            })?;
            extra.push((k.to_string(), v.to_string()));
        }
        Ok(Checkpoint {
            fingerprint,
            jobs_done,
            rows,
            discarded,
            extra,
        })
    }

    /// Look up a key in the extra section.
    pub fn extra_get(&self, key: &str) -> Option<&str> {
        self.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Progress snapshot handed to the observer after each chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Jobs completed so far (a chunk boundary).
    pub jobs_done: usize,
    /// Total jobs in the plan.
    pub total_jobs: usize,
    /// Validated rows streamed so far.
    pub rows: usize,
    /// Discarded runs so far.
    pub discarded: usize,
    /// Interval-cache counters of the engine's backend at this chunk
    /// boundary (`None` for backends without reuse state). Cumulative
    /// over the backend's lifetime, not per-chunk.
    pub reuse: Option<ReuseStats>,
}

impl Progress {
    /// Fraction of the campaign completed, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.jobs_done as f64 / self.total_jobs.max(1) as f64
    }
}

/// Per-run control: checkpointing, resume, and the observer hook.
#[derive(Default)]
pub struct RunControl<'a> {
    /// Where to persist the campaign position after each chunk.
    pub checkpoint: Option<&'a Path>,
    /// Continue from `checkpoint` if it exists (requires `checkpoint`).
    pub resume: bool,
    /// Called after each chunk; returning `false` pauses the run (the
    /// checkpoint, if any, is already saved — resume picks up there).
    pub observer: Option<&'a mut dyn FnMut(&Progress) -> bool>,
    /// Optional observability stream: when set, every job additionally
    /// runs with cycle accounting enabled and emits one
    /// [`MetricsRow`] (including discarded jobs) in job order. Metrics
    /// collection never changes the dataset rows — the backend contract
    /// ([`SimBackend::run_with_metrics`]) guarantees identical
    /// [`SimStats`]. When `None` (the default), no counter is allocated
    /// and the run path is byte-for-byte the plain one.
    pub metrics: Option<&'a mut dyn MetricsSink>,
    /// Caller state persisted verbatim into every checkpoint's v2
    /// section (see [`Checkpoint::extra`]). `None` or an empty slice
    /// keeps the v1 on-disk format.
    pub checkpoint_extra: Option<&'a [(String, String)]>,
    /// What to do with the backend's interval-reuse cache at run start.
    pub reuse: ReuseMode,
}

/// Interval-cache policy for one [`Engine::run_controlled`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReuseMode {
    /// Keep whatever the backend has cached (the default): warm runs
    /// reuse intervals from earlier campaigns on the same engine.
    #[default]
    Inherit,
    /// Clear the reuse cache before the first chunk so the run measures
    /// (and behaves like) a cold start. No-op on backends without reuse
    /// state.
    ColdStart,
}

/// Outcome of [`Engine::run_controlled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Total jobs in the plan.
    pub jobs: usize,
    /// Jobs completed when the run returned.
    pub jobs_done: usize,
    /// Validated rows streamed *by this call* (excludes pre-resume rows).
    pub rows: usize,
    /// Discarded runs observed by this call (excludes pre-resume runs).
    pub discarded: usize,
    /// Job index this call resumed from (0 for a fresh run).
    pub resumed_from: usize,
    /// Whether the campaign ran to completion (false: observer paused).
    pub completed: bool,
}

/// The unified run path: a pluggable backend plus the shared workload
/// cache, executing validated plans into row sinks.
pub struct Engine {
    backend: Box<dyn SimBackend>,
    cache: WorkloadCache,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::idealized()
    }
}

impl Engine {
    /// An engine over an arbitrary backend.
    pub fn new(backend: Box<dyn SimBackend>) -> Engine {
        Engine {
            backend,
            cache: WorkloadCache::new(),
        }
    }

    /// An engine over the default infinite-bank hierarchy (the paper's
    /// simulation path).
    pub fn idealized() -> Engine {
        Engine::new(Box::new(Idealized))
    }

    /// An engine over the interval-memoizing tier wrapping the default
    /// hierarchy: exact results, with per-interval timing reused across
    /// jobs and runs (see `armdse_simcore::reuse`).
    pub fn memoized(interval_len: u64) -> Engine {
        Engine::new(Box::new(Memoized::with_interval_len(
            Idealized,
            interval_len,
        )))
    }

    /// An engine over the sampled (warmup + representative interval +
    /// extrapolation) tier wrapping the default hierarchy: approximate
    /// timing, exact architectural results.
    pub fn sampled(interval_len: u64, warmup: u64) -> Engine {
        Engine::new(Box::new(Sampled::with_params(
            Idealized,
            interval_len,
            warmup,
        )))
    }

    /// An engine over the [`MultiCore`] machine layer: `cores` replicas
    /// of the workload stepped in lockstep slices over one shared banked
    /// L2+DRAM with `banks` interleaved banks (contention is the design
    /// axis). A 1-core machine is architecturally identical to the
    /// default banked hierarchy, so `Engine::multicore(1,
    /// armdse_memsim::DEFAULT_BANKS as u32)` reproduces the single-core
    /// engine's bytes exactly (pinned by `tests/multicore_campaign.rs`).
    pub fn multicore(cores: u32, banks: u32) -> Engine {
        Engine::new(Box::new(MultiCore::new(cores, banks)))
    }

    /// An engine at the given [`Fidelity`] tier over the default
    /// hierarchy — the tier-tag-driven constructor the job server uses
    /// to build each job's private engine.
    pub fn with_fidelity(f: Fidelity) -> Engine {
        match f {
            Fidelity::Full => Engine::idealized(),
            Fidelity::Memoized { interval_len } => Engine::memoized(interval_len),
            Fidelity::Sampled {
                interval_len,
                warmup,
            } => Engine::sampled(interval_len, warmup),
        }
    }

    /// Toggle the pipeline's idle-cycle fast-forward for every pipeline
    /// built after this call, process-wide (campaigns run many
    /// simulations across threads; the default is sampled per pipeline
    /// at construction). Fast-forward is timing-exact — `SimStats`,
    /// metrics counters, and emitted CSV bytes are identical either way
    /// (pinned by `tests/fast_forward_equivalence.rs`) — so this switch
    /// exists for A/B verification and benchmarking, not correctness.
    /// The `ARMDSE_NO_FAST_FORWARD` environment variable force-disables
    /// it regardless of this setting.
    pub fn set_fast_forward(enabled: bool) {
        armdse_simcore::set_fast_forward_default(enabled);
    }

    /// The engine's default backend.
    pub fn backend(&self) -> &dyn SimBackend {
        self.backend.as_ref()
    }

    /// The shared workload cache (exposed for cache-aware callers).
    pub fn cache(&self) -> &WorkloadCache {
        &self.cache
    }

    /// The cached workload for `(app, scale, vl_bits)`.
    pub fn workload(&self, app: App, scale: WorkloadScale, vl_bits: u32) -> Arc<Workload> {
        self.cache.get(app, scale, vl_bits)
    }

    /// Simulate one `(app, config)` pair on the engine's backend,
    /// reusing the shared workload cache.
    pub fn simulate_config(&self, app: App, scale: WorkloadScale, cfg: &DesignConfig) -> SimStats {
        self.simulate_config_on(self.backend.as_ref(), app, scale, cfg)
    }

    /// Simulate one `(app, config)` pair with cycle accounting enabled,
    /// returning the per-cycle attribution counters alongside the
    /// statistics. The statistics are guaranteed identical to
    /// [`Engine::simulate_config`] (metrics transparency).
    pub fn simulate_config_metrics(
        &self,
        app: App,
        scale: WorkloadScale,
        cfg: &DesignConfig,
    ) -> (SimStats, Counters) {
        let w = self.cache.get(app, scale, cfg.core.vector_length);
        self.backend
            .run_with_metrics(&w.program, &cfg.core, &cfg.mem)
    }

    /// Like [`Engine::simulate_config`] on an explicit backend (lets
    /// one engine — and one workload cache — serve experiments that
    /// compare backends, e.g. Table I's simulated-vs-proxy columns).
    pub fn simulate_config_on(
        &self,
        backend: &dyn SimBackend,
        app: App,
        scale: WorkloadScale,
        cfg: &DesignConfig,
    ) -> SimStats {
        let w = self.cache.get(app, scale, cfg.core.vector_length);
        backend.run(&w.program, &cfg.core, &cfg.mem)
    }

    /// Run a full campaign, streaming rows into `sink` in job order.
    pub fn run(&self, plan: &RunPlan, sink: &mut dyn RowSink) -> Result<RunSummary, ArmdseError> {
        self.run_controlled(plan, sink, RunControl::default())
    }

    /// Run with checkpointing, resume, and/or a progress observer.
    ///
    /// Since PR 9 this is a thin wrapper over the scheduler layer's
    /// [`crate::scheduler`] run loop (the extracted former body of this
    /// method), so single-plan consumers and the multi-job
    /// [`crate::scheduler::JobScheduler`] execute the exact same code
    /// path.
    pub fn run_controlled(
        &self,
        plan: &RunPlan,
        sink: &mut dyn RowSink,
        ctl: RunControl<'_>,
    ) -> Result<RunSummary, ArmdseError> {
        crate::scheduler::run_job_loop(self, plan, sink, ctl, None)
    }

    /// Build the dataset-facing outcome from one job's statistics.
    fn job_outcome(
        app: App,
        config_index: usize,
        cfg: &DesignConfig,
        stats: &SimStats,
    ) -> Result<Row, DiscardedRun> {
        if stats.validated {
            Ok(Row {
                app,
                features: cfg.to_features(),
                cycles: stats.cycles,
                sve_fraction: stats.sve_fraction(),
            })
        } else {
            Err(DiscardedRun {
                app,
                config_index,
                cycles: stats.cycles,
                hit_cycle_limit: stats.hit_cycle_limit,
            })
        }
    }

    /// Run one simulation with cycle accounting enabled, producing the
    /// dataset-facing outcome and the job's metrics rows: the aggregate
    /// row first (`core: None`), then one detail row per core when the
    /// backend runs more than one core (single-core backends emit only
    /// the aggregate, keeping the historical one-row-per-job stream).
    pub(crate) fn run_job_metrics(
        &self,
        app: App,
        job: usize,
        config_index: usize,
        scale: WorkloadScale,
        cfg: &DesignConfig,
    ) -> (Result<Row, DiscardedRun>, Vec<MetricsRow>) {
        let w = self.cache.get(app, scale, cfg.core.vector_length);
        let (stats, counters, per_core) = self
            .backend
            .run_with_metrics_per_core(&w.program, &cfg.core, &cfg.mem);
        let outcome = Engine::job_outcome(app, config_index, cfg, &stats);
        let mut rows = Vec::with_capacity(1 + per_core.len());
        rows.push(MetricsRow {
            job,
            config_index,
            app,
            core: None,
            validated: stats.validated,
            cycles: stats.cycles,
            retired: stats.retired,
            counters,
            stalls: stats.stalls,
            mem: stats.mem,
        });
        for pc in per_core {
            rows.push(MetricsRow {
                job,
                config_index,
                app,
                core: Some(pc.core),
                validated: pc.stats.validated,
                cycles: pc.stats.cycles,
                retired: pc.stats.retired,
                counters: pc.counters,
                stalls: pc.stats.stalls,
                mem: pc.stats.mem,
            });
        }
        (outcome, rows)
    }

    /// Run one simulation; `Err` reports a run that failed validation
    /// (the paper discards such runs — we record what was dropped).
    pub(crate) fn run_job(
        &self,
        app: App,
        config_index: usize,
        scale: WorkloadScale,
        cfg: &DesignConfig,
    ) -> Result<Row, DiscardedRun> {
        let stats = self.simulate_config(app, scale, cfg);
        Engine::job_outcome(app, config_index, cfg, &stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(configs: usize, threads: usize) -> GenOptions {
        GenOptions {
            configs,
            scale: WorkloadScale::Tiny,
            seed: 99,
            threads,
            apps: vec![App::Stream, App::TeaLeaf],
        }
    }

    fn plan(configs: usize, threads: usize) -> RunPlan {
        RunPlan::new(&ParamSpace::paper(), &opts(configs, threads)).unwrap()
    }

    #[test]
    fn zero_configs_is_an_invalid_plan_not_a_panic() {
        let err = RunPlan::new(&ParamSpace::paper(), &opts(0, 1)).unwrap_err();
        assert!(matches!(err, ArmdseError::InvalidPlan(_)), "{err}");
    }

    #[test]
    fn empty_apps_is_an_invalid_plan() {
        let mut o = opts(4, 1);
        o.apps.clear();
        assert!(matches!(
            RunPlan::new(&ParamSpace::paper(), &o),
            Err(ArmdseError::InvalidPlan(_))
        ));
    }

    #[test]
    fn duplicate_apps_are_deduplicated_order_preserving() {
        let mut o = opts(3, 1);
        o.apps = vec![App::TeaLeaf, App::Stream, App::TeaLeaf, App::Stream];
        let p = RunPlan::new(&ParamSpace::paper(), &o).unwrap();
        assert_eq!(p.apps(), &[App::TeaLeaf, App::Stream]);
        assert_eq!(p.jobs(), 6);
        // And the engine produces exactly one row per (config, app).
        let mut data = DseDataset::default();
        Engine::idealized().run(&p, &mut data).unwrap();
        assert_eq!(data.rows.len(), 6);
        assert_eq!(data.for_app(App::TeaLeaf).len(), 3);
    }

    #[test]
    fn unknown_pin_is_an_invalid_plan_not_a_panic() {
        let err = RunPlan::pinned(
            &ParamSpace::paper(),
            &opts(2, 1),
            &[("No-Such-Feature", 1.0)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("No-Such-Feature"));
    }

    #[test]
    fn chunking_does_not_change_the_row_stream() {
        let mut one_chunk = DseDataset::default();
        let mut many_chunks = DseDataset::default();
        let e = Engine::idealized();
        e.run(&plan(6, 2), &mut one_chunk).unwrap();
        e.run(&plan(6, 2).with_chunk_jobs(3), &mut many_chunks)
            .unwrap();
        assert_eq!(one_chunk, many_chunks);
    }

    #[test]
    fn summary_counts_match_sink_contents() {
        let mut data = DseDataset::default();
        let s = Engine::idealized().run(&plan(5, 3), &mut data).unwrap();
        assert!(s.completed);
        assert_eq!(s.jobs, 10);
        assert_eq!(s.jobs_done, 10);
        assert_eq!(s.rows, data.rows.len());
        assert_eq!(s.discarded, data.discarded.len());
        assert_eq!(s.resumed_from, 0);
    }

    #[test]
    fn observer_sees_monotone_progress_and_can_pause() {
        let e = Engine::idealized();
        let p = plan(8, 2).with_chunk_jobs(4); // 16 jobs -> 4 chunks
        let mut seen = Vec::new();
        let mut observer = |pr: &Progress| {
            seen.push(pr.jobs_done);
            pr.jobs_done < 8 // pause after the second chunk
        };
        let mut data = DseDataset::default();
        let s = e
            .run_controlled(
                &p,
                &mut data,
                RunControl {
                    observer: Some(&mut observer),
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert_eq!(seen, vec![4, 8]);
        assert!(!s.completed);
        assert_eq!(s.jobs_done, 8);
        assert_eq!(data.rows.len() + data.discarded.len(), 8);
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let c = Checkpoint {
            fingerprint: 0xDEAD_BEEF,
            jobs_done: 42,
            rows: 40,
            discarded: 2,
            extra: Vec::new(),
        };
        let path = std::env::temp_dir().join("armdse_engine_ckpt_roundtrip.ckpt");
        c.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        // Empty extra writes the v1 format byte-for-byte.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("armdse-checkpoint v1\n"));
        assert_eq!(body.lines().count(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_v2_extra_section_roundtrips() {
        let c = Checkpoint {
            fingerprint: 0xF00D,
            jobs_done: 8,
            rows: 8,
            discarded: 0,
            extra: vec![
                ("explore.round".into(), "3".into()),
                ("explore.selected".into(), "4,17,102".into()),
            ],
        };
        let path = std::env::temp_dir().join("armdse_engine_ckpt_v2_roundtrip.ckpt");
        c.save(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("armdse-checkpoint v2\n"));
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, c);
        assert_eq!(loaded.extra_get("explore.round"), Some("3"));
        assert_eq!(loaded.extra_get("no.such.key"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_load_errors_name_path_and_line() {
        let dir = std::env::temp_dir();
        let case = |name: &str, body: &str, line: usize, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            let msg = Checkpoint::load(&path).unwrap_err().to_string();
            assert!(
                msg.contains(&format!("{}:{line}:", path.display())),
                "{name}: wanted '{}:{line}:' in '{msg}'",
                path.display()
            );
            assert!(msg.contains(needle), "{name}: wanted '{needle}' in '{msg}'");
            std::fs::remove_file(&path).ok();
        };
        case(
            "armdse_ckpt_err_magic.ckpt",
            "not a checkpoint\n",
            1,
            "not an armdse",
        );
        case(
            "armdse_ckpt_err_fp.ckpt",
            "armdse-checkpoint v1\nfingerprint=XYZ\njobs_done=1\nrows=1\ndiscarded=0\n",
            2,
            "unparsable fingerprint 'XYZ'",
        );
        case(
            "armdse_ckpt_err_jobs.ckpt",
            "armdse-checkpoint v1\nfingerprint=0000000000000001\njobs_done=lots\nrows=1\ndiscarded=0\n",
            3,
            "unparsable jobs_done 'lots'",
        );
        case(
            "armdse_ckpt_err_missing.ckpt",
            "armdse-checkpoint v1\nfingerprint=0000000000000001\njobs_done=1\n",
            4,
            "missing field rows",
        );
        case(
            "armdse_ckpt_err_swapped.ckpt",
            "armdse-checkpoint v1\nfingerprint=0000000000000001\nrows=1\njobs_done=1\ndiscarded=0\n",
            3,
            "expected 'jobs_done=<value>'",
        );
        case(
            "armdse_ckpt_err_extra.ckpt",
            "armdse-checkpoint v2\nfingerprint=0000000000000001\njobs_done=1\nrows=1\ndiscarded=0\nok=1\nbroken\n",
            7,
            "malformed extra line 'broken'",
        );
    }

    #[test]
    fn resume_rejects_a_foreign_checkpoint() {
        let path = std::env::temp_dir().join("armdse_engine_ckpt_foreign.ckpt");
        Checkpoint {
            fingerprint: 1,
            jobs_done: 2,
            rows: 2,
            discarded: 0,
            extra: Vec::new(),
        }
        .save(&path)
        .unwrap();
        let e = Engine::idealized();
        let mut data = DseDataset::default();
        let err = e
            .run_controlled(
                &plan(2, 1),
                &mut data,
                RunControl {
                    checkpoint: Some(&path),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, ArmdseError::Checkpoint(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paused_run_resumes_to_the_uninterrupted_dataset() {
        let e = Engine::idealized();
        let p = plan(6, 2).with_chunk_jobs(5); // 12 jobs -> chunks of 5,5,2
        let ckpt = std::env::temp_dir().join("armdse_engine_resume_unit.ckpt");
        std::fs::remove_file(&ckpt).ok();

        let mut fresh = DseDataset::default();
        e.run(&p, &mut fresh).unwrap();

        let mut pieces = DseDataset::default();
        let mut stop_after_first = |pr: &Progress| pr.jobs_done >= 10;
        let s1 = e
            .run_controlled(
                &p,
                &mut pieces,
                RunControl {
                    checkpoint: Some(&ckpt),
                    resume: false,
                    observer: Some(&mut |pr: &Progress| {
                        let _ = &mut stop_after_first;
                        pr.jobs_done < 5
                    }),
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(!s1.completed);
        assert_eq!(s1.jobs_done, 5);

        let s2 = e
            .run_controlled(
                &p,
                &mut pieces,
                RunControl {
                    checkpoint: Some(&ckpt),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(s2.completed);
        assert_eq!(s2.resumed_from, 5);
        assert_eq!(
            pieces, fresh,
            "paused+resumed dataset must equal the fresh one"
        );

        // Resuming a completed run is a no-op.
        let mut extra = DseDataset::default();
        let s3 = e
            .run_controlled(
                &p,
                &mut extra,
                RunControl {
                    checkpoint: Some(&ckpt),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(s3.completed);
        assert_eq!(s3.rows, 0);
        assert!(extra.rows.is_empty());
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn wedged_run_surfaces_as_a_discarded_run() {
        // A pathological L1 latency pushes CPI past the safety guard; the
        // run must surface as a DiscardedRun, not vanish.
        let mut cfg = DesignConfig::thunderx2();
        cfg.mem.l1_latency = 100_000;
        cfg.mem.l2_latency = 200_000;
        let e = Engine::idealized();
        let d = e
            .run_job(App::Stream, 7, WorkloadScale::Tiny, &cfg)
            .unwrap_err();
        assert!(d.hit_cycle_limit);
        assert_eq!(d.config_index, 7);
        assert_eq!(d.app, App::Stream);
        assert!(d.cycles > 0);
    }

    #[test]
    fn engine_matches_the_orchestrator_shim() {
        let o = opts(4, 2);
        let via_shim = crate::orchestrator::generate_dataset(&ParamSpace::paper(), &o);
        let mut via_engine = DseDataset::default();
        Engine::idealized()
            .run(
                &RunPlan::new(&ParamSpace::paper(), &o).unwrap(),
                &mut via_engine,
            )
            .unwrap();
        assert_eq!(via_shim, via_engine);
    }

    #[test]
    fn workload_cache_is_shared_across_runs() {
        let e = Engine::idealized();
        let p = plan(3, 1);
        let mut a = DseDataset::default();
        e.run(&p, &mut a).unwrap();
        let after_first = e.cache().len();
        assert!(after_first > 0);
        let mut b = DseDataset::default();
        e.run(&p, &mut b).unwrap();
        assert_eq!(
            e.cache().len(),
            after_first,
            "second run must hit the cache"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_stream_has_one_row_per_job_in_order() {
        let e = Engine::idealized();
        let p = plan(4, 3).with_chunk_jobs(3); // 8 jobs -> chunks of 3,3,2
        let mut data = DseDataset::default();
        let mut metrics: Vec<MetricsRow> = Vec::new();
        let s = e
            .run_controlled(
                &p,
                &mut data,
                RunControl {
                    metrics: Some(&mut metrics),
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(s.completed);
        assert_eq!(metrics.len(), p.jobs(), "one metrics row per job");
        for (i, m) in metrics.iter().enumerate() {
            assert_eq!(m.job, i, "metrics rows must arrive in job order");
            assert_eq!(m.config_index, i / p.apps().len());
            assert_eq!(m.app, p.apps()[i % p.apps().len()]);
            assert_eq!(m.counters.cycles, m.cycles);
            assert!(m.counters.conserves(), "job {i} leaked a cycle");
        }
        let validated = metrics.iter().filter(|m| m.validated).count();
        assert_eq!(validated, data.rows.len());
        assert_eq!(metrics.len() - validated, data.discarded.len());
    }

    #[test]
    fn metrics_collection_does_not_change_the_dataset() {
        let e = Engine::idealized();
        let p = plan(5, 2);
        let mut plain = DseDataset::default();
        e.run(&p, &mut plain).unwrap();
        let mut observed = DseDataset::default();
        let mut metrics: Vec<MetricsRow> = Vec::new();
        e.run_controlled(
            &p,
            &mut observed,
            RunControl {
                metrics: Some(&mut metrics),
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(plain, observed, "metrics must be transparent");
    }

    #[test]
    fn explicit_indices_reproduce_the_full_sweep_rows() {
        // A plan restricted to indices {1, 3} must emit exactly the rows
        // the full sweep produced for configs 1 and 3, in that order.
        let e = Engine::idealized();
        let mut full = DseDataset::default();
        e.run(&plan(4, 2), &mut full).unwrap();
        let sub = plan(4, 2).with_config_indices(vec![1, 3]).unwrap();
        assert_eq!(sub.configs(), 2);
        let mut picked = DseDataset::default();
        e.run(&sub, &mut picked).unwrap();
        let apps = 2; // Stream + TeaLeaf
        let expect: Vec<_> = [1usize, 3]
            .iter()
            .flat_map(|&c| full.rows[c * apps..(c + 1) * apps].to_vec())
            .collect();
        assert_eq!(picked.rows, expect);
        // And the subset plan has its own checkpoint identity.
        assert_ne!(sub.fingerprint(), plan(2, 2).fingerprint());
    }

    #[test]
    fn empty_index_list_is_an_invalid_plan() {
        assert!(matches!(
            plan(4, 1).with_config_indices(Vec::new()),
            Err(ArmdseError::InvalidPlan(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_plan_identity() {
        let base = plan(4, 1);
        assert_eq!(base.fingerprint(), plan(4, 1).fingerprint());
        // Threads and chunking don't change identity...
        assert_eq!(
            base.fingerprint(),
            plan(4, 9).with_chunk_jobs(7).fingerprint()
        );
        // ...but seed, configs, and pins do.
        assert_ne!(base.fingerprint(), plan(5, 1).fingerprint());
        let pinned = RunPlan::pinned(
            &ParamSpace::paper(),
            &opts(4, 1),
            &[("Vector-Length", 128.0)],
        )
        .unwrap();
        assert_ne!(base.fingerprint(), pinned.fingerprint());
    }

    #[test]
    fn memoized_engine_produces_identical_datasets_cold_and_warm() {
        let p = plan(4, 2);
        let mut want = DseDataset::default();
        Engine::idealized().run(&p, &mut want).unwrap();
        let e = Engine::memoized(256);
        let mut cold = DseDataset::default();
        e.run(&p, &mut cold).unwrap();
        assert_eq!(cold, want);
        let mut warm = DseDataset::default();
        e.run(&p, &mut warm).unwrap();
        assert_eq!(warm, want);
        let rs = e.backend().reuse_stats().expect("memoized reports stats");
        assert!(rs.hits > 0, "warm campaign must hit the interval cache");
    }

    #[test]
    fn progress_carries_reuse_stats_and_cold_start_clears_them() {
        let p = plan(3, 1).with_chunk_jobs(6);
        let e = Engine::memoized(256);
        e.run(&p, &mut DseDataset::default()).unwrap(); // warm the cache
        let mut last = None;
        let mut observer = |pr: &Progress| {
            last = pr.reuse;
            true
        };
        e.run_controlled(
            &p,
            &mut DseDataset::default(),
            RunControl {
                observer: Some(&mut observer),
                reuse: ReuseMode::ColdStart,
                ..RunControl::default()
            },
        )
        .unwrap();
        let rs = last.expect("memoized backend reports reuse stats");
        assert_eq!(rs.hits, 0, "cold start must not hit");
        assert!(rs.misses > 0);
        // The idealized engine reports no reuse state either way.
        let mut last = None;
        let mut observer = |pr: &Progress| {
            last = pr.reuse;
            true
        };
        Engine::idealized()
            .run_controlled(
                &p,
                &mut DseDataset::default(),
                RunControl {
                    observer: Some(&mut observer),
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(last.is_none());
    }

    #[test]
    fn checkpoints_record_fidelity_and_refuse_to_mix_tiers() {
        let path = std::env::temp_dir().join("armdse_engine_ckpt_fidelity.ckpt");
        std::fs::remove_file(&path).ok();
        let p = plan(4, 1).with_chunk_jobs(2); // 8 jobs -> 4 chunks
        let mut pause = |pr: &Progress| pr.jobs_done < 4;
        let s = Engine::memoized(512)
            .run_controlled(
                &p,
                &mut DseDataset::default(),
                RunControl {
                    checkpoint: Some(&path),
                    observer: Some(&mut pause),
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(!s.completed);
        let c = Checkpoint::load(&path).unwrap();
        assert_eq!(c.extra_get("reuse.fidelity"), Some("memoized"));
        assert_eq!(c.extra_get("reuse.interval_len"), Some("512"));
        // A full-fidelity engine must refuse the memoized checkpoint...
        let err = Engine::idealized()
            .run_controlled(
                &p,
                &mut DseDataset::default(),
                RunControl {
                    checkpoint: Some(&path),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("reuse.fidelity"), "{err}");
        // ...as must the same tier at a different interval length...
        let err = Engine::memoized(64)
            .run_controlled(
                &p,
                &mut DseDataset::default(),
                RunControl {
                    checkpoint: Some(&path),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("reuse.interval_len"), "{err}");
        // ...while the matching engine resumes and completes.
        let mut tail = DseDataset::default();
        let s = Engine::memoized(512)
            .run_controlled(
                &p,
                &mut tail,
                RunControl {
                    checkpoint: Some(&path),
                    resume: true,
                    ..RunControl::default()
                },
            )
            .unwrap();
        assert!(s.completed);
        assert_eq!(s.resumed_from, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampled_engine_is_architecturally_exact_and_tagged() {
        let p = plan(2, 1);
        let e = Engine::sampled(64, 64);
        assert_eq!(
            e.backend().fidelity(),
            armdse_simcore::Fidelity::Sampled {
                interval_len: 64,
                warmup: 64,
            }
        );
        let mut data = DseDataset::default();
        let s = e.run(&p, &mut data).unwrap();
        assert_eq!(s.rows + s.discarded, s.jobs);
        // Every emitted row passed architectural validation (rows are
        // only emitted for validated runs).
        assert_eq!(data.rows.len(), s.rows);
        // And a sampled checkpoint records all three keys.
        let path = std::env::temp_dir().join("armdse_engine_ckpt_sampled.ckpt");
        std::fs::remove_file(&path).ok();
        e.run_controlled(
            &p,
            &mut DseDataset::default(),
            RunControl {
                checkpoint: Some(&path),
                ..RunControl::default()
            },
        )
        .unwrap();
        let c = Checkpoint::load(&path).unwrap();
        assert_eq!(c.extra_get("reuse.fidelity"), Some("sampled"));
        assert_eq!(c.extra_get("reuse.interval_len"), Some("64"));
        assert_eq!(c.extra_get("reuse.warmup"), Some("64"));
        std::fs::remove_file(&path).ok();
    }
}
