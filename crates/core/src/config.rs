//! A complete design point: core parameters plus memory parameters, and
//! its flattening to the 30-feature vector the surrogate model consumes.

use armdse_memsim::MemParams;
use armdse_simcore::CoreParams;

/// The thirty feature names, in feature-vector order. Names follow the
/// paper's figures (e.g. `Vector-Length`, `Cache-Line-Width`, `L1-Clock`).
pub const FEATURE_NAMES: [&str; 30] = [
    "Vector-Length",
    "Fetch-Block-Size",
    "Loop-Buffer-Size",
    "GP-Registers",
    "FP-SVE-Registers",
    "Predicate-Registers",
    "Conditional-Registers",
    "Commit-Width",
    "Frontend-Width",
    "LSQ-Completion-Width",
    "ROB-Size",
    "Load-Queue-Size",
    "Store-Queue-Size",
    "Load-Bandwidth",
    "Store-Bandwidth",
    "Mem-Requests-Per-Cycle",
    "Loads-Per-Cycle",
    "Stores-Per-Cycle",
    "Cache-Line-Width",
    "L1-Size",
    "L1-Assoc",
    "L1-Latency",
    "L1-Clock",
    "L2-Size",
    "L2-Assoc",
    "L2-Latency",
    "L2-Clock",
    "RAM-Latency",
    "RAM-Clock",
    "Prefetch-Depth",
];

/// One sampled design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignConfig {
    /// Core-side parameters (Table II).
    pub core: CoreParams,
    /// Memory-side parameters (Table III).
    pub mem: MemParams,
}

impl DesignConfig {
    /// The ThunderX2-like baseline used for the Table I validation.
    pub fn thunderx2() -> DesignConfig {
        DesignConfig {
            core: CoreParams::thunderx2(),
            mem: MemParams::thunderx2(),
        }
    }

    /// Validate both halves.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.mem.validate()
    }

    /// Flatten to the 30-feature vector (order = [`FEATURE_NAMES`]).
    pub fn to_features(&self) -> [f64; 30] {
        let c = &self.core;
        let m = &self.mem;
        [
            f64::from(c.vector_length),
            f64::from(c.fetch_block_bytes),
            f64::from(c.loop_buffer_size),
            f64::from(c.gp_regs),
            f64::from(c.fp_regs),
            f64::from(c.pred_regs),
            f64::from(c.cond_regs),
            f64::from(c.commit_width),
            f64::from(c.frontend_width),
            f64::from(c.lsq_completion_width),
            f64::from(c.rob_size),
            f64::from(c.load_queue),
            f64::from(c.store_queue),
            f64::from(c.load_bandwidth),
            f64::from(c.store_bandwidth),
            f64::from(c.mem_requests_per_cycle),
            f64::from(c.loads_per_cycle),
            f64::from(c.stores_per_cycle),
            f64::from(m.line_bytes),
            f64::from(m.l1_size_kib),
            f64::from(m.l1_assoc),
            f64::from(m.l1_latency),
            m.l1_clock_ghz,
            f64::from(m.l2_size_kib),
            f64::from(m.l2_assoc),
            f64::from(m.l2_latency),
            m.l2_clock_ghz,
            m.ram_access_ns,
            m.ram_clock_ghz,
            f64::from(m.prefetch_depth),
        ]
    }

    /// Rebuild a config from a feature vector (inverse of
    /// [`DesignConfig::to_features`]); used by the CSV loader.
    pub fn from_features(f: &[f64]) -> DesignConfig {
        assert_eq!(f.len(), 30, "feature vector must have 30 entries");
        DesignConfig {
            core: CoreParams {
                vector_length: f[0] as u32,
                fetch_block_bytes: f[1] as u32,
                loop_buffer_size: f[2] as u32,
                gp_regs: f[3] as u32,
                fp_regs: f[4] as u32,
                pred_regs: f[5] as u32,
                cond_regs: f[6] as u32,
                commit_width: f[7] as u32,
                frontend_width: f[8] as u32,
                lsq_completion_width: f[9] as u32,
                rob_size: f[10] as u32,
                load_queue: f[11] as u32,
                store_queue: f[12] as u32,
                load_bandwidth: f[13] as u32,
                store_bandwidth: f[14] as u32,
                mem_requests_per_cycle: f[15] as u32,
                loads_per_cycle: f[16] as u32,
                stores_per_cycle: f[17] as u32,
            },
            mem: MemParams {
                line_bytes: f[18] as u32,
                l1_size_kib: f[19] as u32,
                l1_assoc: f[20] as u32,
                l1_latency: f[21] as u32,
                l1_clock_ghz: f[22],
                l2_size_kib: f[23] as u32,
                l2_assoc: f[24] as u32,
                l2_latency: f[25] as u32,
                l2_clock_ghz: f[26],
                ram_access_ns: f[27],
                ram_clock_ghz: f[28],
                prefetch_depth: f[29] as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        DesignConfig::thunderx2().validate().unwrap();
    }

    #[test]
    fn feature_roundtrip() {
        let c = DesignConfig::thunderx2();
        let f = c.to_features();
        let back = DesignConfig::from_features(&f);
        assert_eq!(c, back);
    }

    #[test]
    fn names_match_width() {
        assert_eq!(FEATURE_NAMES.len(), 30);
        assert_eq!(DesignConfig::thunderx2().to_features().len(), 30);
        // Names are unique.
        let mut n: Vec<&str> = FEATURE_NAMES.to_vec();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 30);
    }

    #[test]
    fn vector_length_is_feature_zero() {
        assert_eq!(FEATURE_NAMES[0], "Vector-Length");
        let f = DesignConfig::thunderx2().to_features();
        assert_eq!(f[0], 128.0);
    }
}
