//! Hand-rolled RFC 8259 JSON reader/writer helpers.
//!
//! The repo's zero-external-dependency guarantee extends to its wire
//! and artifact formats: every JSON consumer shares this one small
//! recursive-descent parser instead of pulling in serde. It started
//! life next to the bench-snapshot comparator (`armdse-bench`), and
//! moved here when the serving layer (`armdse-server`) needed to parse
//! job submissions: `armdse-core` is the lowest crate every JSON
//! speaker already depends on. `armdse-bench` re-exports these types,
//! so historical `armdse_bench::trend::{Json, parse_json}` paths keep
//! working.
//!
//! The parser accepts the full RFC 8259 value grammar (objects, arrays,
//! strings with escapes, numbers, `true`/`false`/`null`) and rejects
//! trailing garbage. Numbers are parsed as `f64` — the only numeric
//! type any armdse schema uses. Object keys keep first-wins semantics
//! on duplicates.

use std::collections::BTreeMap;

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string literal (escapes already decoded).
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object; duplicate keys keep the first occurrence.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The element slice, if this value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this value is a
    /// number that is a whole non-negative value within `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = json_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

/// Escape and quote `s` per RFC 8259, appending to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a finite `f64` as a JSON number that always carries a decimal
/// point (so the value reads back as a float and integers vs floats
/// stay visually distinct in artifacts).
pub fn json_num(v: f64) -> String {
    debug_assert!(v.is_finite());
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match json_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                expect(b, pos, b':')?;
                let val = json_value(b, pos)?;
                map.entry(key).or_insert(val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(json_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => json_string_lit(b, pos).map(Json::Str),
        Some(b't') => json_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => json_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => json_literal(b, pos, "null", Json::Null),
        Some(_) => json_number(b, pos),
    }
}

fn json_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn json_string_lit(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs never appear in armdse schemas
                        // (IDs are ASCII); map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // guaranteed well-formed).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(s)
                    .map_err(|_| "invalid utf-8")?
                    .chars()
                    .next()
                    .unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn json_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null, "x\n\"yA"]}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("x\n\"yA"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("{\"k\": }").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn integer_accessor_requires_whole_non_negative_numbers() {
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn string_writer_round_trips_through_the_parser() {
        let original = "tab\t nl\n quote\" backslash\\ bell\u{7} text";
        let mut doc = String::new();
        write_json_string(original, &mut doc);
        assert_eq!(parse_json(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn json_numbers_always_carry_a_decimal_point() {
        assert_eq!(json_num(1.0), "1.0");
        assert_eq!(json_num(1234.5), "1234.5");
        assert_eq!(json_num(0.25), "0.25");
    }
}
