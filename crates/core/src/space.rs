//! The paper's parameter space (Tables II + III) and its constrained
//! uniform sampler.
//!
//! "For each run through our set of benchmarks, a new set of parameters is
//! generated across a continuous uniform distribution. All parameters are
//! independently generated, with the exception of Load and Store
//! Bandwidths, and L2 size and latency" (§V-A). Those constraints are
//! honoured here: bandwidths are drawn from the power-of-two grid at or
//! above the vector width in bytes, the L2 size grid starts above the
//! sampled L1 size, and the L2 latency is resampled/clamped until the L2
//! hit time exceeds the L1 hit time in wall-clock terms.

use crate::config::DesignConfig;
pub use crate::config::FEATURE_NAMES;
use armdse_memsim::MemParams;
use armdse_rng::{Rng, SeedableRng, Xoshiro256pp};
use armdse_simcore::CoreParams;

/// Number of design-space features (the paper's "thirty variable input
/// features").
pub const FEATURE_COUNT: usize = 30;

/// The sampled design space. `paper()` gives the ranges of Tables II/III
/// (memory ranges reconstructed; see DESIGN.md §3).
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// Vector-length grid in bits.
    pub vector_lengths: Vec<u32>,
    /// Fetch-block grid in bytes.
    pub fetch_blocks: Vec<u32>,
    /// Loop-buffer range (inclusive).
    pub loop_buffer: (u32, u32),
    /// GP/FP register grid.
    pub reg_grid: Vec<u32>,
    /// Predicate register grid.
    pub pred_grid: Vec<u32>,
    /// Condition register grid.
    pub cond_grid: Vec<u32>,
    /// Pipeline width range (commit/frontend/LSQ-completion).
    pub width: (u32, u32),
    /// ROB grid.
    pub rob_grid: Vec<u32>,
    /// Load/store queue grid.
    pub queue_grid: Vec<u32>,
    /// Bandwidth grid in bytes (powers of two).
    pub bandwidths: Vec<u32>,
    /// Per-cycle request-rate range.
    pub rate: (u32, u32),
    /// Cache-line grid in bytes.
    pub lines: Vec<u32>,
    /// L1 size grid in KiB.
    pub l1_sizes: Vec<u32>,
    /// L1 associativity grid.
    pub l1_assocs: Vec<u32>,
    /// L1 latency range (cycles).
    pub l1_latency: (u32, u32),
    /// L1 clock grid in GHz.
    pub l1_clocks: Vec<f64>,
    /// L2 size grid in KiB.
    pub l2_sizes: Vec<u32>,
    /// L2 associativity grid.
    pub l2_assocs: Vec<u32>,
    /// L2 latency range (cycles).
    pub l2_latency: (u32, u32),
    /// L2 clock grid in GHz.
    pub l2_clocks: Vec<f64>,
    /// RAM access-time range in ns.
    pub ram_ns: (u32, u32),
    /// RAM clock grid in GHz.
    pub ram_clocks: Vec<f64>,
    /// Prefetch-depth range in lines.
    pub prefetch: (u32, u32),
}

fn pow2s(lo: u32, hi: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

fn steps(lo: u32, hi: u32, step: u32) -> Vec<u32> {
    (lo..=hi).step_by(step as usize).collect()
}

impl ParamSpace {
    /// The paper's design space (Table II exactly; Table III
    /// reconstructed — see DESIGN.md).
    pub fn paper() -> ParamSpace {
        let mut reg_grid = vec![38];
        reg_grid.extend(steps(40, 512, 8));
        ParamSpace {
            vector_lengths: pow2s(128, 2048),
            fetch_blocks: pow2s(4, 2048),
            loop_buffer: (1, 512),
            reg_grid,
            pred_grid: steps(24, 512, 8),
            cond_grid: steps(8, 512, 8),
            width: (1, 64),
            rob_grid: steps(8, 512, 4),
            queue_grid: steps(4, 512, 4),
            bandwidths: pow2s(16, 1024),
            rate: (1, 32),
            lines: pow2s(16, 256),
            l1_sizes: pow2s(2, 128),
            l1_assocs: vec![2, 4, 8, 16],
            l1_latency: (1, 8),
            l1_clocks: vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
            l2_sizes: pow2s(64, 8192),
            l2_assocs: vec![4, 8, 16],
            l2_latency: (4, 64),
            l2_clocks: vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
            ram_ns: (20, 200),
            ram_clocks: vec![0.8, 1.2, 1.6, 2.4, 3.2],
            prefetch: (0, 4),
        }
    }

    /// Deterministically sample the design point with index/seed `seed`.
    pub fn sample_seeded(&self, seed: u64) -> DesignConfig {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        self.sample(&mut rng)
    }

    /// Sample one valid design point.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> DesignConfig {
        let pick = |rng: &mut Xoshiro256pp, v: &[u32]| v[rng.gen_range(0..v.len())];
        let pickf = |rng: &mut Xoshiro256pp, v: &[f64]| v[rng.gen_range(0..v.len())];
        let range = |rng: &mut Xoshiro256pp, (lo, hi): (u32, u32)| rng.gen_range(lo..=hi);

        let vector_length = pick(rng, &self.vector_lengths);
        let vl_bytes = vector_length / 8;
        // Constraint: bandwidth grid restricted to >= one full vector.
        let bw_grid: Vec<u32> = self
            .bandwidths
            .iter()
            .copied()
            .filter(|&b| b >= vl_bytes)
            .collect();
        assert!(!bw_grid.is_empty(), "bandwidth grid cannot cover VL");

        let core = CoreParams {
            vector_length,
            fetch_block_bytes: pick(rng, &self.fetch_blocks),
            loop_buffer_size: range(rng, self.loop_buffer),
            gp_regs: pick(rng, &self.reg_grid),
            fp_regs: pick(rng, &self.reg_grid),
            pred_regs: pick(rng, &self.pred_grid),
            cond_regs: pick(rng, &self.cond_grid),
            commit_width: range(rng, self.width),
            frontend_width: range(rng, self.width),
            lsq_completion_width: range(rng, self.width),
            rob_size: pick(rng, &self.rob_grid),
            load_queue: pick(rng, &self.queue_grid),
            store_queue: pick(rng, &self.queue_grid),
            load_bandwidth: pick(rng, &bw_grid),
            store_bandwidth: pick(rng, &bw_grid),
            mem_requests_per_cycle: range(rng, self.rate),
            loads_per_cycle: range(rng, self.rate),
            stores_per_cycle: range(rng, self.rate),
        };

        let line_bytes = pick(rng, &self.lines);
        // Geometry constraint: at least one set (line * assoc <= size).
        let l1_size_kib = pick(rng, &self.l1_sizes);
        let l1_fit: Vec<u32> = self
            .l1_assocs
            .iter()
            .copied()
            .filter(|&a| line_bytes * a <= l1_size_kib * 1024)
            .collect();
        let l1_assoc = pick(rng, &l1_fit);
        // Constraint: L2 strictly larger than L1.
        let l2_fit: Vec<u32> = self
            .l2_sizes
            .iter()
            .copied()
            .filter(|&s| s > l1_size_kib)
            .collect();
        let l2_size_kib = pick(rng, &l2_fit);
        let l2_assoc_fit: Vec<u32> = self
            .l2_assocs
            .iter()
            .copied()
            .filter(|&a| line_bytes * a <= l2_size_kib * 1024)
            .collect();
        let l2_assoc = pick(rng, &l2_assoc_fit);

        let l1_latency = range(rng, self.l1_latency);
        let l1_clock_ghz = pickf(rng, &self.l1_clocks);
        let l2_clock_ghz = pickf(rng, &self.l2_clocks);
        // Constraint: L2 wall-clock hit time strictly above L1's. Lower
        // bound the latency grid accordingly, then sample.
        let l1_ns = f64::from(l1_latency) / l1_clock_ghz;
        let min_l2_lat = ((l1_ns * l2_clock_ghz).floor() as u32 + 1).max(self.l2_latency.0);
        let l2_latency = if min_l2_lat >= self.l2_latency.1 {
            self.l2_latency.1
        } else {
            rng.gen_range(min_l2_lat..=self.l2_latency.1)
        };

        let mem = MemParams {
            line_bytes,
            l1_size_kib,
            l1_assoc,
            l1_latency,
            l1_clock_ghz,
            l2_size_kib,
            l2_assoc,
            l2_latency,
            l2_clock_ghz,
            ram_access_ns: f64::from(range(rng, self.ram_ns)),
            ram_clock_ghz: pickf(rng, &self.ram_clocks),
            prefetch_depth: range(rng, self.prefetch),
        };

        let cfg = DesignConfig { core, mem };
        debug_assert!(
            cfg.validate().is_ok(),
            "sampler produced invalid config: {cfg:?}"
        );
        cfg
    }

    /// Sample with a parameter pinned to a fixed value by feature name
    /// (used for the paper's Figs. 4/5: importances with vector length
    /// constrained to 128 or 2048).
    pub fn sample_seeded_pinned(&self, seed: u64, pins: &[(&str, f64)]) -> DesignConfig {
        let base = self.sample_seeded(seed);
        let mut f = base.to_features();
        for (name, value) in pins {
            let i = FEATURE_NAMES
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("unknown feature {name}"));
            f[i] = *value;
        }
        let mut cfg = DesignConfig::from_features(&f);
        // Re-establish the bandwidth constraint if the pin raised VL.
        let vl_bytes = cfg.core.vector_length / 8;
        cfg.core.load_bandwidth = cfg.core.load_bandwidth.max(vl_bytes);
        cfg.core.store_bandwidth = cfg.core.store_bandwidth.max(vl_bytes);
        cfg
    }
}

impl Default for ParamSpace {
    fn default() -> Self {
        ParamSpace::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundreds_of_samples_all_validate() {
        let s = ParamSpace::paper();
        for seed in 0..500 {
            let cfg = s.sample_seeded(seed);
            cfg.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{cfg:?}"));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = ParamSpace::paper();
        assert_eq!(s.sample_seeded(42), s.sample_seeded(42));
        assert_ne!(s.sample_seeded(42), s.sample_seeded(43));
    }

    #[test]
    fn bandwidth_constraint_tracks_vector_length() {
        let s = ParamSpace::paper();
        for seed in 0..300 {
            let cfg = s.sample_seeded(seed);
            assert!(cfg.core.load_bandwidth >= cfg.core.vector_length / 8);
            assert!(cfg.core.store_bandwidth >= cfg.core.vector_length / 8);
        }
    }

    #[test]
    fn l2_dominates_l1_everywhere() {
        let s = ParamSpace::paper();
        for seed in 0..300 {
            let cfg = s.sample_seeded(seed);
            assert!(cfg.mem.l2_size_kib > cfg.mem.l1_size_kib, "seed {seed}");
            assert!(cfg.mem.l2_hit_ns() > cfg.mem.l1_hit_ns(), "seed {seed}");
        }
    }

    #[test]
    fn grids_match_paper_ranges() {
        let s = ParamSpace::paper();
        assert_eq!(s.vector_lengths, vec![128, 256, 512, 1024, 2048]);
        assert_eq!(s.fetch_blocks.first(), Some(&4));
        assert_eq!(s.fetch_blocks.last(), Some(&2048));
        assert_eq!(s.reg_grid.first(), Some(&38));
        assert_eq!(s.reg_grid.last(), Some(&512));
        assert_eq!(s.rob_grid.first(), Some(&8));
        assert_eq!(s.rob_grid.last(), Some(&512));
        assert_eq!(s.bandwidths, vec![16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn pinning_fixes_vector_length() {
        let s = ParamSpace::paper();
        for seed in 0..100 {
            let cfg = s.sample_seeded_pinned(seed, &[("Vector-Length", 2048.0)]);
            assert_eq!(cfg.core.vector_length, 2048);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn sampler_covers_vector_grid() {
        let s = ParamSpace::paper();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            seen.insert(s.sample_seeded(seed).core.vector_length);
        }
        assert_eq!(
            seen.len(),
            5,
            "all vector lengths should appear in 200 draws"
        );
    }
}
